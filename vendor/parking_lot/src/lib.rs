//! Offline shim for the real `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (guards are returned directly, a poisoned lock just yields the inner
//! data). Contention behaviour is whatever `std::sync` provides — adequate
//! for correctness; swap in the real crate for fairness/perf tuning.

use std::sync;

/// Read guard type, identical to the standard library's.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard type, identical to the standard library's.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Mutex guard type, identical to the standard library's.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new instance of an `RwLock<T>` which is unlocked.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes this `RwLock`, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Locks this `RwLock` with shared read access, blocking until it can
    /// be acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Locks this `RwLock` with exclusive write access, blocking until it
    /// can be acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex in an unlocked state.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes this mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(7);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 8);
    }
}
