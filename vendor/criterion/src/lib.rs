//! Offline shim for the real `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal harness exposing the subset of the criterion API the E1-E7
//! benches use: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `finish`, [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurements are a
//! plain mean over `sample_size` wall-clock samples — fine for spotting
//! order-of-magnitude shifts, not for rigorous statistics. When invoked
//! with `--test` (as `cargo test` does for `harness = false` bench
//! targets), each bench body runs exactly once as a smoke test.

use std::time::Instant;

/// Returns `true` when the binary was invoked by `cargo test` (which
/// passes `--test` to `harness = false` bench targets). Public so bench
/// bodies can shrink their own workloads in smoke-test mode.
pub fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Prevents the compiler from optimizing away a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each bench function; mirrors `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples `bench_function` collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs and times one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if test_mode() { 1 } else { self.sample_size };
        let mut bencher = Bencher { nanos: Vec::new() };
        for _ in 0..samples {
            f(&mut bencher);
        }
        if bencher.nanos.is_empty() {
            println!("{}/{id}: no measurements", self.name);
        } else {
            let mean = bencher.nanos.iter().sum::<u128>() / bencher.nanos.len() as u128;
            println!(
                "{}/{id}: mean {:.3} ms over {} samples",
                self.name,
                mean as f64 / 1e6,
                bencher.nanos.len()
            );
        }
        self
    }

    /// Ends the group (report aggregation is a no-op in this shim).
    pub fn finish(self) {}
}

/// Timing handle passed to the bench closure; mirrors `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    nanos: Vec<u128>,
}

impl Bencher {
    /// Times one execution of `routine` per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.nanos.push(start.elapsed().as_nanos());
    }
}

/// Declares a bench group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bench_bodies() {
        let mut c = Criterion::default();
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        // `cargo test` passes --test to the unit-test binary too, so this
        // sees test_mode() == true and exactly one sample.
        assert!(runs >= 1);
    }
}
