//! Offline shim for the real `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal stand-in exposing exactly what the workspace uses today: the
//! `Serialize`/`Deserialize` *names* as derive macros (expanding to
//! nothing) and as marker traits. No code in the workspace serializes
//! values or bounds generics on these traits yet; when a future PR needs
//! real (de)serialization, point the `serde` entry in the root
//! `[workspace.dependencies]` at the real crate instead.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. The no-op derive does not
/// implement it; nothing in the workspace requires the bound.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
