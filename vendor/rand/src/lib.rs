//! Offline shim for the real `rand` crate (0.9-style API surface).
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal deterministic PRNG exposing exactly what the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::random_range`] over integer and float ranges. The generator is
//! SplitMix64 — statistically fine for workload/data generation, **not**
//! cryptographically secure, and its streams differ from the real
//! `StdRng` (ChaCha12), so seeds produce different values than upstream.

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a new instance seeded from a single `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random value generation, in the style of `rand::Rng`.
pub trait Rng: RngCore {
    /// Generates a random value uniformly distributed over `range`.
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Generates a `bool` that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random_range(0.0..1.0) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that supports uniform sampling of values of type `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the span sizes this
                // workspace draws (all far below 2^64).
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 (resp. 24) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator standing in for `rand::rngs::StdRng`.
    ///
    /// Implemented as SplitMix64: tiny, fast, passes BigCrush on its own,
    /// and more than adequate for synthetic-workload generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000), b.random_range(0..1000));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: u64 = rng.random_range(3..=3);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(1.5..2.5);
            assert!((1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn floats_fill_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            let v: f64 = rng.random_range(0.0..1.0);
            lo_seen |= v < 0.1;
            hi_seen |= v > 0.9;
        }
        assert!(lo_seen && hi_seen, "samples should cover the whole range");
    }
}
