//! Offline shim for the real `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal property-testing harness: the [`proptest!`] macro runs each
//! property over `ProptestConfig::cases` deterministic samples drawn from
//! range/vec strategies. There is no shrinking and no persisted failure
//! seeds — a failing case panics with the case number, which is fully
//! reproducible because sampling is seeded per test. Swap the `proptest`
//! entry in the root `[workspace.dependencies]` for the real crate to get
//! shrinking back.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};
use std::ops::Range;

// The `proptest!` macro needs the RNG at expansion sites in crates that do
// not themselves depend on `rand`.
#[doc(hidden)]
pub use rand as __rand;

/// Configuration for a `proptest!` block; mirrors `proptest::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of sampled test inputs; mirrors `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Draws one input for a test case.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 / 0, S1 / 1);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);

impl Strategy for &str {
    type Value = String;

    /// Interprets the pattern as a proptest string-regex strategy.
    ///
    /// Only the shape the workspace uses is honoured: `.{lo,hi}` produces
    /// a string of `lo..=hi` arbitrary non-newline characters. Any other
    /// pattern falls back to 0..=64 arbitrary characters — still a valid
    /// fuzz corpus, just not pattern-shaped.
    fn sample(&self, rng: &mut StdRng) -> String {
        let (lo, hi) = self
            .strip_prefix(".{")
            .and_then(|rest| rest.strip_suffix('}'))
            .and_then(|bounds| bounds.split_once(','))
            .and_then(|(lo, hi)| Some((lo.parse().ok()?, hi.parse().ok()?)))
            .unwrap_or((0usize, 64usize));
        let len = rng.random_range(lo..hi + 1);
        (0..len)
            .map(|_| {
                // Mostly printable ASCII, with occasional arbitrary
                // code points to probe unicode handling.
                if rng.random_range(0..8) == 0 {
                    char::from_u32(rng.random_range(1u32..0xD800)).unwrap_or('\u{FFFD}')
                } else {
                    char::from(rng.random_range(0x20u8..0x7F))
                }
            })
            .collect()
    }
}

/// Collection strategies; mirrors `proptest::collection`.
pub mod collection {
    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec`s with sampled length and elements.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Samples `Vec`s whose length is drawn from `len` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// One-stop imports; mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a property holds for the current case; panics on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two values are equal for the current case; panics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests; mirrors `proptest::proptest!`.
///
/// Supports the subset the workspace uses: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strategy:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            // Seed per test from the test name so cases are stable across
            // runs but differ between properties.
            let __seed = stringify!($name)
                .bytes()
                .fold(0xCAFE_F00Du64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
            let mut __rng =
                <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)*
                let _ = __case;
                $body
            }
        }
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($config:expr;) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u16..16, xs in crate::collection::vec(0u16..16, 1..4)) {
            prop_assert!(x < 16);
            prop_assert!(!xs.is_empty() && xs.len() < 4);
            prop_assert!(xs.iter().all(|&v| v < 16));
        }
    }
}
