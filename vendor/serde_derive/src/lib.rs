//! Offline shim for the real `serde_derive` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal stand-in. The workspace only *derives* `Serialize`/`Deserialize`
//! (no code actually serializes anything yet, and nothing bounds on the
//! traits), so the derives expand to nothing. Swap `vendor/serde` for the
//! real crates in the root manifest to restore full serde behaviour.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
