//! Write-aware index selection: the same read workload, tuned with and
//! without knowledge of the write traffic hitting the tables.
//!
//! Indexes are free to *read* but not to *keep*: every INSERT pays a
//! descent + leaf write per index. Feeding the advisor a write profile
//! folds that upkeep into CoPhy's ILP objective, and write-hot tables shed
//! their marginal indexes.
//!
//! ```sh
//! cargo run --release --example write_aware
//! ```

use pgdesign::Designer;
use pgdesign_catalog::samples::sdss_catalog;
use pgdesign_cophy::CophyConfig;
use pgdesign_optimizer::maintenance::{design_maintenance_cost, WriteProfile};
use pgdesign_query::generators::sdss_workload;

fn main() {
    let catalog = sdss_catalog(0.01);
    let workload = sdss_workload(&catalog, 18, 404);
    let designer = Designer::new(catalog);
    let photo = designer
        .catalog
        .schema
        .table_by_name("photoobj")
        .unwrap()
        .id;
    let neighbors = designer
        .catalog
        .schema
        .table_by_name("neighbors")
        .unwrap()
        .id;

    // Nightly ingest per tuning period (sized against this workload's
    // weight so the trade-off is visible rather than degenerate).
    let writes = WriteProfile::read_only()
        .with_inserts(photo, 4_000.0)
        .with_inserts(neighbors, 16_000.0)
        .with_updates(photo, 1_000.0, vec![12, 13]); // flags, status

    for (label, profile) in [
        ("read-only assumption", None),
        ("write-aware", Some(writes.clone())),
    ] {
        let rec = designer.recommend_indexes(
            &workload,
            CophyConfig {
                storage_budget_bytes: designer.catalog.data_bytes() / 2,
                write_profile: profile,
                ..Default::default()
            },
        );
        let upkeep = design_maintenance_cost(
            &designer.optimizer.params,
            &designer.catalog,
            &rec.design,
            &writes,
        );
        // `rec.cost` is the advisor's objective (queries + *modeled*
        // upkeep); recompute the pure query cost for honest accounting.
        let query_cost: f64 = workload
            .iter()
            .map(|(q, w)| w * designer.cost(&rec.design, q))
            .sum();
        println!("== {label} ==");
        println!("  query cost {query_cost:.0}, TRUE upkeep under real writes: {upkeep:.0}");
        println!("  total cost including upkeep: {:.0}", query_cost + upkeep);
        for idx in &rec.indexes {
            println!(
                "    CREATE INDEX ON {};",
                idx.display(&designer.catalog.schema)
            );
        }
        println!();
    }
    println!(
        "The read-only advisor happily indexes the ingest-heavy tables; the\n\
         write-aware one keeps only the indexes whose query savings repay\n\
         their maintenance."
    );
}
