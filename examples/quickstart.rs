//! Quickstart: load a catalog, write a workload in SQL, get a design.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pgdesign::Designer;
use pgdesign_catalog::samples::sdss_catalog;
use pgdesign_query::{parse_query, Workload};

fn main() {
    // An SDSS-like catalog: 100k photometric objects at this scale, with
    // statistics computed from generated data.
    let catalog = sdss_catalog(0.01);

    // A workload, written the way a DBA would write it: SQL.
    let sqls = [
        "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 120 AND 125 AND r < 19",
        "SELECT type, count(*) FROM photoobj WHERE ra BETWEEN 120 AND 125 GROUP BY type",
        "SELECT p.objid, s.zredshift FROM photoobj p, specobj s \
         WHERE p.objid = s.bestobjid AND s.zredshift BETWEEN 0.1 AND 0.2",
        "SELECT objid FROM photoobj WHERE run = 3025 AND camcol = 4",
        "SELECT objid, r FROM photoobj WHERE type = 3 ORDER BY r LIMIT 100",
    ];
    let workload: Workload = sqls
        .iter()
        .map(|s| parse_query(&catalog.schema, s).expect("valid SQL"))
        .collect();

    let designer = Designer::new(catalog);

    // Recommend a design under a storage budget of half the data size.
    let budget = designer.catalog.data_bytes() / 2;
    let report = designer.recommend(&workload, budget);

    println!("{report}");
    println!("Suggested index definitions:");
    for idx in &report.indexes.indexes {
        println!(
            "  CREATE INDEX ON {};",
            idx.display(&designer.catalog.schema)
        );
    }

    // Every number above was computed with what-if analysis: nothing was
    // ever built. EXPLAIN one query under the recommended design:
    println!("\nEXPLAIN Q1 under the recommended design:");
    println!("{}", designer.explain(&report.design, workload.query(0)));
}
