//! Demo scenario 2 — automatic offline design with materialization
//! scheduling.
//!
//! "The user provides the query workload, the original physical schema and
//! size constraints. Then, the tool recommends a set of indexes and
//! partitions which maximize the performance. ... In the case of indexes,
//! a materialization schedule becomes available."
//!
//! ```sh
//! cargo run --release --example scenario2_offline
//! ```

use pgdesign::Designer;
use pgdesign_catalog::samples::sdss_catalog;
use pgdesign_query::generators::sdss_workload;

fn main() {
    let catalog = sdss_catalog(0.01);
    let workload = sdss_workload(&catalog, 27, 2024);
    let designer = Designer::new(catalog);

    for budget_frac in [0.25, 0.5, 1.0] {
        let budget = (designer.catalog.data_bytes() as f64 * budget_frac) as u64;
        println!(
            "########## storage budget = {budget_frac}× data size ({:.0} MiB) ##########",
            budget as f64 / (1024.0 * 1024.0)
        );
        let report = designer.recommend(&workload, budget);
        println!("{report}");
        println!("Index definitions:");
        for idx in &report.indexes.indexes {
            println!(
                "  CREATE INDEX ON {};",
                idx.display(&designer.catalog.schema)
            );
        }
        println!(
            "Materialization order (interaction-aware): {}",
            report
                .schedule
                .order
                .iter()
                .map(|&i| report.indexes.indexes[i].display(&designer.catalog.schema))
                .collect::<Vec<_>>()
                .join("  ->  ")
        );
        println!(
            "Benefit curve while building: {:?}\n",
            report
                .schedule
                .curve
                .iter()
                .map(|(t, c)| format!("t={t:.0}: {c:.0}"))
                .collect::<Vec<_>>()
        );
    }
}
