//! Demo scenario 3 — continuous tuning of a drifting workload.
//!
//! "This component monitors the behavior of the system when the workload
//! changes and suggests changes to the set of indexes. Our tool presents
//! the change in system's performance accruing from adopting the new
//! suggested indexes."
//!
//! ```sh
//! cargo run --release --example scenario3_online
//! ```

use pgdesign::{Designer, JointAdvisor};
use pgdesign_catalog::samples::sdss_catalog;
use pgdesign_colt::ColtConfig;
use pgdesign_query::generators::DriftingStream;

fn main() {
    let catalog = sdss_catalog(0.01);
    let designer = Designer::new(catalog.clone());

    // A stream whose template mix shifts every 100 queries through four
    // phases: positional → photometric → spectro-join → operational.
    let mut stream = DriftingStream::sdss_default(catalog, 100, 7);

    let mut session = designer.online_session(ColtConfig {
        epoch_length: 25,
        storage_budget_bytes: designer.catalog.data_bytes() / 4,
        whatif_budget_per_epoch: 120,
        ewma_alpha: 0.6,
        payback_horizon_epochs: 6.0,
        epoch_deadline: None,
    });

    for round in 0..12 {
        // 12 phases' worth of batches.
        let phase = stream.current_phase();
        session.observe_all(stream.batch(100));
        println!(
            "after phase {phase}: {} on-line index(es)",
            session.current_design().index_count()
        );
        for idx in session.current_design().indexes() {
            println!("   {}", idx.display(&designer.catalog.schema));
        }

        if round == 5 {
            // The background-advisor handoff: mid-stream, ask the offline
            // joint advisor for a full recommendation. It runs against the
            // *same* session matrix COLT keeps warm — the statistics below
            // show the reused cells.
            let reused_before = session.tuning_stats().matrix.cells_reused;
            let report = session.advise(&mut JointAdvisor::new(designer.catalog.data_bytes() / 4));
            let reused = session.tuning_stats().matrix.cells_reused - reused_before;
            println!(
                "
== Mid-stream joint recommendation (warm matrix) =="
            );
            println!(
                "   cost {:.0} -> {:.0}; {} matrix cells reused from the online run",
                report.joint.base_cost, report.joint.cost, reused
            );
            for name in &report.index_display {
                println!("   would CREATE INDEX ON {name};");
            }
            println!();
        }
    }

    println!("\n== Tuning trajectory ==");
    print!("{}", session.trajectory());

    let (untuned, tuned) = session.cumulative_costs();
    println!(
        "\ncumulative workload cost: untuned {untuned:.0}, with COLT {tuned:.0} ({:.1}% saved)",
        100.0 * (untuned - tuned).max(0.0) / untuned
    );

    println!("\n== Session statistics (one persistent matrix) ==");
    print!("{}", session.tuning_stats());

    println!("\n== Alerts raised ==");
    for r in session.reports() {
        for e in &r.events {
            match e {
                pgdesign_colt::ColtEvent::Materialize {
                    epoch,
                    index,
                    build_cost,
                } => {
                    println!(
                        "epoch {epoch}: MATERIALIZE {} (build cost {build_cost:.0})",
                        index.display(&designer.catalog.schema)
                    );
                }
                pgdesign_colt::ColtEvent::Drop { epoch, index } => {
                    println!(
                        "epoch {epoch}: DROP {}",
                        index.display(&designer.catalog.schema)
                    );
                }
            }
        }
    }
}
