//! Demo scenario 1 — interactive what-if design exploration.
//!
//! "The user provides the query workload and the original physical schema.
//! Then, she creates several what-if partitions and indexes using the
//! tool's interface. Now, the tool presents the benefits from using the
//! new physical design for the particular workload. The user can examine
//! interactions between the what-if indexes as visualized by the Index
//! Interaction component and save the rewritten queries for the new table
//! partitions."
//!
//! The session is a `TuningSession` view: after the one-off warm-up,
//! every toggle is a bitset edit and every evaluation is pure cost-matrix
//! lookups — the statistics printed at the end show **zero** per-design
//! optimizer cost calls for the whole exploration.
//!
//! ```sh
//! cargo run --release --example scenario1_interactive
//! ```

use pgdesign::Designer;
use pgdesign_catalog::design::{Index, VerticalPartitioning};
use pgdesign_catalog::samples::sdss_catalog;
use pgdesign_query::{parse_query, Workload};

fn main() {
    let catalog = sdss_catalog(0.01);
    let sqls = [
        "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 150 AND 160",
        "SELECT objid, ra, dec, r FROM photoobj WHERE type = 3 AND r < 17",
        "SELECT objid FROM photoobj WHERE type = 3 AND r < 15 ORDER BY r",
        "SELECT p.ra, s.zredshift FROM photoobj p, specobj s WHERE p.objid = s.bestobjid",
    ];
    let workload: Workload = sqls
        .iter()
        .map(|s| parse_query(&catalog.schema, s).expect("valid SQL"))
        .collect();
    let designer = Designer::new(catalog);
    let mut session = designer.session(workload);

    println!("== Baseline (no hypothetical structures) ==");
    println!("{}", session.evaluate());

    // The DBA tries a few what-if indexes, by name, as in the demo UI.
    session
        .add_index_by_name("photoobj", &["type", "r"])
        .unwrap();
    session
        .add_index_by_name("photoobj", &["r", "type"])
        .unwrap();
    session.add_index_by_name("photoobj", &["objid"]).unwrap();
    session
        .add_index_by_name("specobj", &["bestobjid"])
        .unwrap();

    println!("== With 4 what-if indexes ==");
    println!("{}", session.evaluate());

    // Figure 2: the index interaction graph. The two (type,r)/(r,type)
    // indexes compete; the user can cap how many edges are displayed.
    let graph = session.interaction_graph();
    println!("== Index interactions (top 3 of {}) ==", graph.edge_count());
    print!("{}", graph.to_text(&designer.catalog.schema, 3));
    println!(
        "\nDOT for rendering:\n{}",
        graph.to_dot(&designer.catalog.schema, 3)
    );

    // A what-if vertical partition of photoobj: hot positional columns
    // split from the wide photometric payload.
    session.set_vertical(VerticalPartitioning::new(
        designer
            .catalog
            .schema
            .table_by_name("photoobj")
            .unwrap()
            .id,
        vec![vec![0, 1, 2], (3..16).collect()],
    ));
    println!("== With the what-if vertical partition added ==");
    println!("{}", session.evaluate());

    println!("== Rewritten-query report for the partitions ==");
    print!("{}", session.fragment_report());

    println!("== EXPLAIN Q3 under the hypothetical design ==");
    print!("{}", session.explain(2));

    // Toggling structures off and back on is free: the candidate's cells
    // stay resident in the session matrix, so re-evaluation is instant.
    let photo = designer
        .catalog
        .schema
        .table_by_name("photoobj")
        .unwrap()
        .id;
    session.remove_index(&Index::new(photo, vec![0]));
    println!(
        "
== Without the objid index =="
    );
    println!("{}", session.evaluate());
    session.add_index(Index::new(photo, vec![0]));

    println!("== Session statistics (note: zero per-design cost calls) ==");
    print!("{}", session.tuning_stats());
}
