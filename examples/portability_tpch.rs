//! Portability: the identical designer pipeline on a TPC-H-like catalog.
//!
//! The paper claims the tool "can be ported to any relational DBMS, which
//! offers a query optimizer, a way to extract and create statistics, and
//! control over join operations". In this reproduction those are the
//! `Catalog` and `Optimizer` seams — so porting is: build a different
//! catalog. Nothing else changes.
//!
//! ```sh
//! cargo run --release --example portability_tpch
//! ```

use pgdesign::Designer;
use pgdesign_catalog::samples::tpch_catalog;
use pgdesign_query::compress::{compress, Representative};
use pgdesign_query::generators::tpch_workload;

fn main() {
    let catalog = tpch_catalog(0.01);
    // A long trace with heavy template repetition...
    let trace = tpch_workload(&catalog, 120, 77);
    // ...compressed to weighted template representatives before tuning.
    let compressed = compress(&trace, Representative::Median);
    println!(
        "workload compression: {} queries -> {} templates ({}x)",
        trace.len(),
        compressed.workload.len(),
        compressed.ratio()
    );

    let designer = Designer::new(catalog);
    let report = designer.recommend(&compressed.workload, designer.catalog.data_bytes() / 2);
    println!("{report}");
    println!("Index definitions:");
    for idx in &report.indexes.indexes {
        println!(
            "  CREATE INDEX ON {};",
            idx.display(&designer.catalog.schema)
        );
    }

    // Sanity: the compressed recommendation serves the full trace too.
    let full_base: f64 = trace
        .iter()
        .map(|(q, w)| w * designer.cost(&pgdesign_catalog::design::PhysicalDesign::empty(), q))
        .sum();
    let full_tuned: f64 = trace
        .iter()
        .map(|(q, w)| w * designer.cost(&report.design, q))
        .sum();
    println!(
        "full-trace validation: {full_base:.0} -> {full_tuned:.0} ({:.1}% benefit)",
        100.0 * (full_base - full_tuned).max(0.0) / full_base
    );
}
