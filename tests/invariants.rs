//! Cross-crate property-based tests on system-level invariants.

use pgdesign_catalog::design::{Index, PhysicalDesign};
use pgdesign_catalog::samples::sdss_catalog;
use pgdesign_catalog::Catalog;
use pgdesign_optimizer::Optimizer;
use pgdesign_query::generators::{sdss_template, SDSS_TEMPLATE_COUNT};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn catalog() -> &'static Catalog {
    use std::sync::OnceLock;
    static CATALOG: OnceLock<Catalog> = OnceLock::new();
    CATALOG.get_or_init(|| sdss_catalog(0.01))
}

fn optimizer() -> Optimizer {
    Optimizer::new()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Monotonicity: adding an index never increases the estimated cost of
    /// any query (our model charges no index maintenance for read-only
    /// workloads, so more access paths can only help or tie).
    #[test]
    fn adding_an_index_never_hurts(template in 0..SDSS_TEMPLATE_COUNT, seed in 0u64..500, col in 0u16..16) {
        let c = catalog();
        let mut rng = StdRng::seed_from_u64(seed);
        let q = sdss_template(c, template, &mut rng);
        let opt = optimizer();
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let base = opt.cost(c, &PhysicalDesign::empty(), &q);
        let with = opt.cost(
            c,
            &PhysicalDesign::with_indexes([Index::new(photo, vec![col])]),
            &q,
        );
        prop_assert!(with <= base * 1.0001, "index regressed query: {with} vs {base}");
    }

    /// Costs are finite, positive, and deterministic.
    #[test]
    fn costs_are_finite_and_deterministic(template in 0..SDSS_TEMPLATE_COUNT, seed in 0u64..500) {
        let c = catalog();
        let mut rng = StdRng::seed_from_u64(seed);
        let q = sdss_template(c, template, &mut rng);
        let opt = optimizer();
        let d = PhysicalDesign::empty();
        let a = opt.cost(c, &d, &q);
        let b = opt.cost(c, &d, &q);
        prop_assert!(a.is_finite() && a > 0.0);
        prop_assert_eq!(a, b);
    }

    /// Plan cardinalities are design-independent (the INUM invariant).
    #[test]
    fn cardinality_is_design_independent(template in 0..SDSS_TEMPLATE_COUNT, seed in 0u64..500, col in 0u16..16) {
        let c = catalog();
        let mut rng = StdRng::seed_from_u64(seed);
        let q = sdss_template(c, template, &mut rng);
        let opt = optimizer();
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let p1 = opt.optimize(c, &PhysicalDesign::empty(), &q);
        let p2 = opt.optimize(
            c,
            &PhysicalDesign::with_indexes([Index::new(photo, vec![col])]),
            &q,
        );
        let rel = (p1.rows - p2.rows).abs() / p1.rows.max(1.0);
        prop_assert!(rel < 1e-6, "rows changed with design: {} vs {}", p1.rows, p2.rows);
    }

    /// The what-if size model matches the catalog's size model exactly —
    /// hypothetical and real structures share one ruler.
    #[test]
    fn whatif_sizes_match_catalog_sizes(cols in proptest::collection::vec(0u16..16, 1..4)) {
        let c = catalog();
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let mut unique = cols.clone();
        unique.dedup();
        let idx = Index::new(photo, unique);
        let via_design = PhysicalDesign::with_indexes([idx.clone()]).index_bytes(&c.schema, &c.stats);
        let direct = idx.size_bytes(&c.schema, c.table_stats(photo));
        prop_assert_eq!(via_design, direct);
        prop_assert!(direct > 0, "no zero-size what-if indexes");
    }
}

/// Workload cost decomposes linearly over queries and weights.
#[test]
fn workload_cost_is_linear() {
    let c = catalog();
    let opt = optimizer();
    let mut rng = StdRng::seed_from_u64(1);
    let q1 = sdss_template(c, 0, &mut rng);
    let q2 = sdss_template(c, 1, &mut rng);
    let d = PhysicalDesign::empty();
    let mut w = pgdesign_query::Workload::new();
    w.push(q1.clone(), 2.0);
    w.push(q2.clone(), 3.0);
    let total = opt.workload_cost(c, &d, &w);
    let manual = 2.0 * opt.cost(c, &d, &q1) + 3.0 * opt.cost(c, &d, &q2);
    assert!((total - manual).abs() < 1e-9);
}
