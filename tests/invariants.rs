//! Cross-crate property-based tests on system-level invariants.

use pgdesign_catalog::design::{Index, PhysicalDesign};
use pgdesign_catalog::samples::{sdss_catalog, tpch_catalog};
use pgdesign_catalog::Catalog;
use pgdesign_inum::{CostMatrix, Inum};
use pgdesign_optimizer::candidates::{workload_candidates, CandidateConfig};
use pgdesign_optimizer::Optimizer;
use pgdesign_query::generators::{
    sdss_template, sdss_workload, tpch_workload, SDSS_TEMPLATE_COUNT,
};
use pgdesign_query::Workload;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn catalog() -> &'static Catalog {
    use std::sync::OnceLock;
    static CATALOG: OnceLock<Catalog> = OnceLock::new();
    CATALOG.get_or_init(|| sdss_catalog(0.01))
}

fn optimizer() -> Optimizer {
    Optimizer::new()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Monotonicity: adding an index never increases the estimated cost of
    /// any query (our model charges no index maintenance for read-only
    /// workloads, so more access paths can only help or tie).
    #[test]
    fn adding_an_index_never_hurts(template in 0..SDSS_TEMPLATE_COUNT, seed in 0u64..500, col in 0u16..16) {
        let c = catalog();
        let mut rng = StdRng::seed_from_u64(seed);
        let q = sdss_template(c, template, &mut rng);
        let opt = optimizer();
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let base = opt.cost(c, &PhysicalDesign::empty(), &q);
        let with = opt.cost(
            c,
            &PhysicalDesign::with_indexes([Index::new(photo, vec![col])]),
            &q,
        );
        prop_assert!(with <= base * 1.0001, "index regressed query: {with} vs {base}");
    }

    /// Costs are finite, positive, and deterministic.
    #[test]
    fn costs_are_finite_and_deterministic(template in 0..SDSS_TEMPLATE_COUNT, seed in 0u64..500) {
        let c = catalog();
        let mut rng = StdRng::seed_from_u64(seed);
        let q = sdss_template(c, template, &mut rng);
        let opt = optimizer();
        let d = PhysicalDesign::empty();
        let a = opt.cost(c, &d, &q);
        let b = opt.cost(c, &d, &q);
        prop_assert!(a.is_finite() && a > 0.0);
        prop_assert_eq!(a, b);
    }

    /// Plan cardinalities are design-independent (the INUM invariant).
    #[test]
    fn cardinality_is_design_independent(template in 0..SDSS_TEMPLATE_COUNT, seed in 0u64..500, col in 0u16..16) {
        let c = catalog();
        let mut rng = StdRng::seed_from_u64(seed);
        let q = sdss_template(c, template, &mut rng);
        let opt = optimizer();
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let p1 = opt.optimize(c, &PhysicalDesign::empty(), &q);
        let p2 = opt.optimize(
            c,
            &PhysicalDesign::with_indexes([Index::new(photo, vec![col])]),
            &q,
        );
        let rel = (p1.rows - p2.rows).abs() / p1.rows.max(1.0);
        prop_assert!(rel < 1e-6, "rows changed with design: {} vs {}", p1.rows, p2.rows);
    }

    /// The what-if size model matches the catalog's size model exactly —
    /// hypothetical and real structures share one ruler.
    #[test]
    fn whatif_sizes_match_catalog_sizes(cols in proptest::collection::vec(0u16..16, 1..4)) {
        let c = catalog();
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let mut unique = cols.clone();
        unique.dedup();
        let idx = Index::new(photo, unique);
        let via_design = PhysicalDesign::with_indexes([idx.clone()]).index_bytes(&c.schema, &c.stats);
        let direct = idx.size_bytes(&c.schema, c.table_stats(photo));
        prop_assert_eq!(via_design, direct);
        prop_assert!(direct > 0, "no zero-size what-if indexes");
    }
}

/// The two INUM cache levels agree: for any subset of a candidate set,
/// the precomputed [`CostMatrix`] returns the same cost as the per-design
/// [`Inum::cost`] slow path, to within 1e-6 — on both sample catalogs.
fn assert_matrix_matches_inum(catalog: &Catalog, workload: &Workload, subset_seed: u64) {
    use rand::Rng;
    let opt = optimizer();
    let inum = Inum::new(catalog, &opt);
    let cands = workload_candidates(catalog, workload, &CandidateConfig::default());
    let matrix = CostMatrix::build(&inum, workload, &cands.indexes);
    let mut rng = StdRng::seed_from_u64(subset_seed);
    for _ in 0..12 {
        let k = rng.random_range(0..5usize).min(cands.indexes.len());
        let mut ids: Vec<usize> = (0..k)
            .map(|_| rng.random_range(0..cands.indexes.len()))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let config = matrix.config_of(ids.iter().copied());
        let design = PhysicalDesign::with_indexes(ids.iter().map(|&i| cands.indexes[i].clone()));
        for (qi, (q, _)) in workload.iter().enumerate() {
            let fast = matrix.cost(qi, &config);
            // analyzer:allow(cost-purity): parity oracle — this harness
            // exists to compare matrix lookups against the optimizer.
            let oracle = inum.cost(&design, q);
            assert!(
                (fast - oracle).abs() <= 1e-6 * oracle.abs().max(1.0),
                "matrix {fast} vs inum {oracle} for Q{qi} under {ids:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// SDSS: random candidate subsets cost identically through both levels.
    #[test]
    fn cost_matrix_matches_inum_on_sdss(seed in 0u64..1000, n_queries in 3usize..10) {
        let c = catalog();
        let w = sdss_workload(c, n_queries, seed);
        assert_matrix_matches_inum(c, &w, seed ^ 0xACCE55);
    }

    /// TPC-H: the same invariant on the other sample catalog (the
    /// portability claim — nothing in the matrix is SDSS-specific).
    #[test]
    fn cost_matrix_matches_inum_on_tpch(seed in 0u64..1000, n_queries in 3usize..8) {
        use std::sync::OnceLock;
        static TPCH: OnceLock<Catalog> = OnceLock::new();
        let c = TPCH.get_or_init(|| tpch_catalog(0.01));
        let w = tpch_workload(c, n_queries, seed);
        assert_matrix_matches_inum(c, &w, seed ^ 0x7C0B);
    }
}

/// Delta evaluation equals full re-evaluation: adding (removing) one
/// candidate through [`CostMatrix::delta_add`] / [`CostMatrix::delta_remove`]
/// matches the cost difference of the materialized configurations.
#[test]
fn matrix_delta_matches_full_reevaluation() {
    let c = catalog();
    let opt = optimizer();
    let inum = Inum::new(c, &opt);
    let w = sdss_workload(c, 9, 404);
    let cands = workload_candidates(c, &w, &CandidateConfig::default());
    let matrix = CostMatrix::build(&inum, &w, &cands.indexes);
    let n = cands.indexes.len();
    let base_ids: Vec<usize> = (0..n).step_by(3).collect();
    let base = matrix.config_of(base_ids.iter().copied());
    for qi in 0..matrix.n_queries() {
        for cand in 0..n {
            if !base.contains(cand) {
                let mut plus = base.clone();
                plus.insert(cand);
                let full = matrix.cost(qi, &plus) - matrix.cost(qi, &base);
                let delta = matrix.delta_add(qi, &base, cand);
                assert!(
                    (delta - full).abs() < 1e-9,
                    "delta_add {delta} vs full {full} (Q{qi}, cand {cand})"
                );
            } else {
                let mut minus = base.clone();
                minus.remove(cand);
                let full = matrix.cost(qi, &minus) - matrix.cost(qi, &base);
                let delta = matrix.delta_remove(qi, &base, cand);
                assert!(
                    (delta - full).abs() < 1e-9,
                    "delta_remove {delta} vs full {full} (Q{qi}, cand {cand})"
                );
            }
        }
    }
}

/// The partition-aware matrix level agrees with [`Inum::cost`]: random
/// joint configurations — vertical fragmentations (occasionally with a
/// replicated column), horizontal range splits, and index subsets — cost
/// identically through pure matrix lookups and the per-design slow path,
/// to within 1e-6.
fn assert_joint_matrix_matches_inum(catalog: &Catalog, workload: &Workload, seed: u64) {
    use pgdesign_catalog::design::HorizontalPartitioning;
    use rand::Rng;
    let opt = optimizer();
    let inum = Inum::new(catalog, &opt);
    let cands = workload_candidates(catalog, workload, &CandidateConfig::default());
    let mut matrix = CostMatrix::build(&inum, workload, &cands.indexes);
    let mut rng = StdRng::seed_from_u64(seed);
    let tables: Vec<(pgdesign_catalog::schema::TableId, u16)> =
        catalog.schema.tables().map(|t| (t.id, t.width())).collect();
    for _ in 0..4 {
        let mut cfg = matrix.empty_joint();
        if !cands.indexes.is_empty() {
            for _ in 0..rng.random_range(0..4usize) {
                cfg.indexes.insert(rng.random_range(0..cands.indexes.len()));
            }
        }
        for &(t, width) in &tables {
            if width < 2 || rng.random_range(0..2usize) == 0 {
                continue;
            }
            let n_groups = rng.random_range(2..5usize).min(width as usize);
            let mut groups: Vec<Vec<u16>> = vec![Vec::new(); n_groups];
            for c in 0..width {
                groups[rng.random_range(0..n_groups)].push(c);
            }
            if rng.random_range(0..3usize) == 0 {
                // Replicate one column into another group: exercises the
                // overlapping-fragment set-cover path.
                groups[rng.random_range(0..n_groups)].push(rng.random_range(0..width));
            }
            for g in groups.iter().filter(|g| !g.is_empty()) {
                let id = matrix.register_fragment(t, g);
                cfg.fragments.insert(id);
            }
            if rng.random_range(0..2usize) == 0 {
                let col = rng.random_range(0..width);
                let stats = catalog.table_stats(t).column(col);
                if stats.max > stats.min {
                    let parts = rng.random_range(2..9usize);
                    let bounds: Vec<f64> = (1..parts)
                        .map(|i| stats.min + (stats.max - stats.min) * i as f64 / parts as f64)
                        .collect();
                    let hp = HorizontalPartitioning::new(t, col, bounds);
                    if hp.partitions() >= 2 {
                        let sid = matrix.register_split(hp);
                        cfg.splits.insert(sid);
                    }
                }
            }
        }
        let design = matrix.joint_design_of(&cfg);
        for (qi, (q, _)) in workload.iter().enumerate() {
            let fast = matrix.joint_cost(qi, &cfg);
            // analyzer:allow(cost-purity): parity oracle — this harness
            // exists to compare matrix lookups against the optimizer.
            let oracle = inum.cost(&design, q);
            assert!(
                (fast - oracle).abs() <= 1e-6 * oracle.abs().max(1.0),
                "joint matrix {fast} vs inum {oracle} for Q{qi} (design {design:?})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// SDSS: random vertical+horizontal designs cost identically through
    /// the partition-aware matrix and the per-design slow path.
    #[test]
    fn partition_matrix_matches_inum_on_sdss(seed in 0u64..1000, n_queries in 3usize..9) {
        let c = catalog();
        let w = sdss_workload(c, n_queries, seed);
        assert_joint_matrix_matches_inum(c, &w, seed ^ 0xF2A6);
    }

    /// TPC-H: the same partition invariant on the other sample catalog.
    #[test]
    fn partition_matrix_matches_inum_on_tpch(seed in 0u64..1000, n_queries in 3usize..7) {
        use std::sync::OnceLock;
        static TPCH: OnceLock<Catalog> = OnceLock::new();
        let c = TPCH.get_or_init(|| tpch_catalog(0.01));
        let w = tpch_workload(c, n_queries, seed);
        assert_joint_matrix_matches_inum(c, &w, seed ^ 0x5B117);
    }
}

/// Delta evaluation equals full re-evaluation on the partition level:
/// [`CostMatrix::delta_merge`] / [`CostMatrix::delta_split`] match the
/// workload-cost difference of the materialized edited configurations.
#[test]
fn joint_delta_matches_full_reevaluation() {
    let c = catalog();
    let opt = optimizer();
    let inum = Inum::new(c, &opt);
    let w = sdss_workload(c, 9, 505);
    let mut matrix = CostMatrix::build(&inum, &w, &[]);
    let photo = c.schema.table_by_name("photoobj").unwrap().id;
    let frag_ids: Vec<usize> = [
        vec![0u16, 1, 2],
        vec![3, 4, 5, 6],
        (7..16).collect::<Vec<u16>>(),
    ]
    .iter()
    .map(|g| matrix.register_fragment(photo, g))
    .collect();
    let merged = matrix.register_fragment(photo, &[0, 1, 2, 3, 4, 5, 6]);
    let split = matrix.register_split(pgdesign_catalog::design::HorizontalPartitioning::new(
        photo,
        1,
        (1..12).map(|i| i as f64 * 30.0).collect(),
    ));

    let mut cfg = matrix.empty_joint();
    for &f in &frag_ids {
        cfg.fragments.insert(f);
    }

    let mut merged_cfg = matrix.empty_joint();
    merged_cfg.fragments.insert(frag_ids[2]);
    merged_cfg.fragments.insert(merged);
    let full = matrix.joint_workload_cost(&merged_cfg) - matrix.joint_workload_cost(&cfg);
    let delta = matrix.delta_merge(&cfg, frag_ids[0], frag_ids[1], merged);
    assert!(
        (delta - full).abs() < 1e-9,
        "delta_merge {delta} vs full {full}"
    );
    // The merged configuration still agrees with the slow-path oracle.
    let design = matrix.joint_design_of(&merged_cfg);
    let oracle = inum.workload_cost(&design, &w);
    let direct = matrix.joint_workload_cost(&merged_cfg);
    assert!((direct - oracle).abs() <= 1e-6 * oracle.abs().max(1.0));

    let mut split_cfg = cfg.clone();
    split_cfg.splits.insert(split);
    let full = matrix.joint_workload_cost(&split_cfg) - matrix.joint_workload_cost(&cfg);
    let delta = matrix.delta_split(&cfg, split);
    assert!(
        (delta - full).abs() < 1e-9,
        "delta_split {delta} vs full {full}"
    );
}

/// Incremental maintenance equals a fresh build: starting from a random
/// initial matrix, apply a random interleaving of
/// `add_candidate`/`remove_candidate`/`add_query`/`retire_query`, then
/// rebuild a matrix from scratch over the *final* state (live candidates,
/// active queries) and require every configuration cost to agree within
/// 1e-12 (in practice bit-identically — incremental cells run the same
/// code as the cold build).
fn assert_incremental_matches_fresh(
    catalog: &Catalog,
    pool: &Workload,
    cand_pool: &[Index],
    seed: u64,
) {
    use rand::Rng;
    let opt = optimizer();
    let inum = Inum::new(catalog, &opt);
    let mut rng = StdRng::seed_from_u64(seed);

    let nq0 = rng.random_range(1..pool.len().max(2)).min(pool.len());
    let nc0 = rng.random_range(0..cand_pool.len().max(1));
    let init_w = Workload::from_queries((0..nq0).map(|i| pool.query(i).clone()));
    let mut matrix = CostMatrix::build(&inum, &init_w, &cand_pool[..nc0]);

    for _ in 0..14 {
        match rng.random_range(0..4usize) {
            0 if !cand_pool.is_empty() => {
                let idx = &cand_pool[rng.random_range(0..cand_pool.len())];
                matrix.add_candidate(idx);
            }
            1 => {
                let live: Vec<usize> = matrix.candidates().map(|(id, _)| id).collect();
                if !live.is_empty() {
                    matrix.remove_candidate(live[rng.random_range(0..live.len())]);
                }
            }
            2 => {
                let q = pool.query(rng.random_range(0..pool.len()));
                matrix.add_query(q, 1.0);
            }
            _ => {
                let active: Vec<usize> = matrix.active_query_ids().collect();
                if active.len() > 1 {
                    matrix.retire_query(active[rng.random_range(0..active.len())]);
                }
            }
        }
    }

    // Fresh build of the final state.
    let live: Vec<(usize, Index)> = matrix
        .candidates()
        .map(|(id, idx)| (id, idx.clone()))
        .collect();
    let active: Vec<usize> = matrix.active_query_ids().collect();
    let mut final_w = Workload::new();
    for &qid in &active {
        final_w.push(
            matrix.workload().query(qid).clone(),
            matrix.query_weight(qid),
        );
    }
    let fresh_cands: Vec<Index> = live.iter().map(|(_, idx)| idx.clone()).collect();
    let fresh = CostMatrix::build(&inum, &final_w, &fresh_cands);

    for _ in 0..6 {
        // A random subset of the live candidates, expressed in both id
        // spaces (the incremental matrix's stable ids vs the fresh
        // matrix's positions).
        let mut inc_cfg = matrix.empty_config();
        let mut fresh_cfg = fresh.empty_config();
        for (pos, (id, _)) in live.iter().enumerate() {
            if rng.random_range(0..2usize) == 1 {
                inc_cfg.insert(*id);
                fresh_cfg.insert(pos);
            }
        }
        for (pos, &qid) in active.iter().enumerate() {
            let a = matrix.cost(qid, &inc_cfg);
            let b = fresh.cost(pos, &fresh_cfg);
            assert!(
                (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                "incremental {a} vs fresh {b} (qid {qid}, cfg {:?})",
                inc_cfg.ids().collect::<Vec<_>>()
            );
        }
        let wa = matrix.workload_cost(&inc_cfg);
        let wb = fresh.workload_cost(&fresh_cfg);
        assert!(
            (wa - wb).abs() <= 1e-12 * wb.abs().max(1.0),
            "workload cost: incremental {wa} vs fresh {wb}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// SDSS: any interleaving of candidate add/remove and query add/retire
    /// produces a matrix that agrees with a fresh build of the final state.
    #[test]
    fn incremental_matrix_matches_fresh_build_on_sdss(seed in 0u64..1000, n_queries in 4usize..10) {
        let c = catalog();
        let pool = sdss_workload(c, n_queries, seed);
        let cands = workload_candidates(c, &pool, &CandidateConfig::default());
        assert_incremental_matches_fresh(c, &pool, &cands.indexes, seed ^ 0x1AC);
    }

    /// TPC-H: the same incremental-vs-fresh invariant on the other sample
    /// catalog.
    #[test]
    fn incremental_matrix_matches_fresh_build_on_tpch(seed in 0u64..1000, n_queries in 4usize..8) {
        use std::sync::OnceLock;
        static TPCH: OnceLock<Catalog> = OnceLock::new();
        let c = TPCH.get_or_init(|| tpch_catalog(0.01));
        let pool = tpch_workload(c, n_queries, seed);
        let cands = workload_candidates(c, &pool, &CandidateConfig::default());
        assert_incremental_matches_fresh(c, &pool, &cands.indexes, seed ^ 0x7D1F);
    }
}

/// A parallel cold build is bit-identical to a serial one: cells are
/// computed independently per query and written to disjoint slots, so
/// thread count cannot change a single bit of any cost.
#[test]
fn parallel_build_matches_serial_exactly() {
    let c = catalog();
    let opt = optimizer();
    let inum = Inum::new(c, &opt);
    let w = sdss_workload(c, 18, 808);
    let cands = workload_candidates(c, &w, &CandidateConfig::default());
    let serial = CostMatrix::build_with_threads(&inum, &w, &cands.indexes, 1);
    for threads in [2, 4, 7] {
        let parallel = CostMatrix::build_with_threads(&inum, &w, &cands.indexes, threads);
        let mut rng = StdRng::seed_from_u64(threads as u64);
        for _ in 0..8 {
            use rand::Rng;
            let ids: Vec<usize> = (0..cands.indexes.len())
                .filter(|_| rng.random_range(0..3usize) == 0)
                .collect();
            let cfg = serial.config_of(ids.iter().copied());
            for qi in 0..w.len() {
                assert_eq!(
                    serial.cost(qi, &cfg),
                    parallel.cost(qi, &cfg),
                    "{threads}-thread build must be bit-identical (Q{qi}, {ids:?})"
                );
            }
        }
    }
}

/// Workload cost decomposes linearly over queries and weights.
#[test]
fn workload_cost_is_linear() {
    let c = catalog();
    let opt = optimizer();
    let mut rng = StdRng::seed_from_u64(1);
    let q1 = sdss_template(c, 0, &mut rng);
    let q2 = sdss_template(c, 1, &mut rng);
    let d = PhysicalDesign::empty();
    let mut w = pgdesign_query::Workload::new();
    w.push(q1.clone(), 2.0);
    w.push(q2.clone(), 3.0);
    let total = opt.workload_cost(c, &d, &w);
    let manual = 2.0 * opt.cost(c, &d, &q1) + 3.0 * opt.cost(c, &d, &q2);
    assert!((total - manual).abs() < 1e-9);
}

/// The matrix-backed interactive session agrees with the per-design
/// [`Inum::cost`] slow path over random add/remove-index and
/// set-partitioning interleavings: after every edit, each query's
/// `evaluate()` cost must match costing the session's derived design
/// through a fresh INUM oracle to within 1e-9 relative — the
/// `TuningSession` redesign swaps the evaluation path, not the answer.
fn assert_interactive_matches_inum(catalog: &Catalog, workload: &Workload, seed: u64) {
    use pgdesign::Designer;
    use pgdesign_catalog::design::{HorizontalPartitioning, VerticalPartitioning};
    use pgdesign_catalog::schema::TableId;
    use rand::Rng;
    let designer = Designer::new(catalog.clone());
    let mut session = designer.session(workload.clone());
    let opt = optimizer();
    let oracle = Inum::new(catalog, &opt);
    let cands = workload_candidates(catalog, workload, &CandidateConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let tables: Vec<(TableId, u16)> = catalog.schema.tables().map(|t| (t.id, t.width())).collect();

    for _ in 0..12 {
        match rng.random_range(0..6usize) {
            0 | 1 if !cands.indexes.is_empty() => {
                let idx = cands.indexes[rng.random_range(0..cands.indexes.len())].clone();
                session.add_index(idx);
            }
            2 if !cands.indexes.is_empty() => {
                let idx = &cands.indexes[rng.random_range(0..cands.indexes.len())];
                session.remove_index(idx);
            }
            3 | 4 => {
                let (t, width) = tables[rng.random_range(0..tables.len())];
                if width >= 2 {
                    let n_groups = rng.random_range(2..5usize).min(width as usize);
                    let mut groups: Vec<Vec<u16>> = vec![Vec::new(); n_groups];
                    for c in 0..width {
                        groups[rng.random_range(0..n_groups)].push(c);
                    }
                    if rng.random_range(0..3usize) == 0 {
                        // Replicate one column into another group.
                        groups[rng.random_range(0..n_groups)].push(rng.random_range(0..width));
                    }
                    groups.retain(|g| !g.is_empty());
                    session.set_vertical(VerticalPartitioning::new(t, groups));
                }
            }
            _ => {
                let (t, width) = tables[rng.random_range(0..tables.len())];
                let col = rng.random_range(0..width);
                let stats = catalog.table_stats(t).column(col);
                if stats.max > stats.min {
                    let parts = rng.random_range(2..9usize);
                    let bounds: Vec<f64> = (1..parts)
                        .map(|i| stats.min + (stats.max - stats.min) * i as f64 / parts as f64)
                        .collect();
                    let hp = HorizontalPartitioning::new(t, col, bounds);
                    if hp.partitions() >= 2 {
                        session.set_horizontal(hp);
                    }
                }
            }
        }
        let eval = session.evaluate();
        let design = session.design();
        for ((q, _), qb) in workload.iter().zip(&eval.per_query) {
            let slow = oracle.cost(&design, q);
            assert!(
                (qb.whatif_cost - slow).abs() <= 1e-9 * slow.abs().max(1.0),
                "interactive {} vs inum {slow} (design {design:?})",
                qb.whatif_cost
            );
        }
    }
    // And the whole exploration issued zero per-design cost calls on the
    // session's own INUM.
    assert_eq!(
        session.tuning_stats().inum.cost_calls,
        0,
        "interactive evaluation must stay on matrix lookups"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// SDSS: random interactive explorations cost identically through the
    /// session matrix and the per-design slow path.
    #[test]
    fn interactive_session_matches_inum_on_sdss(seed in 0u64..1000, n_queries in 3usize..8) {
        let c = catalog();
        let w = sdss_workload(c, n_queries, seed);
        assert_interactive_matches_inum(c, &w, seed ^ 0x5E55);
    }

    /// TPC-H: the same interactive invariant on the other sample catalog.
    #[test]
    fn interactive_session_matches_inum_on_tpch(seed in 0u64..1000, n_queries in 3usize..6) {
        use std::sync::OnceLock;
        static TPCH: OnceLock<Catalog> = OnceLock::new();
        let c = TPCH.get_or_init(|| tpch_catalog(0.01));
        let w = tpch_workload(c, n_queries, seed);
        assert_interactive_matches_inum(c, &w, seed ^ 0x1E55);
    }
}

/// One session serves the stream *and* the advisors: an offline
/// recommendation requested right after an online run reuses the warm
/// matrix instead of rebuilding (`cells_reused` grows, `builds` does not).
#[test]
fn offline_recommendation_after_online_run_reuses_cells() {
    use pgdesign::{Designer, IndexAdvisor};
    use pgdesign_colt::ColtConfig;
    let c = catalog();
    let designer = Designer::new(c.clone());
    let mut session = designer.online_session(ColtConfig {
        epoch_length: 10,
        ..Default::default()
    });
    let q =
        pgdesign_query::parse_query(&c.schema, "SELECT ra FROM photoobj WHERE objid = 42").unwrap();
    session.observe_all(std::iter::repeat_with(|| q.clone()).take(30));
    let before = session.tuning_stats();
    let rec = session.advise(&mut IndexAdvisor::default());
    let after = session.tuning_stats();
    assert_eq!(after.matrix.builds, before.matrix.builds, "no rebuild");
    assert!(
        after.matrix.cells_reused > before.matrix.cells_reused,
        "warm cells must be reused: {:?} -> {:?}",
        before.matrix,
        after.matrix
    );
    assert!(rec.cost <= rec.base_cost + 1e-6);
}

/// Duplicate candidates handed to `build` stay findable through
/// `candidate_id` even after the map-owning copy is removed (the O(1)
/// dedupe map re-points to a surviving live duplicate).
#[test]
fn duplicate_candidates_stay_findable_after_removal() {
    let c = catalog();
    let opt = optimizer();
    let inum = Inum::new(c, &opt);
    let w = sdss_workload(c, 3, 909);
    let photo = c.schema.table_by_name("photoobj").unwrap().id;
    let x = Index::new(photo, vec![0]);
    let mut m = CostMatrix::build(&inum, &w, &[x.clone(), x.clone()]);
    assert_eq!(m.candidate_id(&x), Some(0), "first registration wins");
    m.remove_candidate(0);
    assert_eq!(
        m.candidate_id(&x),
        Some(1),
        "the surviving duplicate must stay findable"
    );
    let id = m.add_candidate(&x);
    assert_eq!(
        id, 1,
        "re-adding must reuse the live duplicate, not recompute"
    );
    m.remove_candidate(1);
    assert_eq!(m.candidate_id(&x), None);
}

/// Lock-free reader snapshots agree with serial rebuilds under live
/// rotation: N reader threads take snapshots through [`MatrixReader`] and
/// issue random `cost`/`joint_cost` lookups while the writer interleaves
/// `add_candidates`/`remove_candidate`/`add_query`/`retire_query` and
/// publishes a new generation per round. The writer records the exact
/// (active queries, live candidates) state behind every generation; after
/// the threads join, each reader-observed (generation, lookup) pair must
/// agree within 1e-12 with a fresh serial build of that generation's
/// recorded state. Finally, a burst of snapshot lookups is pinned to zero
/// [`Inum::cost`] traffic — the reader hot path is matrix-only.
fn assert_concurrent_readers_match_serial(
    catalog: &Catalog,
    pool: &Workload,
    cand_pool: &[Index],
    seed: u64,
) {
    use rand::Rng;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};

    let opt = optimizer();
    let inum = Inum::new(catalog, &opt);
    let mut rng = StdRng::seed_from_u64(seed);

    let nq0 = rng.random_range(1..pool.len().max(2)).min(pool.len());
    let nc0 = rng.random_range(0..cand_pool.len().max(1));
    let init_w = Workload::from_queries((0..nq0).map(|i| pool.query(i).clone()));
    let mut matrix = CostMatrix::build(&inum, &init_w, &cand_pool[..nc0]);

    // Everything needed to rebuild a generation serially: the ordered
    // active (qid, query, weight) list and the ordered live (cand id,
    // index) list at publish time. Generation g lives at `states[g]`.
    type GenState = (
        Vec<(usize, pgdesign_query::Query, f64)>,
        Vec<(usize, Index)>,
    );
    fn record(m: &CostMatrix<'_>) -> GenState {
        let actives = m
            .active_query_ids()
            .map(|qid| (qid, m.workload().query(qid).clone(), m.query_weight(qid)))
            .collect();
        let live = m.candidates().map(|(id, idx)| (id, idx.clone())).collect();
        (actives, live)
    }
    let mut states: Vec<GenState> = vec![record(&matrix)];

    // Each observation is (generation, qid, live cand ids, joint?, cost).
    type Observation = (u64, usize, Vec<usize>, bool, f64);

    let done = AtomicBool::new(false);
    let reader0 = matrix.reader();

    let observations: Vec<Observation> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3u64)
            .map(|t| {
                let mut reader = reader0.clone();
                let done = &done;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (0xBEEF + t));
                    let mut obs: Vec<Observation> = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        reader.refresh();
                        let snap = reader.snapshot();
                        let generation = snap.generation();
                        let actives: Vec<usize> = snap.active_query_ids().collect();
                        let live: Vec<usize> = snap.candidates().map(|(id, _)| id).collect();
                        if actives.is_empty() {
                            continue;
                        }
                        let qid = actives[rng.random_range(0..actives.len())];
                        let ids: Vec<usize> = live
                            .iter()
                            .copied()
                            .filter(|_| rng.random_range(0..2usize) == 1)
                            .collect();
                        let joint = rng.random_range(0..2usize) == 1;
                        let cost = if joint {
                            let mut cfg = snap.empty_joint();
                            for &id in &ids {
                                cfg.indexes.insert(id);
                            }
                            snap.joint_cost(qid, &cfg)
                        } else {
                            snap.cost(qid, &snap.config_of(ids.iter().copied()))
                        };
                        if obs.len() < 160 {
                            obs.push((generation, qid, ids, joint, cost));
                        }
                    }
                    obs
                })
            })
            .collect();

        // The writer rotates the live state and publishes one generation
        // per round, on this thread, while the readers hammer snapshots.
        for _round in 0..5 {
            for _ in 0..3 {
                match rng.random_range(0..4usize) {
                    0 if !cand_pool.is_empty() => {
                        let idx = cand_pool[rng.random_range(0..cand_pool.len())].clone();
                        matrix.add_candidates(&[idx]);
                    }
                    1 => {
                        let live: Vec<usize> = matrix.candidates().map(|(id, _)| id).collect();
                        if !live.is_empty() {
                            matrix.remove_candidate(live[rng.random_range(0..live.len())]);
                        }
                    }
                    2 => {
                        let q = pool.query(rng.random_range(0..pool.len()));
                        matrix.add_query(q, 1.0);
                    }
                    _ => {
                        let active: Vec<usize> = matrix.active_query_ids().collect();
                        if active.len() > 1 {
                            matrix.retire_query(active[rng.random_range(0..active.len())]);
                        }
                    }
                }
            }
            states.push(record(&matrix));
            let generation = matrix.publish();
            assert_eq!(
                generation as usize,
                states.len() - 1,
                "publish must advance the generation by exactly one"
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        done.store(true, Ordering::Release);
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader thread panicked"))
            .collect()
    });
    assert!(
        !observations.is_empty(),
        "readers must record at least one lookup"
    );

    // Reader hot-path pin: snapshot lookups are pure matrix arithmetic —
    // no Inum::cost calls, no writer-side matrix-lookup counters, only
    // the dedicated reader counter moves.
    let stats_before = inum.stats();
    let matrix_before = inum.matrix_stats();
    let reader_before = matrix.reader_lookups();
    let mut pin_reader = matrix.reader();
    pin_reader.refresh();
    let snap = pin_reader.snapshot();
    let actives: Vec<usize> = snap.active_query_ids().collect();
    let cfg = snap.empty_config();
    for &qid in &actives {
        let _ = snap.cost(qid, &cfg);
    }
    assert_eq!(
        inum.stats(),
        stats_before,
        "snapshot lookups must issue zero Inum::cost calls"
    );
    assert_eq!(
        inum.matrix_stats().lookups,
        matrix_before.lookups,
        "snapshot lookups must not move the writer-side lookup counter"
    );
    assert_eq!(
        matrix.reader_lookups(),
        reader_before + actives.len() as u64,
        "every snapshot lookup lands on the reader counter"
    );

    // Verify every observed generation against a fresh serial build of
    // its recorded state (ids translated through position maps, as in
    // the incremental-vs-fresh invariant).
    let mut by_gen: std::collections::BTreeMap<u64, Vec<&Observation>> =
        std::collections::BTreeMap::new();
    for o in &observations {
        by_gen.entry(o.0).or_default().push(o);
    }
    for (&generation, obs) in &by_gen {
        let (actives, live) = &states[generation as usize];
        let mut fresh_w = Workload::new();
        for (_, q, wt) in actives {
            fresh_w.push(q.clone(), *wt);
        }
        let fresh_cands: Vec<Index> = live.iter().map(|(_, idx)| idx.clone()).collect();
        let fresh = CostMatrix::build_with_threads(&inum, &fresh_w, &fresh_cands, 1);
        let qpos: HashMap<usize, usize> = actives
            .iter()
            .enumerate()
            .map(|(p, (qid, _, _))| (*qid, p))
            .collect();
        let cpos: HashMap<usize, usize> = live
            .iter()
            .enumerate()
            .map(|(p, (cid, _))| (*cid, p))
            .collect();
        for (_, qid, ids, joint, cost) in obs {
            let pos_ids: Vec<usize> = ids.iter().map(|id| cpos[id]).collect();
            let qp = qpos[qid];
            let serial = if *joint {
                let mut jcfg = fresh.empty_joint();
                for &p in &pos_ids {
                    jcfg.indexes.insert(p);
                }
                fresh.joint_cost(qp, &jcfg)
            } else {
                fresh.cost(qp, &fresh.config_of(pos_ids.iter().copied()))
            };
            assert!(
                (cost - serial).abs() <= 1e-12 * serial.abs().max(1.0),
                "reader saw {cost} at generation {generation}, serial rebuild says {serial} \
                 (qid {qid}, cands {ids:?}, joint {joint})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// SDSS: concurrent snapshot readers agree with serial rebuilds of
    /// every published generation, under live epoch rotation.
    #[test]
    fn concurrent_readers_match_serial_on_sdss(seed in 0u64..1000, n_queries in 4usize..9) {
        let c = catalog();
        let pool = sdss_workload(c, n_queries, seed);
        let cands = workload_candidates(c, &pool, &CandidateConfig::default());
        assert_concurrent_readers_match_serial(c, &pool, &cands.indexes, seed ^ 0xC0C0);
    }

    /// TPC-H: the same concurrent-agreement invariant on the other sample
    /// catalog.
    #[test]
    fn concurrent_readers_match_serial_on_tpch(seed in 0u64..1000, n_queries in 4usize..7) {
        use std::sync::OnceLock;
        static TPCH: OnceLock<Catalog> = OnceLock::new();
        let c = TPCH.get_or_init(|| tpch_catalog(0.01));
        let pool = tpch_workload(c, n_queries, seed);
        let cands = workload_candidates(c, &pool, &CandidateConfig::default());
        assert_concurrent_readers_match_serial(c, &pool, &cands.indexes, seed ^ 0x1EAD);
    }
}

// ---------------------------------------------------------------------------
// Durability: snapshot + edit-log round trips, crash and corruption recovery
// ---------------------------------------------------------------------------

use pgdesign::{ColdStart, Designer, TuningSession};
use pgdesign_catalog::design::HorizontalPartitioning;
use pgdesign_catalog::TableId;
use pgdesign_durability::{
    log_append, log_open, log_reset, read_snapshot, write_snapshot, DurableStore, Failpoint,
    LogState, MemStore, SharedMemStore,
};
use pgdesign_inum::{decode_edit, decode_snapshot, encode_edit, encode_published, restore_matrix};

/// Every cost the two matrices can produce agrees within 1e-12 (in
/// practice bit-identically — replayed edits and restored cells run the
/// same arithmetic as the live mutations did).
fn assert_matrices_agree(live: &CostMatrix, restored: &CostMatrix, seed: u64) {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let close = |a: f64, b: f64, what: &str| {
        assert!(
            (a - b).abs() <= 1e-12 * b.abs().max(1.0),
            "{what}: live {a} vs restored {b}"
        );
    };
    assert_eq!(live.n_queries(), restored.n_queries());
    assert_eq!(live.n_candidates(), restored.n_candidates());
    let live_ids: Vec<usize> = live.candidates().map(|(id, _)| id).collect();
    let restored_ids: Vec<usize> = restored.candidates().map(|(id, _)| id).collect();
    assert_eq!(live_ids, restored_ids, "stable candidate ids must survive");
    for _ in 0..6 {
        let picked: Vec<usize> = live_ids
            .iter()
            .copied()
            .filter(|_| rng.random_range(0..2usize) == 1)
            .collect();
        let cfg = live.config_of(picked.iter().copied());
        for qid in live.active_query_ids() {
            assert!(restored.query_active(qid));
            close(live.cost(qid, &cfg), restored.cost(qid, &cfg), "cost");
        }
        close(
            live.workload_cost(&cfg),
            restored.workload_cost(&cfg),
            "workload cost",
        );
    }
    if live.n_fragments() > 0 || live.n_splits() > 0 {
        let mut joint = live.empty_joint();
        for f in 0..live.n_fragments() {
            joint.fragments.insert(f);
        }
        for s in 0..live.n_splits() {
            joint.splits.insert(s);
        }
        close(
            live.joint_workload_cost(&joint),
            restored.joint_workload_cost(&joint),
            "joint workload cost",
        );
    }
}

/// The durable round trip as the session performs it, at a random cut: a
/// live matrix absorbs a random op interleaving (journaled); somewhere in
/// the middle a checkpoint folds the state into a fresh snapshot; the
/// remaining edits land in the log. Decoding the snapshot and replaying
/// the log on a *second* INUM must agree with the live matrix on every
/// cost, within 1e-12.
fn assert_durable_roundtrip_matches_live(
    catalog: &Catalog,
    pool: &Workload,
    cand_pool: &[Index],
    seed: u64,
) {
    use rand::Rng;
    let opt = optimizer();
    let inum = Inum::new(catalog, &opt);
    let mut rng = StdRng::seed_from_u64(seed);

    let nq0 = rng.random_range(1..pool.len().max(2)).min(pool.len());
    let init_w = Workload::from_queries((0..nq0).map(|i| pool.query(i).clone()));
    let nc0 = rng.random_range(0..cand_pool.len().max(1));
    let mut live = CostMatrix::build(&inum, &init_w, &cand_pool[..nc0]);
    live.publish();

    let mut store = MemStore::new();
    let mut crc = write_snapshot(&mut store, "m.pgds", &encode_published(&live)).unwrap();
    log_reset(&mut store, "m.pgdl", crc).unwrap();
    live.enable_journal();

    let n_ops = 14;
    let cut = rng.random_range(0..n_ops);
    for i in 0..n_ops {
        match rng.random_range(0..7usize) {
            0 if !cand_pool.is_empty() => {
                live.add_candidate(&cand_pool[rng.random_range(0..cand_pool.len())]);
            }
            1 => {
                let ids: Vec<usize> = live.candidates().map(|(id, _)| id).collect();
                if !ids.is_empty() {
                    live.remove_candidate(ids[rng.random_range(0..ids.len())]);
                }
            }
            2 => {
                let q = pool.query(rng.random_range(0..pool.len()));
                live.add_query(q, 1.0 + rng.random_range(0..3) as f64);
            }
            3 => {
                let active: Vec<usize> = live.active_query_ids().collect();
                if active.len() > 1 {
                    live.retire_query(active[rng.random_range(0..active.len())]);
                }
            }
            4 => {
                live.register_fragment(TableId(0), &[0, 1]);
            }
            5 => {
                live.register_split(HorizontalPartitioning {
                    table: TableId(0),
                    column: 0,
                    bounds: vec![0.25, 0.5],
                });
            }
            _ => {
                live.publish();
            }
        }
        if i == cut {
            // Checkpoint exactly as the session does: publish, fold the
            // published state into a fresh snapshot, truncate the log.
            live.publish();
            let _ = live.take_journal();
            crc = write_snapshot(&mut store, "m.pgds", &encode_published(&live)).unwrap();
            log_reset(&mut store, "m.pgdl", crc).unwrap();
        }
    }
    live.publish();
    for edit in live.take_journal() {
        log_append(&mut store, "m.pgdl", &encode_edit(&edit)).unwrap();
    }

    // Recover on a second INUM over the same catalog.
    let opt2 = optimizer();
    let inum2 = Inum::new(catalog, &opt2);
    let file = read_snapshot(&mut store, "m.pgds").unwrap();
    let decoded = decode_snapshot(&file.records).unwrap();
    let (mut restored, _) = restore_matrix(&inum2, decoded).unwrap();
    match log_open(&mut store, "m.pgdl", file.body_crc).unwrap() {
        LogState::Replay(scan) => {
            assert_eq!(scan.dropped_records, 0, "clean log has no torn tail");
            for rec in &scan.records {
                restored.apply_edit(&decode_edit(rec).unwrap());
            }
        }
        other => panic!("expected a replayable log, got {other:?}"),
    }
    assert_eq!(inum2.matrix_stats().builds, 0, "restore must not build");
    assert_eq!(
        live.published_generation(),
        restored.published_generation(),
        "publication numbering continues across the round trip"
    );
    assert_matrices_agree(&live, &restored, seed ^ 0xD17A);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// SDSS: durable snapshot + replayed edit log equals the live matrix.
    #[test]
    fn durable_roundtrip_matches_live_on_sdss(seed in 0u64..1000, n_queries in 3usize..8) {
        let c = catalog();
        let w = sdss_workload(c, n_queries, seed);
        let cands = workload_candidates(c, &w, &CandidateConfig::default());
        assert_durable_roundtrip_matches_live(c, &w, &cands.indexes, seed ^ 0x5EED);
    }

    /// TPC-H: same invariant on the other catalog family.
    #[test]
    fn durable_roundtrip_matches_live_on_tpch(seed in 0u64..1000, n_queries in 3usize..6) {
        use std::sync::OnceLock;
        static TPCH: OnceLock<Catalog> = OnceLock::new();
        let c = TPCH.get_or_init(|| tpch_catalog(0.01));
        let w = tpch_workload(c, n_queries, seed);
        let cands = workload_candidates(c, &w, &CandidateConfig::default());
        assert_durable_roundtrip_matches_live(c, &w, &cands.indexes, seed ^ 0x7C4);
    }
}

/// A restored session's costs must equal a cold build over whatever state
/// it recovered — the "never a wrong cost" half of the recovery contract.
/// (Which prefix of the edits survived the crash is allowed to vary; a
/// matrix inconsistent with *any* committed state is not.)
fn assert_restored_is_consistent(session: &mut TuningSession, seed: u64) {
    use rand::Rng;
    let matrix = session.matrix_mut();
    let opt = optimizer();
    let inum = Inum::new(catalog(), &opt);
    let live: Vec<(usize, Index)> = matrix
        .candidates()
        .map(|(id, idx)| (id, idx.clone()))
        .collect();
    let active: Vec<usize> = matrix.active_query_ids().collect();
    let mut w = Workload::new();
    for &qid in &active {
        w.push(
            matrix.workload().query(qid).clone(),
            matrix.query_weight(qid),
        );
    }
    let fresh_cands: Vec<Index> = live.iter().map(|(_, idx)| idx.clone()).collect();
    let fresh = CostMatrix::build(&inum, &w, &fresh_cands);

    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..6 {
        let mut rec_cfg = matrix.empty_config();
        let mut fresh_cfg = fresh.empty_config();
        for (pos, (id, _)) in live.iter().enumerate() {
            if rng.random_range(0..2usize) == 1 {
                rec_cfg.insert(*id);
                fresh_cfg.insert(pos);
            }
        }
        for (pos, &qid) in active.iter().enumerate() {
            let a = matrix.cost(qid, &rec_cfg);
            let b = fresh.cost(pos, &fresh_cfg);
            assert!(
                (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                "restored {a} vs cold {b} (qid {qid})"
            );
        }
        let wa = matrix.workload_cost(&rec_cfg);
        let wb = fresh.workload_cost(&fresh_cfg);
        assert!(
            (wa - wb).abs() <= 1e-12 * wb.abs().max(1.0),
            "workload: restored {wa} vs cold {wb}"
        );
    }
}

/// Crash mid-append at many byte offsets: whatever prefix of the log
/// survives, the reopened session is internally consistent — its costs
/// equal a cold build over the state it recovered. No failpoint may ever
/// produce a *wrong* cost.
#[test]
fn crash_mid_append_never_yields_a_wrong_cost() {
    let c = catalog();
    let designer = Designer::new(c.clone());
    let w = sdss_workload(c, 5, 4242);
    let cands = workload_candidates(c, &w, &CandidateConfig::default());

    for (round, crash_after) in [3usize, 9, 17, 40, 90, 400].into_iter().enumerate() {
        let disk = SharedMemStore::new();
        {
            let mut s =
                TuningSession::open_or_create_on(&designer, w.clone(), Box::new(disk.clone()))
                    .expect("first open");
            disk.lock()
                .arm(Failpoint::CrashAfterBytes { n: crash_after });
            // Mutations after arming: the log append crashes partway
            // through one of these records. The session degrades and keeps
            // running in memory; we then drop it — the kill.
            let m = s.matrix_mut();
            for idx in cands.indexes.iter().take(3) {
                m.add_candidate(idx);
            }
            m.register_fragment(TableId(0), &[0, 1]);
            s.publish();
        }
        // Restart: an arbitrary prefix of the un-fsync'd tail made it out.
        disk.lock().power_cut(round % 3);
        let mut s =
            TuningSession::open_or_create_on(&designer, Workload::new(), Box::new(disk.clone()))
                .expect("reopen after crash");
        let stats = s.stats();
        let recovery = stats.recovery.expect("durable session");
        assert_eq!(recovery.cold_start, None, "snapshot survived the crash");
        assert_restored_is_consistent(&mut s, 0xC0FE ^ crash_after as u64);
    }
}

/// A flipped byte in the log's tail record: the per-record CRC catches it,
/// the tail is dropped, and recovery lands on the last good record.
#[test]
fn flipped_byte_in_log_tail_is_dropped_at_last_good_record() {
    let c = catalog();
    let designer = Designer::new(c.clone());
    let w = sdss_workload(c, 4, 777);
    let disk = SharedMemStore::new();
    {
        let mut s = TuningSession::open_or_create_on(&designer, w.clone(), Box::new(disk.clone()))
            .expect("first open");
        let m = s.matrix_mut();
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        m.add_candidate(&Index::new(photo, vec![0]));
        s.publish();
        s.matrix_mut().add_candidate(&Index::new(photo, vec![1]));
        s.publish();
    }
    // Flip a byte inside the last appended record.
    let len = disk.lock().durable_len("matrix.pgdl");
    disk.lock().corrupt("matrix.pgdl", len - 2);

    let mut s =
        TuningSession::open_or_create_on(&designer, Workload::new(), Box::new(disk.clone()))
            .expect("reopen");
    let stats = s.stats();
    let recovery = stats.recovery.expect("durable session");
    assert_eq!(recovery.cold_start, None);
    assert!(
        recovery.log_records_dropped > 0,
        "the corrupt tail record must be counted as dropped"
    );
    assert_restored_is_consistent(&mut s, 0xBADC);
}

/// A flipped byte in the snapshot body: the whole-body CRC rejects it and
/// the session degrades to a cold build — with the reason on record —
/// rather than costing from corrupt cells.
#[test]
fn flipped_byte_in_snapshot_degrades_to_cold_build() {
    let c = catalog();
    let designer = Designer::new(c.clone());
    let w = sdss_workload(c, 4, 778);
    let disk = SharedMemStore::new();
    {
        let _s = TuningSession::open_or_create_on(&designer, w.clone(), Box::new(disk.clone()))
            .expect("first open");
    }
    let len = disk.lock().durable_len("matrix.pgds");
    disk.lock().corrupt("matrix.pgds", len / 2);

    let mut s = TuningSession::open_or_create_on(&designer, w.clone(), Box::new(disk.clone()))
        .expect("reopen never fails on corruption");
    let stats = s.stats();
    assert_eq!(
        stats.recovery.and_then(|r| r.cold_start),
        Some(ColdStart::SnapshotCorrupt)
    );
    assert_eq!(stats.matrix.builds, 1, "cold build replaces the bad state");
    assert_restored_is_consistent(&mut s, 0xC01D);
}

/// A snapshot from a future (or past) format version is refused up front —
/// cold build with `VersionSkew` on record, never a misdecoded matrix.
#[test]
fn version_skewed_snapshot_degrades_to_cold_build() {
    let c = catalog();
    let designer = Designer::new(c.clone());
    let w = sdss_workload(c, 4, 779);
    let disk = SharedMemStore::new();
    {
        let _s = TuningSession::open_or_create_on(&designer, w.clone(), Box::new(disk.clone()))
            .expect("first open");
    }
    // The format version is the u32 after the 4-byte magic; rewrite it.
    let mut bytes = disk.lock().read("matrix.pgds").unwrap().unwrap();
    bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    disk.lock().write_atomic("matrix.pgds", &bytes).unwrap();

    let s = TuningSession::open_or_create_on(&designer, w.clone(), Box::new(disk.clone()))
        .expect("reopen never fails on skew");
    assert_eq!(
        s.stats().recovery.and_then(|r| r.cold_start),
        Some(ColdStart::VersionSkew)
    );
}
