//! Tier-1 chaos gate: a fixed range of seeded fault schedules against
//! the full online daemon (see `pgdesign_bench::chaos` for the engine
//! and the invariants). Fixed seeds keep this gating step reproducible;
//! the larger randomized soak lives in the `chaos` bench
//! (`cargo bench -p pgdesign-bench --bench chaos`). `CHAOS_SCHEDULES`
//! overrides the schedule count without touching the seed base.

use pgdesign_bench::chaos;

const SEED_BASE: u64 = 0xC4A0_5000;

fn schedule_count() -> usize {
    std::env::var("CHAOS_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000)
}

/// The headline gate: ≥1000 seeded schedules, zero panics, every served
/// cost within 1e-12 of a fresh rebuild of its generation's recorded
/// state, and a reader never left without an answerable snapshot (those
/// two invariants assert inside the engine; this test additionally pins
/// that the sweep actually exercised every fault class).
#[test]
fn chaos_schedules_hold_invariants_under_faults() {
    let n = schedule_count();
    let out = chaos::run_schedules(SEED_BASE, n);
    println!("{out:#?}");
    assert_eq!(out.schedules as usize, n);
    assert!(
        out.max_rel_err <= 1e-12,
        "served costs drifted: {:.3e}",
        out.max_rel_err
    );

    // Coverage pins: a sweep that never hit a fault class proves nothing.
    assert!(
        out.epochs >= n as u64,
        "too few epoch boundaries: {}",
        out.epochs
    );
    assert!(out.hostile_rejected > 0, "no hostile SQL was exercised");
    assert!(out.faults_injected > 0, "no store failpoints were armed");
    assert!(out.restarts > 0, "no kill/restart cycles ran");
    assert!(out.drifts_applied > 0, "no catalog drift was applied");
    assert!(out.drifts_rejected > 0, "no poisoned drift was rejected");
    assert!(
        out.degraded_epochs > 0,
        "deadline pressure never tripped the ladder"
    );
    assert!(out.lookups_verified > 0, "no served costs were verified");
    assert!(
        out.availability_checks > 0,
        "reader availability never probed"
    );
}

/// Schedules are pure functions of their seed: the same seed replays to
/// the identical outcome (manual clock, deterministic backoff, no wall
/// time anywhere in the schedule path).
#[test]
fn chaos_schedules_are_deterministic() {
    for seed in [SEED_BASE, SEED_BASE + 7, SEED_BASE + 42] {
        let a = chaos::run_schedule(seed);
        let b = chaos::run_schedule(seed);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "seed {seed} did not replay"
        );
    }
}
