//! Ablations of the design choices DESIGN.md calls out, expressed as
//! executable assertions rather than prose.

use pgdesign_catalog::design::{Index, PhysicalDesign};
use pgdesign_catalog::samples::sdss_catalog;
use pgdesign_cophy::merging::augment_with_merges;
use pgdesign_cophy::{greedy_select, CophyAdvisor, CophyConfig};
use pgdesign_inum::{CostMatrix, Inum};
use pgdesign_optimizer::candidates::{workload_candidates, CandidateConfig};
use pgdesign_optimizer::{CostParams, JoinControl, Optimizer};
use pgdesign_query::compress::{compress, Representative};
use pgdesign_query::generators::sdss_workload;

/// Ablation: the random/sequential page-cost ratio drives index adoption.
/// With random I/O priced like sequential (SSD-extreme), far more index
/// scans win; with a punishing ratio, sequential scans dominate.
#[test]
fn random_page_cost_ratio_shifts_index_adoption() {
    let c = sdss_catalog(0.01);
    let w = sdss_workload(&c, 18, 1);
    let budget = c.data_bytes();

    let count_for = |random_page_cost: f64| -> usize {
        let opt = Optimizer::with_params(CostParams {
            random_page_cost,
            ..Default::default()
        });
        let inum = Inum::new(&c, &opt);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        greedy_select(&matrix, budget).chosen.len()
    };
    let ssd = count_for(1.1);
    let disk = count_for(40.0);
    assert!(
        ssd >= disk,
        "cheap random I/O should never select fewer indexes: ssd {ssd} vs disk {disk}"
    );
}

/// Ablation: restricting the candidate pool to single-column indexes (the
/// COLT restriction) costs real benefit on multi-predicate workloads.
#[test]
fn multicolumn_candidates_beat_single_column_pool() {
    let c = sdss_catalog(0.01);
    let w = sdss_workload(&c, 18, 2);
    let opt = Optimizer::new();
    let inum = Inum::new(&c, &opt);
    let budget = c.data_bytes();
    let single = {
        let cands = workload_candidates(&c, &w, &CandidateConfig::single_column());
        greedy_select(&CostMatrix::build(&inum, &w, &cands.indexes), budget).cost
    };
    let multi = {
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        greedy_select(&CostMatrix::build(&inum, &w, &cands.indexes), budget).cost
    };
    assert!(
        multi < single,
        "multi-column candidates must help: {multi} vs {single}"
    );
}

/// Ablation: merged candidates never hurt and the pool stays bounded.
#[test]
fn merge_augmentation_is_weakly_beneficial_across_budgets() {
    let c = sdss_catalog(0.01);
    let w = sdss_workload(&c, 18, 3);
    let opt = Optimizer::new();
    let inum = Inum::new(&c, &opt);
    let base = workload_candidates(&c, &w, &CandidateConfig::default());
    let augmented = augment_with_merges(&c, &base, 4, 64);
    // The matrices are built once; the per-budget greedy runs below are
    // pure lookups against them.
    let base_matrix = CostMatrix::build(&inum, &w, &base.indexes);
    let augmented_matrix = CostMatrix::build(&inum, &w, &augmented.indexes);
    for divisor in [4u64, 16, 64] {
        let budget = c.data_bytes() / divisor;
        let plain = greedy_select(&base_matrix, budget);
        let merged = greedy_select(&augmented_matrix, budget);
        assert!(
            merged.cost <= plain.cost + 1e-6,
            "budget 1/{divisor}: merged {} vs plain {}",
            merged.cost,
            plain.cost
        );
    }
}

/// Ablation: workload compression preserves the recommendation's benefit
/// while shrinking the tuning input.
#[test]
fn compressed_workload_yields_equivalent_designs() {
    let c = sdss_catalog(0.01);
    let trace = sdss_workload(&c, 54, 4); // 9 templates × 6 instances
    let compressed = compress(&trace, Representative::Median);
    assert!(compressed.ratio() > 1.0);

    let opt = Optimizer::new();
    let inum = Inum::new(&c, &opt);
    let budget = c.data_bytes() / 2;
    let advisor = CophyAdvisor::new(
        &inum,
        CophyConfig {
            storage_budget_bytes: budget,
            ..Default::default()
        },
    );
    let from_full = advisor.recommend(&trace);
    let from_compressed = advisor.recommend(&compressed.workload);

    // Evaluate both designs on the FULL trace.
    let eval = |d: &PhysicalDesign| inum.workload_cost(d, &trace);
    let full_cost = eval(&from_full.design);
    let comp_cost = eval(&from_compressed.design);
    assert!(
        comp_cost <= full_cost * 1.10,
        "compression lost too much: {comp_cost} vs {full_cost}"
    );
}

/// Ablation: disabling nested loops (as INUM's space does) hurts join
/// queries with selective outer sides — quantifying what INUM gives up.
#[test]
fn nestloop_matters_for_selective_joins() {
    let c = sdss_catalog(0.02);
    let photo = c.schema.table_by_name("photoobj").unwrap().id;
    let q = pgdesign_query::parse_query(
        &c.schema,
        "SELECT p.ra FROM photoobj p, specobj s \
         WHERE p.objid = s.bestobjid AND s.specobjid = 7",
    )
    .unwrap();
    let d = PhysicalDesign::with_indexes([Index::new(photo, vec![0])]);
    let with_nlj = Optimizer::new().cost(&c, &d, &q);
    let without = Optimizer::new()
        .with_control(JoinControl {
            nestloop: false,
            ..Default::default()
        })
        .cost(&c, &d, &q);
    assert!(
        with_nlj < without / 5.0,
        "index NLJ should dominate here: {with_nlj} vs {without}"
    );
}

/// Ablation: the INUM combination cap is safe — the all-unordered
/// combination alone already upper-bounds the true cost, so capping can
/// only tighten, never break, the estimate.
#[test]
fn inum_estimate_is_always_an_upper_bound_on_no_nlj_cost() {
    let c = sdss_catalog(0.01);
    let opt = Optimizer::new().with_control(JoinControl {
        nestloop: false,
        ..Default::default()
    });
    let inum = Inum::new(&c, &opt);
    let w = sdss_workload(&c, 27, 5);
    let photo = c.schema.table_by_name("photoobj").unwrap().id;
    for design in [
        PhysicalDesign::empty(),
        PhysicalDesign::with_indexes([Index::new(photo, vec![1, 2]), Index::new(photo, vec![6])]),
    ] {
        for (q, _) in w.iter() {
            let fast = inum.cost(&design, q);
            let exact = opt.cost(&c, &design, q);
            assert!(
                fast >= exact * 0.95,
                "INUM undercuts the optimizer: {fast} vs {exact}"
            );
        }
    }
}
