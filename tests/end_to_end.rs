//! Cross-crate integration tests: the three demo scenarios end-to-end.

use pgdesign::Designer;
use pgdesign_catalog::design::{Index, PhysicalDesign};
use pgdesign_catalog::samples::sdss_catalog;
use pgdesign_colt::ColtConfig;
use pgdesign_query::generators::{sdss_workload, DriftingStream};
use pgdesign_query::{parse_query, Workload};

#[test]
fn scenario1_interactive_whatif_roundtrip() {
    let catalog = sdss_catalog(0.01);
    let sqls = [
        "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 150 AND 160",
        "SELECT objid FROM photoobj WHERE type = 3 AND r < 15 ORDER BY r",
        "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid",
    ];
    let workload: Workload = sqls
        .iter()
        .map(|s| parse_query(&catalog.schema, s).unwrap())
        .collect();
    let designer = Designer::new(catalog);
    let mut session = designer.session(workload);

    let baseline = session.evaluate();
    assert_eq!(baseline.average_benefit(), 0.0);

    session
        .add_index_by_name("photoobj", &["type", "r"])
        .unwrap();
    session.add_index_by_name("photoobj", &["objid"]).unwrap();
    session
        .add_index_by_name("specobj", &["bestobjid"])
        .unwrap();

    let tuned = session.evaluate();
    assert!(tuned.average_benefit() > 0.1);
    assert!(tuned.index_bytes > 0, "what-if indexes have real sizes");

    // The graph exists and renders.
    let graph = session.interaction_graph();
    let dot = graph.to_dot(&designer.catalog.schema, 10);
    assert!(dot.contains("graph interactions"));
}

#[test]
fn scenario2_offline_design_shapes_hold() {
    let catalog = sdss_catalog(0.01);
    let workload = sdss_workload(&catalog, 18, 99);
    let designer = Designer::new(catalog);
    let data = designer.catalog.data_bytes();

    let half = designer.recommend(&workload, data / 2);
    // The advisor finds a real improvement.
    assert!(half.average_benefit() > 0.2, "{}", half.average_benefit());
    // Budget respected.
    assert!(half.indexes.total_index_bytes <= data / 2);
    // The interaction-aware schedule is no worse than naive.
    assert!(half.schedule.area <= half.naive_schedule.area + 1e-6);
    // Larger budgets help (weakly).
    let full = designer.recommend(&workload, data * 2);
    assert!(full.combined_cost <= half.combined_cost * 1.05);
}

#[test]
fn scenario3_online_tuning_tracks_drift() {
    let catalog = sdss_catalog(0.01);
    let designer = Designer::new(catalog.clone());
    let mut stream = DriftingStream::sdss_default(catalog, 50, 11);
    let mut session = designer.online_session(ColtConfig {
        epoch_length: 25,
        payback_horizon_epochs: 8.0,
        ..Default::default()
    });
    // Two full cycles through 4 phases.
    session.observe_all(stream.batch(400));
    let reports = session.reports();
    assert!(reports.len() >= 8);
    // The tuner materialized something and raised events.
    assert!(reports.iter().any(|r| !r.events.is_empty()));
    // After warm-up, tuned epochs beat untuned on average.
    let warm = &reports[4..];
    let untuned: f64 = warm.iter().map(|r| r.untuned_cost).sum();
    let tuned: f64 = warm.iter().map(|r| r.tuned_cost).sum();
    assert!(tuned < untuned, "tuned {tuned} vs untuned {untuned}");
}

#[test]
fn whatif_costing_is_consistent_between_direct_and_inum_paths() {
    let catalog = sdss_catalog(0.01);
    let workload = sdss_workload(&catalog, 9, 5);
    let designer = Designer::new(catalog);
    let photo = designer
        .catalog
        .schema
        .table_by_name("photoobj")
        .unwrap()
        .id;
    let design =
        PhysicalDesign::with_indexes([Index::new(photo, vec![0]), Index::new(photo, vec![3, 6])]);
    // INUM excludes nested-loop joins (their inner cost is design
    // dependent), so the fair oracle is the NLJ-free optimizer.
    let no_nlj =
        pgdesign_optimizer::Optimizer::new().with_control(pgdesign_optimizer::JoinControl {
            nestloop: false,
            ..Default::default()
        });
    let inum = pgdesign_inum::Inum::new(&designer.catalog, &no_nlj);
    for (q, _) in workload.iter() {
        let direct = no_nlj.cost(&designer.catalog, &design, q);
        let fast = inum.cost(&design, q);
        assert!(fast >= direct * 0.95, "{fast} vs {direct}");
        assert!(fast <= direct * 1.3, "{fast} vs {direct}");
        // And INUM never undercuts the *full* optimizer either.
        let full = designer.cost(&design, q);
        assert!(fast >= full * 0.95, "{fast} vs full {full}");
    }
}

#[test]
fn designer_components_compose_on_tpch_too() {
    // The portability claim: nothing is SDSS-specific.
    let catalog = pgdesign_catalog::samples::tpch_catalog(0.01);
    let workload = pgdesign_query::generators::tpch_workload(&catalog, 12, 3);
    let designer = Designer::new(catalog);
    let report = designer.recommend(&workload, designer.catalog.data_bytes() / 2);
    assert!(report.combined_cost <= report.base_cost);
    assert!(!report.indexes.indexes.is_empty());
}
