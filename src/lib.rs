//! Umbrella crate for workspace-level integration tests and examples.
//!
//! The real library surface lives in the `pgdesign` facade crate and the
//! per-component crates (`pgdesign-catalog`, `pgdesign-optimizer`, ...).
pub use pgdesign as facade;
