# Developer entry points. `make verify` is the full pre-merge gate; CI
# (.github/workflows/ci.yml) runs the same steps.

CARGO ?= cargo

.PHONY: verify tier1 fmt lint doc bench bench-json

# Everything CI checks, in CI's order.
verify: fmt lint tier1 doc

# The tier-1 gate from ROADMAP.md.
tier1:
	$(CARGO) build --release
	$(CARGO) test -q

fmt:
	$(CARGO) fmt --check

lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

doc:
	$(CARGO) doc --workspace --no-deps

# The E1-E7 experiment benches (report + timing per experiment).
bench:
	$(CARGO) bench -p pgdesign-bench

# E4 perf trajectory: run the matrix-vs-INUM-vs-reoptimization comparison
# and record calls/sec + speedup factors in BENCH_e4.json at the repo root.
# Besides the per-join-count index rows, the `partition` and
# `joint-index+part` rows record partitioned-design costing through the
# partition-aware matrix level (gate: ≥5x vs per-design Inum::cost,
# agreement within 1e-6).
bench-json:
	BENCH_E4_JSON=$(CURDIR)/BENCH_e4.json $(CARGO) bench -p pgdesign-bench --bench e4_inum
