# Developer entry points. `make verify` is the full pre-merge gate; CI
# (.github/workflows/ci.yml) runs the same steps.

CARGO ?= cargo

.PHONY: verify tier1 fmt lint doc bench

# Everything CI checks, in CI's order.
verify: fmt lint tier1 doc

# The tier-1 gate from ROADMAP.md.
tier1:
	$(CARGO) build --release
	$(CARGO) test -q

fmt:
	$(CARGO) fmt --check

lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

doc:
	$(CARGO) doc --workspace --no-deps

# The E1-E7 experiment benches (report + timing per experiment).
bench:
	$(CARGO) bench -p pgdesign-bench
