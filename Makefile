# Developer entry points. `make verify` is the full pre-merge gate; CI
# (.github/workflows/ci.yml) runs the same steps.

CARGO ?= cargo

.PHONY: verify tier1 fmt lint lint-arch doc bench bench-json examples recovery-drill clean-state

# Everything CI checks, in CI's order.
verify: fmt lint lint-arch tier1 doc examples

# The tier-1 gate from ROADMAP.md.
tier1:
	$(CARGO) build --release
	$(CARGO) test -q

fmt:
	$(CARGO) fmt --check

lint:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# The architectural lint pass (crates/analyzer): cost-purity,
# panic-freedom, fp-determinism, unsafe-audit, lock-discipline,
# lock-order, and error-discipline — per-file rules plus interprocedural
# call-chain analysis over every covered source file. Non-zero exit on
# any error-severity violation; waivers need
# `// analyzer:allow(<rule>): <reason>` with a written reason. The
# compiled binary is reused when analyzer sources are unchanged, and
# per-file fact modules are cached under target/analyzer-facts/ — the
# stats line prints timing and cache hit counts.
ANALYZER_BIN := target/release/pgdesign-analyzer
lint-arch:
	@if [ ! -x $(ANALYZER_BIN) ] \
	  || [ -n "$$(find crates/analyzer/src crates/analyzer/Cargo.toml \
	        -newer $(ANALYZER_BIN) -print -quit 2>/dev/null)" ]; then \
	  $(CARGO) build -q --release -p pgdesign-analyzer; \
	else \
	  echo "lint-arch: reusing $(ANALYZER_BIN) (analyzer sources unchanged)"; \
	fi
	./$(ANALYZER_BIN)

doc:
	$(CARGO) doc --workspace --no-deps

# Build and run every example end to end — the public TuningSession /
# Advisor API exercised exactly the way the README shows it.
EXAMPLES := quickstart scenario1_interactive scenario2_offline \
            scenario3_online portability_tpch write_aware
examples:
	$(CARGO) build --release --examples
	@set -e; for ex in $(EXAMPLES); do \
	  echo "== example: $$ex =="; \
	  $(CARGO) run -q --release --example $$ex >/dev/null; \
	done; echo "all examples ran"

# The E1-E7 experiment benches (report + timing per experiment).
bench:
	$(CARGO) bench -p pgdesign-bench

# Perf trajectories, recorded as JSON at the repo root.
#
# E4 (BENCH_e4.json): the matrix-vs-INUM-vs-reoptimization comparison
# (calls/sec + speedup factors). Besides the per-join-count index rows,
# the `partition` and `joint-index+part` rows record partitioned-design
# costing through the partition-aware matrix level (gate: ≥5x vs
# per-design Inum::cost, agreement within 1e-6).
#
# E-build (BENCH_build.json): matrix *construction* — incremental epoch
# update vs fresh per-epoch build on the scenario-3 drift workload
# (gate: ≥5x, agreement ≤1e-12) and serial vs 4-thread cold build
# (gate: ≥2x on a ≥4-core machine; available_parallelism is recorded).
bench-json:
	BENCH_E4_JSON=$(CURDIR)/BENCH_e4.json $(CARGO) bench -p pgdesign-bench --bench e4_inum
	BENCH_BUILD_JSON=$(CURDIR)/BENCH_build.json $(CARGO) bench -p pgdesign-bench --bench e_build

# Crash-recovery drill over the real CLI and a real state directory.
# Leg 1: run the scenario-3 stream with durable state, kill it hard
# (exit 137) mid-epoch, then restart and require a warm matrix — zero
# builds, restored cells reused from the first epoch.
# Leg 2: kill *during a checkpoint* (PGDESIGN_KILL_AT_CHECKPOINT dies
# before the snapshot replace) — recovery must land on the prior
# snapshot with every published edit replayed from the intact log and
# nothing dropped at a torn tail. CI runs this after tier-1.
recovery-drill:
	$(CARGO) build --release
	rm -rf target/recovery-drill
	./target/release/pgdesign online --scale 0.005 --queries 120 --epoch 10 \
	  --state target/recovery-drill --kill-after 33; \
	  status=$$?; [ $$status -eq 137 ] || { echo "expected exit 137, got $$status"; exit 1; }
	./target/release/pgdesign online --scale 0.005 --queries 120 --epoch 10 \
	  --state target/recovery-drill --expect-warm --stats
	rm -rf target/recovery-drill
	PGDESIGN_KILL_AT_CHECKPOINT=2 ./target/release/pgdesign online --scale 0.005 \
	  --queries 120 --epoch 10 --state target/recovery-drill; \
	  status=$$?; [ $$status -eq 137 ] || { echo "expected exit 137, got $$status"; exit 1; }
	./target/release/pgdesign online --scale 0.005 --queries 120 --epoch 10 \
	  --state target/recovery-drill --expect-warm --stats \
	  | tee target/recovery-drill.out
	grep -q '(0 dropped at torn tail)' target/recovery-drill.out \
	  || { echo "checkpoint-kill recovery dropped published edits"; exit 1; }
	rm -rf target/recovery-drill target/recovery-drill.out
	@echo "recovery drill passed (mid-epoch and mid-checkpoint kills)"

# Remove durable session state (snapshot + edit-log directories created
# via --state or TuningSession::open_or_create) and the analyzer's
# per-file fact cache.
clean-state:
	find . -name '*.pgds' -delete -o -name '*.pgdl' -delete
	rm -rf target/recovery-drill target/cli-drill target/analyzer-facts
