//! Weighted workloads and online query streams.

use crate::ast::Query;
use serde::{Deserialize, Serialize};

/// One workload member: a query with a relative weight (frequency).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadEntry {
    /// The query.
    pub query: Query,
    /// Relative weight; the designer minimises Σ weight × cost.
    pub weight: f64,
}

/// A weighted set of queries — the offline tuning input.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The entries in submission order.
    pub entries: Vec<WorkloadEntry>,
}

impl Workload {
    /// Empty workload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from unweighted queries (weight 1 each).
    pub fn from_queries<I: IntoIterator<Item = Query>>(queries: I) -> Self {
        Workload {
            entries: queries
                .into_iter()
                .map(|query| WorkloadEntry { query, weight: 1.0 })
                .collect(),
        }
    }

    /// Append a weighted query.
    pub fn push(&mut self, query: Query, weight: f64) {
        self.entries.push(WorkloadEntry { query, weight });
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of weights.
    pub fn total_weight(&self) -> f64 {
        self.entries.iter().map(|e| e.weight).sum()
    }

    /// Iterate over `(query, weight)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Query, f64)> {
        self.entries.iter().map(|e| (&e.query, e.weight))
    }

    /// The i-th query.
    pub fn query(&self, i: usize) -> &Query {
        &self.entries[i].query
    }
}

impl FromIterator<Query> for Workload {
    fn from_iter<T: IntoIterator<Item = Query>>(iter: T) -> Self {
        Workload::from_queries(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::QueryBuilder;
    use pgdesign_catalog::schema::TableId;

    fn q() -> Query {
        QueryBuilder::new().table(TableId(0)).star().build()
    }

    #[test]
    fn weights_accumulate() {
        let mut w = Workload::new();
        w.push(q(), 2.0);
        w.push(q(), 3.0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.total_weight(), 5.0);
    }

    #[test]
    fn from_queries_defaults_to_unit_weight() {
        let w = Workload::from_queries([q(), q(), q()]);
        assert_eq!(w.total_weight(), 3.0);
        assert!(!w.is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let w: Workload = std::iter::repeat_with(q).take(4).collect();
        assert_eq!(w.len(), 4);
    }
}
