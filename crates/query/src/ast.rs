//! Query AST: conjunctive select-project-join queries.
//!
//! Tables appear as *slots* (instances), so self-joins — common in the
//! SDSS workload via the `neighbors` table — are first-class: two slots may
//! reference the same [`TableId`] while predicates always name a slot.

use pgdesign_catalog::schema::TableId;
use pgdesign_catalog::types::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One table instance in the FROM clause.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryTable {
    /// The underlying catalog table.
    pub table: TableId,
    /// Optional alias (required to disambiguate self-joins).
    pub alias: Option<String>,
}

/// Reference to a column of a specific table slot in the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryColumn {
    /// Index into [`Query::tables`].
    pub slot: u16,
    /// Column ordinal within that table.
    pub column: u16,
}

impl QueryColumn {
    /// Construct from raw parts.
    pub fn new(slot: u16, column: u16) -> Self {
        QueryColumn { slot, column }
    }
}

impl fmt::Display for QueryColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}.c{}", self.slot, self.column)
    }
}

/// Comparison operators for sargable predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<>`
    Ne,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Ne => "<>",
        };
        f.write_str(s)
    }
}

/// The operation of a single-column filter predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PredOp {
    /// `col <op> literal`
    Cmp(CmpOp, Value),
    /// `col BETWEEN lo AND hi`
    Between(Value, Value),
    /// `col IN (v1, ..., vk)`
    InList(Vec<Value>),
    /// `col IS NULL`
    IsNull,
    /// `col IS NOT NULL`
    IsNotNull,
}

impl PredOp {
    /// True for predicates a B-tree range scan can evaluate on a matching
    /// key prefix (everything except `<>` and the null tests).
    pub fn is_sargable(&self) -> bool {
        !matches!(
            self,
            PredOp::Cmp(CmpOp::Ne, _) | PredOp::IsNull | PredOp::IsNotNull
        )
    }

    /// True for equality-style predicates (point or small IN-list), which
    /// can anchor further key columns after them in an index prefix.
    pub fn is_equality(&self) -> bool {
        matches!(self, PredOp::Cmp(CmpOp::Eq, _) | PredOp::InList(_))
    }
}

/// A filter predicate on one column (conjunct of the WHERE clause).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterPredicate {
    /// The restricted column.
    pub col: QueryColumn,
    /// The restriction.
    pub op: PredOp,
}

/// An equi-join predicate between two slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinPredicate {
    /// Left column.
    pub left: QueryColumn,
    /// Right column.
    pub right: QueryColumn,
}

impl JoinPredicate {
    /// The join column on `slot`, if this predicate touches it.
    pub fn column_on(&self, slot: u16) -> Option<u16> {
        if self.left.slot == slot {
            Some(self.left.column)
        } else if self.right.slot == slot {
            Some(self.right.column)
        } else {
            None
        }
    }

    /// The other side of the join relative to `slot`.
    pub fn other_side(&self, slot: u16) -> Option<QueryColumn> {
        if self.left.slot == slot {
            Some(self.right)
        } else if self.right.slot == slot {
            Some(self.left)
        } else {
            None
        }
    }
}

/// Aggregate functions in the SELECT list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregate {
    /// `COUNT(*)`
    CountStar,
    /// `COUNT(col)`
    Count(QueryColumn),
    /// `SUM(col)`
    Sum(QueryColumn),
    /// `AVG(col)`
    Avg(QueryColumn),
    /// `MIN(col)`
    Min(QueryColumn),
    /// `MAX(col)`
    Max(QueryColumn),
}

impl Aggregate {
    /// The aggregated column, if any.
    pub fn column(&self) -> Option<QueryColumn> {
        match self {
            Aggregate::CountStar => None,
            Aggregate::Count(c)
            | Aggregate::Sum(c)
            | Aggregate::Avg(c)
            | Aggregate::Min(c)
            | Aggregate::Max(c) => Some(*c),
        }
    }
}

/// One ORDER BY item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderItem {
    /// Ordered column.
    pub col: QueryColumn,
    /// Descending?
    pub desc: bool,
}

/// A conjunctive select-project-join query.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Query {
    /// Table slots (FROM clause).
    pub tables: Vec<QueryTable>,
    /// Projected plain columns (empty + `select_star` = `SELECT *`).
    pub projection: Vec<QueryColumn>,
    /// Aggregates in the SELECT list.
    pub aggregates: Vec<Aggregate>,
    /// True for `SELECT *`.
    pub select_star: bool,
    /// Conjunctive single-column filters.
    pub filters: Vec<FilterPredicate>,
    /// Equi-join predicates.
    pub joins: Vec<JoinPredicate>,
    /// GROUP BY columns.
    pub group_by: Vec<QueryColumn>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT, if any.
    pub limit: Option<u64>,
}

impl Query {
    /// Number of table slots.
    pub fn slot_count(&self) -> u16 {
        self.tables.len() as u16
    }

    /// Catalog table behind a slot.
    pub fn table_of(&self, slot: u16) -> TableId {
        self.tables[slot as usize].table
    }

    /// Filters restricted to one slot.
    pub fn filters_on(&self, slot: u16) -> impl Iterator<Item = &FilterPredicate> {
        self.filters.iter().filter(move |f| f.col.slot == slot)
    }

    /// Join predicates touching one slot.
    pub fn joins_on(&self, slot: u16) -> impl Iterator<Item = &JoinPredicate> {
        self.joins
            .iter()
            .filter(move |j| j.left.slot == slot || j.right.slot == slot)
    }

    /// All columns of `slot` the query touches anywhere (projection,
    /// filters, joins, grouping, ordering, aggregation). Sorted, distinct.
    /// This is the column set a vertical fragment must supply.
    pub fn columns_used(&self, slot: u16) -> Vec<u16> {
        let mut cols: BTreeSet<u16> = BTreeSet::new();
        if self.select_star {
            // SELECT * touches every column; caller widens via schema.
            // Mark by returning an empty set sentinel is worse — instead
            // the caller must check `select_star` itself; here we gather
            // only the explicitly named columns.
        }
        for c in &self.projection {
            if c.slot == slot {
                cols.insert(c.column);
            }
        }
        for a in &self.aggregates {
            if let Some(c) = a.column() {
                if c.slot == slot {
                    cols.insert(c.column);
                }
            }
        }
        for f in &self.filters {
            if f.col.slot == slot {
                cols.insert(f.col.column);
            }
        }
        for j in &self.joins {
            if let Some(c) = j.column_on(slot) {
                cols.insert(c);
            }
        }
        for g in &self.group_by {
            if g.slot == slot {
                cols.insert(g.column);
            }
        }
        for o in &self.order_by {
            if o.col.slot == slot {
                cols.insert(o.col.column);
            }
        }
        cols.into_iter().collect()
    }

    /// Columns with sargable filters on a slot, equality columns first —
    /// the natural candidate-index column ordering.
    pub fn sargable_columns(&self, slot: u16) -> Vec<u16> {
        let mut eq: Vec<u16> = Vec::new();
        let mut rng: Vec<u16> = Vec::new();
        for f in self.filters_on(slot) {
            if !f.op.is_sargable() {
                continue;
            }
            let bucket = if f.op.is_equality() {
                &mut eq
            } else {
                &mut rng
            };
            if !bucket.contains(&f.col.column) {
                bucket.push(f.col.column);
            }
        }
        for c in rng {
            if !eq.contains(&c) {
                eq.push(c);
            }
        }
        eq
    }

    /// True if the query has no joins.
    pub fn is_single_table(&self) -> bool {
        self.tables.len() == 1
    }

    /// A short structural signature used for caching (INUM keys queries by
    /// template: same tables, joins, filtered columns — literals ignored).
    pub fn template_signature(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for t in &self.tables {
            t.table.0.hash(&mut h);
        }
        for f in &self.filters {
            f.col.hash(&mut h);
            std::mem::discriminant(&f.op).hash(&mut h);
        }
        for j in &self.joins {
            j.left.hash(&mut h);
            j.right.hash(&mut h);
        }
        for g in &self.group_by {
            g.hash(&mut h);
        }
        for o in &self.order_by {
            o.col.hash(&mut h);
            o.desc.hash(&mut h);
        }
        self.select_star.hash(&mut h);
        for p in &self.projection {
            p.hash(&mut h);
        }
        h.finish()
    }
}

/// Fluent builder for [`Query`], used by generators and tests.
#[derive(Debug, Default)]
pub struct QueryBuilder {
    q: Query,
}

impl QueryBuilder {
    /// Start an empty query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a table slot; returns the builder for chaining.
    pub fn table(mut self, table: TableId) -> Self {
        self.q.tables.push(QueryTable { table, alias: None });
        self
    }

    /// Add an aliased table slot.
    pub fn table_as(mut self, table: TableId, alias: &str) -> Self {
        self.q.tables.push(QueryTable {
            table,
            alias: Some(alias.to_string()),
        });
        self
    }

    /// Project a column.
    pub fn project(mut self, slot: u16, column: u16) -> Self {
        self.q.projection.push(QueryColumn::new(slot, column));
        self
    }

    /// SELECT *.
    pub fn star(mut self) -> Self {
        self.q.select_star = true;
        self
    }

    /// Add an aggregate.
    pub fn aggregate(mut self, a: Aggregate) -> Self {
        self.q.aggregates.push(a);
        self
    }

    /// Add a comparison filter.
    pub fn filter(mut self, slot: u16, column: u16, op: CmpOp, v: impl Into<Value>) -> Self {
        self.q.filters.push(FilterPredicate {
            col: QueryColumn::new(slot, column),
            op: PredOp::Cmp(op, v.into()),
        });
        self
    }

    /// Add a BETWEEN filter.
    pub fn between(
        mut self,
        slot: u16,
        column: u16,
        lo: impl Into<Value>,
        hi: impl Into<Value>,
    ) -> Self {
        self.q.filters.push(FilterPredicate {
            col: QueryColumn::new(slot, column),
            op: PredOp::Between(lo.into(), hi.into()),
        });
        self
    }

    /// Add an equi-join between two slots.
    pub fn join(mut self, ls: u16, lc: u16, rs: u16, rc: u16) -> Self {
        self.q.joins.push(JoinPredicate {
            left: QueryColumn::new(ls, lc),
            right: QueryColumn::new(rs, rc),
        });
        self
    }

    /// Add a GROUP BY column.
    pub fn group_by(mut self, slot: u16, column: u16) -> Self {
        self.q.group_by.push(QueryColumn::new(slot, column));
        self
    }

    /// Add an ORDER BY column.
    pub fn order_by(mut self, slot: u16, column: u16, desc: bool) -> Self {
        self.q.order_by.push(OrderItem {
            col: QueryColumn::new(slot, column),
            desc,
        });
        self
    }

    /// Set LIMIT.
    pub fn limit(mut self, n: u64) -> Self {
        self.q.limit = Some(n);
        self
    }

    /// Finish.
    pub fn build(self) -> Query {
        self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Query {
        QueryBuilder::new()
            .table(TableId(0))
            .table(TableId(1))
            .project(0, 2)
            .filter(0, 1, CmpOp::Eq, 5i64)
            .between(0, 3, 1i64, 9i64)
            .join(0, 0, 1, 1)
            .group_by(1, 2)
            .order_by(0, 2, false)
            .build()
    }

    #[test]
    fn columns_used_gathers_all_clauses() {
        let q = sample();
        assert_eq!(q.columns_used(0), vec![0, 1, 2, 3]);
        assert_eq!(q.columns_used(1), vec![1, 2]);
    }

    #[test]
    fn sargable_columns_put_equality_first() {
        let q = QueryBuilder::new()
            .table(TableId(0))
            .between(0, 5, 1i64, 2i64)
            .filter(0, 3, CmpOp::Eq, 7i64)
            .build();
        assert_eq!(q.sargable_columns(0), vec![3, 5]);
    }

    #[test]
    fn ne_and_null_tests_are_not_sargable() {
        assert!(!PredOp::Cmp(CmpOp::Ne, Value::Int(1)).is_sargable());
        assert!(!PredOp::IsNull.is_sargable());
        assert!(PredOp::Between(Value::Int(0), Value::Int(1)).is_sargable());
        assert!(PredOp::InList(vec![Value::Int(1)]).is_equality());
    }

    #[test]
    fn join_predicate_sides() {
        let j = JoinPredicate {
            left: QueryColumn::new(0, 4),
            right: QueryColumn::new(1, 7),
        };
        assert_eq!(j.column_on(0), Some(4));
        assert_eq!(j.column_on(1), Some(7));
        assert_eq!(j.column_on(2), None);
        assert_eq!(j.other_side(0), Some(QueryColumn::new(1, 7)));
    }

    #[test]
    fn template_signature_ignores_literals() {
        let a = QueryBuilder::new()
            .table(TableId(0))
            .filter(0, 1, CmpOp::Eq, 5i64)
            .build();
        let b = QueryBuilder::new()
            .table(TableId(0))
            .filter(0, 1, CmpOp::Eq, 99i64)
            .build();
        let c = QueryBuilder::new()
            .table(TableId(0))
            .filter(0, 2, CmpOp::Eq, 5i64)
            .build();
        assert_eq!(a.template_signature(), b.template_signature());
        assert_ne!(a.template_signature(), c.template_signature());
    }

    #[test]
    fn self_join_slots_are_distinct() {
        let q = QueryBuilder::new()
            .table_as(TableId(2), "n1")
            .table_as(TableId(2), "n2")
            .join(0, 1, 1, 0)
            .build();
        assert_eq!(q.slot_count(), 2);
        assert_eq!(q.table_of(0), q.table_of(1));
        assert_eq!(q.columns_used(0), vec![1]);
        assert_eq!(q.columns_used(1), vec![0]);
    }

    #[test]
    fn aggregate_columns() {
        assert_eq!(Aggregate::CountStar.column(), None);
        assert_eq!(
            Aggregate::Sum(QueryColumn::new(0, 3)).column(),
            Some(QueryColumn::new(0, 3))
        );
    }
}
