//! Workload generators.
//!
//! The demo uses "a real-world SDSS dataset and query workload". The
//! generators here produce the synthetic equivalent: parameterised query
//! templates modelled on the public SkyServer sample queries (cone/box
//! searches, magnitude cuts, photo–spec joins, neighbour self-joins), with
//! literals drawn from the column domains so selectivities vary per
//! instance. Templates are written in SQL and parsed, which exercises the
//! same path a DBA's workload file would take.

use crate::ast::Query;
use crate::parser::parse_query;
use crate::workload::Workload;
use pgdesign_catalog::Catalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate an SDSS-style offline workload of `n` queries.
pub fn sdss_workload(catalog: &Catalog, n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = Workload::new();
    for i in 0..n {
        let template = i % SDSS_TEMPLATE_COUNT;
        let q = sdss_template(catalog, template, &mut rng);
        w.push(q, 1.0);
    }
    w
}

/// Number of distinct SDSS templates.
pub const SDSS_TEMPLATE_COUNT: usize = 9;

/// Instantiate SDSS template `k` with random literals.
pub fn sdss_template(catalog: &Catalog, k: usize, rng: &mut StdRng) -> Query {
    let ra = rng.random_range(0.0..350.0);
    let dec = rng.random_range(-20.0..60.0);
    let ra_w = rng.random_range(0.5..8.0);
    let dec_w = rng.random_range(0.5..5.0);
    let rmag = rng.random_range(17.0..22.0);
    let ty = rng.random_range(0..6);
    let run = rng.random_range(94..8000);
    let zlo = rng.random_range(0.0..0.3);
    let zw = rng.random_range(0.02..0.2);
    let dist = rng.random_range(0.01..0.2);
    let sql = match k % SDSS_TEMPLATE_COUNT {
        // Box search: positional range + magnitude cut.
        0 => format!(
            "SELECT objid, ra, dec, r FROM photoobj \
             WHERE ra BETWEEN {ra:.3} AND {:.3} AND dec BETWEEN {dec:.3} AND {:.3} AND r < {rmag:.2}",
            ra + ra_w,
            dec + dec_w
        ),
        // Type census in a stripe, grouped.
        1 => format!(
            "SELECT type, count(*) FROM photoobj \
             WHERE ra BETWEEN {ra:.3} AND {:.3} GROUP BY type",
            ra + ra_w
        ),
        // Colour selection on magnitudes.
        2 => format!(
            "SELECT objid, u, g, r FROM photoobj \
             WHERE g BETWEEN {:.2} AND {:.2} AND r < {rmag:.2} AND type = {ty} ORDER BY r",
            rmag - 2.0,
            rmag
        ),
        // Photo–spec join with redshift window.
        3 => format!(
            "SELECT p.objid, p.ra, p.dec, s.zredshift FROM photoobj p, specobj s \
             WHERE p.objid = s.bestobjid AND s.zredshift BETWEEN {zlo:.3} AND {:.3} AND p.r < {rmag:.2}",
            zlo + zw
        ),
        // Spectro census by class.
        4 => format!(
            "SELECT class, count(*), avg(zredshift) FROM specobj \
             WHERE zredshift BETWEEN {zlo:.3} AND {:.3} GROUP BY class",
            zlo + zw
        ),
        // Neighbour self-join through photoobj.
        5 => format!(
            "SELECT n.objid, n.neighborobjid, n.distance FROM neighbors n, photoobj p \
             WHERE n.objid = p.objid AND n.distance < {dist:.3} AND p.type = {ty}",
        ),
        // Observation-run drill-down joining field metadata.
        6 => format!(
            "SELECT p.objid, f.quality FROM photoobj p, field f \
             WHERE p.run = f.run AND p.camcol = f.camcol AND p.run = {run} AND f.quality = 1",
        ),
        // Flag scan: narrow status filter, wide projection.
        7 => format!(
            "SELECT * FROM photoobj WHERE status = {} AND r < {rmag:.2} LIMIT 1000",
            rng.random_range(0..8)
        ),
        // Bright-object ordering within a camcol.
        _ => format!(
            "SELECT objid, ra, dec FROM photoobj \
             WHERE camcol = {} AND r < {rmag:.2} ORDER BY r LIMIT 500",
            rng.random_range(1..7)
        ),
    };
    parse_query(&catalog.schema, &sql).expect("template SQL must parse")
}

/// Number of distinct TPC-H-style templates.
pub const TPCH_TEMPLATE_COUNT: usize = 6;

/// Generate a TPC-H-style workload of `n` queries.
pub fn tpch_workload(catalog: &Catalog, n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = Workload::new();
    for i in 0..n {
        let q = tpch_template(catalog, i % TPCH_TEMPLATE_COUNT, &mut rng);
        w.push(q, 1.0);
    }
    w
}

/// Instantiate TPC-H-style template `k` with random literals.
pub fn tpch_template(catalog: &Catalog, k: usize, rng: &mut StdRng) -> Query {
    let day0 = 8766;
    let d = rng.random_range(day0..day0 + 2300);
    let dw = rng.random_range(30..200);
    let qty = rng.random_range(10..45);
    let seg = rng.random_range(0..5);
    let brand = rng.random_range(0..25);
    let sql = match k % TPCH_TEMPLATE_COUNT {
        // Q6-style revenue scan.
        0 => format!(
            "SELECT sum(l_extendedprice) FROM lineitem \
             WHERE l_shipdate BETWEEN {d} AND {} AND l_quantity < {qty} AND l_discount BETWEEN 0.02 AND 0.05",
            d + dw
        ),
        // Q1-style pricing summary.
        1 => format!(
            "SELECT l_returnflag, l_linestatus, count(*), sum(l_quantity) FROM lineitem \
             WHERE l_shipdate <= {d} GROUP BY l_returnflag, l_linestatus",
        ),
        // Q3-style shipping priority join.
        2 => format!(
            "SELECT o.o_orderkey, o.o_orderdate FROM customer c, orders o, lineitem l \
             WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
             AND c.c_mktsegment = {seg} AND o.o_orderdate < {d} ORDER BY o_orderdate LIMIT 10",
        ),
        // Part availability probe.
        3 => format!(
            "SELECT p_partkey, p_retailprice FROM part \
             WHERE p_brand = {brand} AND p_size BETWEEN {} AND {}",
            qty / 5,
            qty / 5 + 8
        ),
        // Order status lookup.
        4 => format!(
            "SELECT o_orderkey, o_totalprice FROM orders \
             WHERE o_custkey = {} AND o_orderstatus = 1",
            rng.random_range(0..100_000)
        ),
        // Supplier-lineitem join.
        _ => format!(
            "SELECT s.s_suppkey, count(*) FROM supplier s, lineitem l \
             WHERE s.s_suppkey = l.l_suppkey AND l.l_shipdate > {d} GROUP BY s_suppkey",
        ),
    };
    parse_query(&catalog.schema, &sql).expect("template SQL must parse")
}

/// A phased online stream for the continuous-tuning scenario: the template
/// mix shifts every `phase_len` queries, so the best index set changes over
/// time — the situation COLT exists for.
#[derive(Debug)]
pub struct DriftingStream {
    catalog: Catalog,
    rng: StdRng,
    /// Queries emitted so far.
    emitted: usize,
    /// Queries per phase.
    pub phase_len: usize,
    /// Template subsets per phase (cycled).
    pub phases: Vec<Vec<usize>>,
}

impl DriftingStream {
    /// A default 4-phase SDSS drift: positional → photometric →
    /// spectro-join → operational templates.
    pub fn sdss_default(catalog: Catalog, phase_len: usize, seed: u64) -> Self {
        DriftingStream {
            catalog,
            rng: StdRng::seed_from_u64(seed),
            emitted: 0,
            phase_len: phase_len.max(1),
            phases: vec![vec![0, 1], vec![2, 7], vec![3, 4, 5], vec![6, 8]],
        }
    }

    /// Index of the phase the next query belongs to.
    pub fn current_phase(&self) -> usize {
        (self.emitted / self.phase_len) % self.phases.len()
    }

    /// Emit the next query.
    pub fn next_query(&mut self) -> Query {
        let phase = &self.phases[self.current_phase()];
        let template = phase[self.rng.random_range(0..phase.len())];
        self.emitted += 1;
        sdss_template(&self.catalog, template, &mut self.rng)
    }

    /// Emit a batch of `n` queries.
    pub fn batch(&mut self, n: usize) -> Vec<Query> {
        (0..n).map(|_| self.next_query()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::{sdss_catalog, tpch_catalog};

    #[test]
    fn sdss_workload_parses_all_templates() {
        let c = sdss_catalog(0.01);
        let w = sdss_workload(&c, 2 * SDSS_TEMPLATE_COUNT, 42);
        assert_eq!(w.len(), 2 * SDSS_TEMPLATE_COUNT);
        // Every template occurs; joins appear in some queries.
        assert!(w.iter().any(|(q, _)| !q.joins.is_empty()));
        assert!(w.iter().any(|(q, _)| !q.group_by.is_empty()));
        assert!(w.iter().any(|(q, _)| !q.order_by.is_empty()));
    }

    #[test]
    fn tpch_workload_parses_all_templates() {
        let c = tpch_catalog(0.01);
        let w = tpch_workload(&c, TPCH_TEMPLATE_COUNT, 1);
        assert_eq!(w.len(), TPCH_TEMPLATE_COUNT);
        assert!(w.iter().any(|(q, _)| q.tables.len() == 3));
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let c = sdss_catalog(0.01);
        let a = sdss_workload(&c, 10, 7);
        let b = sdss_workload(&c, 10, 7);
        assert_eq!(a, b);
        let c2 = sdss_workload(&c, 10, 8);
        assert_ne!(a, c2);
    }

    #[test]
    fn drifting_stream_changes_phase() {
        let c = sdss_catalog(0.01);
        let mut s = DriftingStream::sdss_default(c, 5, 3);
        assert_eq!(s.current_phase(), 0);
        s.batch(5);
        assert_eq!(s.current_phase(), 1);
        s.batch(15);
        assert_eq!(s.current_phase(), 0); // wrapped around 4 phases
    }

    #[test]
    fn drifting_stream_emits_phase_templates() {
        let c = sdss_catalog(0.01);
        let mut s = DriftingStream::sdss_default(c, 100, 3);
        // Phase 0 uses templates {0,1}: single-table photoobj queries.
        for q in s.batch(20) {
            assert_eq!(q.tables.len(), 1);
        }
    }
}
