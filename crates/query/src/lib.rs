//! # pgdesign-query
//!
//! Query representation and workload tooling for the pgdesign toolkit.
//!
//! The paper's designer consumes "a database, a set of queries and resource
//! constraints". This crate supplies the middle piece:
//!
//! * [`ast`] — a structured representation of conjunctive select-project-
//!   join queries with grouping, ordering and aggregation: precisely the
//!   query class the underlying advisors (CoPhy, AutoPart, COLT) reason
//!   about;
//! * [`parser`] — a small SQL parser so workloads can be written as text,
//!   which is how a DBA would feed the demo tool;
//! * [`workload`] — weighted workloads and online query streams;
//! * [`compress`] — workload compression: collapse literal-only variants
//!   of a template into weighted representatives;
//! * [`generators`] — SDSS-style and TPC-H-style workload generators plus
//!   the drifting stream used by the continuous-tuning scenario.

#![forbid(unsafe_code)]

pub mod ast;
pub mod compress;
pub mod generators;
pub mod parser;
pub mod workload;

pub use ast::{
    Aggregate, CmpOp, FilterPredicate, JoinPredicate, OrderItem, PredOp, Query, QueryColumn,
    QueryTable,
};
pub use parser::{parse_query, ParseError};
pub use workload::{Workload, WorkloadEntry};
