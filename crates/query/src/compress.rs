//! Workload compression.
//!
//! Real traces repeat the same query template with different literals. The
//! designer's cost is driven by the number of *distinct* optimization
//! problems, so collapsing a trace into weighted template representatives
//! keeps advisor runtime proportional to template diversity rather than
//! trace length — the standard workload-compression step of production
//! tuning advisors, and the reason the demo can ingest "large query
//! workloads".

use crate::workload::Workload;
use std::collections::HashMap;

/// How literals of merged queries are represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Representative {
    /// Keep the first instance seen (cheap, biased toward early literals).
    First,
    /// Keep the instance with the median estimated restrictiveness, using
    /// the count of filter predicates as a proxy ordering. Deterministic
    /// and robust to outlier literals.
    Median,
}

/// Result of compressing a workload.
#[derive(Debug, Clone)]
pub struct CompressedWorkload {
    /// One weighted representative per template.
    pub workload: Workload,
    /// For each compressed entry, how many original queries it stands for.
    pub multiplicity: Vec<usize>,
    /// Original workload size.
    pub original_len: usize,
}

impl CompressedWorkload {
    /// Compression ratio (original / compressed), ≥ 1.
    pub fn ratio(&self) -> f64 {
        if self.workload.is_empty() {
            return 1.0;
        }
        self.original_len as f64 / self.workload.len() as f64
    }
}

/// Compress a workload by template signature, summing weights.
pub fn compress(workload: &Workload, representative: Representative) -> CompressedWorkload {
    let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    for (i, (q, _)) in workload.iter().enumerate() {
        let sig = q.template_signature();
        let entry = groups.entry(sig).or_default();
        if entry.is_empty() {
            order.push(sig);
        }
        entry.push(i);
    }

    let mut out = Workload::new();
    let mut multiplicity = Vec::with_capacity(order.len());
    for sig in order {
        let members = &groups[&sig];
        let weight: f64 = members.iter().map(|&i| workload.entries[i].weight).sum();
        let pick = match representative {
            Representative::First => members[0],
            Representative::Median => {
                let mut sorted: Vec<usize> = members.clone();
                sorted.sort_by_key(|&i| workload.query(i).filters.len());
                sorted[sorted.len() / 2]
            }
        };
        out.push(workload.query(pick).clone(), weight);
        multiplicity.push(members.len());
    }
    CompressedWorkload {
        workload: out,
        multiplicity,
        original_len: workload.len(),
    }
}

/// Convenience: compress only when the trace exceeds `threshold` queries.
pub fn maybe_compress(workload: &Workload, threshold: usize) -> Workload {
    if workload.len() <= threshold {
        workload.clone()
    } else {
        compress(workload, Representative::Median).workload
    }
}

/// Distinct template count of a workload.
pub fn template_count(workload: &Workload) -> usize {
    let mut sigs: Vec<u64> = workload
        .iter()
        .map(|(q, _)| q.template_signature())
        .collect();
    sigs.sort_unstable();
    sigs.dedup();
    sigs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, Query, QueryBuilder};
    use pgdesign_catalog::schema::TableId;

    fn q(col: u16, v: i64) -> Query {
        QueryBuilder::new()
            .table(TableId(0))
            .filter(0, col, CmpOp::Eq, v)
            .build()
    }

    #[test]
    fn identical_templates_merge_with_summed_weights() {
        let mut w = Workload::new();
        w.push(q(1, 5), 1.0);
        w.push(q(1, 9), 2.0);
        w.push(q(2, 5), 1.0);
        let c = compress(&w, Representative::First);
        assert_eq!(c.workload.len(), 2);
        assert_eq!(c.workload.entries[0].weight, 3.0);
        assert_eq!(c.workload.entries[1].weight, 1.0);
        assert_eq!(c.multiplicity, vec![2, 1]);
        assert!((c.ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn total_weight_is_preserved() {
        let mut w = Workload::new();
        for i in 0..10 {
            w.push(q((i % 3) as u16, i), 1.5);
        }
        let c = compress(&w, Representative::Median);
        assert!((c.workload.total_weight() - w.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn representative_modes_pick_group_members() {
        let mut w = Workload::new();
        w.push(q(1, 5), 1.0);
        w.push(q(1, 7), 1.0);
        for mode in [Representative::First, Representative::Median] {
            let c = compress(&w, mode);
            assert_eq!(c.workload.len(), 1);
            let rep = c.workload.query(0);
            assert!(rep == w.query(0) || rep == w.query(1));
        }
    }

    #[test]
    fn maybe_compress_respects_threshold() {
        let mut w = Workload::new();
        w.push(q(1, 5), 1.0);
        w.push(q(1, 9), 1.0);
        assert_eq!(maybe_compress(&w, 10).len(), 2);
        assert_eq!(maybe_compress(&w, 1).len(), 1);
    }

    #[test]
    fn template_count_matches_compression() {
        let mut w = Workload::new();
        for i in 0..20 {
            w.push(q((i % 4) as u16, i), 1.0);
        }
        assert_eq!(template_count(&w), 4);
        assert_eq!(compress(&w, Representative::First).workload.len(), 4);
    }

    #[test]
    fn empty_workload() {
        let c = compress(&Workload::new(), Representative::First);
        assert!(c.workload.is_empty());
        assert_eq!(c.ratio(), 1.0);
    }
}
