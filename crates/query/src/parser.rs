//! A recursive-descent parser for the SQL subset the designer tunes.
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! SELECT { * | item [, item]* }
//! FROM   table [alias] [, table [alias]]* | ... JOIN table [alias] ON col = col ...
//! [WHERE  pred [AND pred]*]
//! [GROUP BY col [, col]*]
//! [ORDER BY col [ASC|DESC] [, ...]*]
//! [LIMIT n]
//!
//! item ::= col | COUNT(*) | COUNT(col) | SUM(col) | AVG(col) | MIN(col) | MAX(col)
//! pred ::= col op literal | literal op col | col BETWEEN lit AND lit
//!        | col IN (lit [, lit]*) | col IS [NOT] NULL | col = col   -- equi-join
//! op   ::= = | < | <= | > | >= | <>
//! ```
//!
//! WHERE is conjunctive only — the same restriction every cited advisor
//! (CoPhy, AutoPart, COLT) places on the predicates it models.

use crate::ast::{
    Aggregate, CmpOp, FilterPredicate, JoinPredicate, OrderItem, PredOp, Query, QueryColumn,
    QueryTable,
};
use pgdesign_catalog::schema::Schema;
use pgdesign_catalog::types::Value;
use std::fmt;

/// Parse failure with a human-oriented message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input near the failure.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Str(String),
    Symbol(&'static str),
    Eof,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn tokens(mut self) -> Result<Vec<(Tok, usize)>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            let start = self.pos;
            let bytes = self.src.as_bytes();
            let Some(&byte) = bytes.get(self.pos) else {
                out.push((Tok::Eof, start));
                return Ok(out);
            };
            let c = byte as char;
            let tok = if c.is_ascii_alphabetic() || c == '_' {
                let s = self.take_while(|c| c.is_ascii_alphanumeric() || c == '_');
                Tok::Ident(s)
            } else if c.is_ascii_digit()
                || (c == '-' && self.peek_next().is_some_and(|n| n.is_ascii_digit()))
            {
                let neg = c == '-';
                if neg {
                    self.pos += 1;
                }
                let s = self.take_while(|c| c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E');
                let v: f64 = s.parse().map_err(|_| ParseError {
                    message: format!("bad number {s:?}"),
                    offset: start,
                })?;
                Tok::Number(if neg { -v } else { v })
            } else if c == '\'' {
                self.pos += 1;
                let s = self.take_while(|c| c != '\'');
                if self.pos >= bytes.len() {
                    return Err(ParseError {
                        message: "unterminated string literal".into(),
                        offset: start,
                    });
                }
                self.pos += 1; // closing quote
                Tok::Str(s)
            } else {
                let sym: &'static str = match c {
                    ',' => ",",
                    '.' => ".",
                    '(' => "(",
                    ')' => ")",
                    '*' => "*",
                    '=' => "=",
                    '<' => {
                        if self.peek_next() == Some('=') {
                            self.pos += 1;
                            "<="
                        } else if self.peek_next() == Some('>') {
                            self.pos += 1;
                            "<>"
                        } else {
                            "<"
                        }
                    }
                    '>' => {
                        if self.peek_next() == Some('=') {
                            self.pos += 1;
                            ">="
                        } else {
                            ">"
                        }
                    }
                    ';' => ";",
                    other => {
                        return Err(ParseError {
                            message: format!("unexpected character {other:?}"),
                            offset: start,
                        })
                    }
                };
                self.pos += 1;
                Tok::Symbol(sym)
            };
            out.push((tok, start));
        }
    }

    fn peek_next(&self) -> Option<char> {
        self.src
            .get(self.pos..)
            .and_then(|rest| rest.chars().nth(1))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.src.as_bytes().get(self.pos) {
            if !(b as char).is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
    }

    fn take_while(&mut self, f: impl Fn(char) -> bool) -> String {
        let start = self.pos;
        while let Some(&b) = self.src.as_bytes().get(self.pos) {
            if !f(b as char) {
                break;
            }
            self.pos += 1;
        }
        self.src
            .get(start..self.pos)
            .unwrap_or_default()
            .to_string()
    }
}

struct Parser<'a> {
    toks: Vec<(Tok, usize)>,
    i: usize,
    schema: &'a Schema,
    query: Query,
    /// Pending SELECT items by name, resolved after FROM is parsed.
    pending_select: Vec<SelectItem>,
}

#[derive(Debug)]
enum SelectItem {
    Star,
    Col(Option<String>, String),
    Agg(String, Option<(Option<String>, String)>),
}

/// Parse one SQL statement against a schema.
pub fn parse_query(schema: &Schema, sql: &str) -> Result<Query, ParseError> {
    let toks = Lexer::new(sql).tokens()?;
    let mut p = Parser {
        toks,
        i: 0,
        schema,
        query: Query::default(),
        pending_select: Vec::new(),
    };
    p.parse()?;
    Ok(p.query)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        // The token stream always ends with `Tok::Eof` and `bump` never
        // advances past it, but hold this to checked access anyway: a
        // hostile query must never be able to panic the daemon.
        static EOF: Tok = Tok::Eof;
        self.toks.get(self.i).map_or(&EOF, |t| &t.0)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.i).map_or(0, |t| t.1)
    }

    fn bump(&mut self) -> Tok {
        let t = self.peek().clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            offset: self.offset(),
        })
    }

    fn kw(&mut self, word: &str) -> bool {
        if let Tok::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(word) {
                self.bump();
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, word: &str) -> Result<(), ParseError> {
        if self.kw(word) {
            Ok(())
        } else {
            self.err(format!("expected keyword {word}"))
        }
    }

    fn sym(&mut self, s: &str) -> bool {
        if let Tok::Symbol(t) = self.peek() {
            if *t == s {
                self.bump();
                return true;
            }
        }
        false
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), ParseError> {
        if self.sym(s) {
            Ok(())
        } else {
            self.err(format!("expected {s:?}"))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn parse(&mut self) -> Result<(), ParseError> {
        self.expect_kw("select")?;
        self.parse_select_list()?;
        self.expect_kw("from")?;
        self.parse_from()?;
        if self.kw("where") {
            self.parse_where()?;
        }
        if self.kw("group") {
            self.expect_kw("by")?;
            loop {
                let c = self.parse_colref()?;
                self.query.group_by.push(c);
                if !self.sym(",") {
                    break;
                }
            }
        }
        if self.kw("order") {
            self.expect_kw("by")?;
            loop {
                let c = self.parse_colref()?;
                let desc = if self.kw("desc") {
                    true
                } else {
                    self.kw("asc");
                    false
                };
                self.query.order_by.push(OrderItem { col: c, desc });
                if !self.sym(",") {
                    break;
                }
            }
        }
        if self.kw("limit") {
            match self.bump() {
                Tok::Number(n) if n >= 0.0 => self.query.limit = Some(n as u64),
                _ => return self.err("expected LIMIT count"),
            }
        }
        self.sym(";");
        if *self.peek() != Tok::Eof {
            return self.err("trailing tokens after statement");
        }
        // Resolve deferred SELECT items now that slots exist.
        let pending = std::mem::take(&mut self.pending_select);
        for item in pending {
            match item {
                SelectItem::Star => self.query.select_star = true,
                SelectItem::Col(q, n) => {
                    let c = self.resolve_named(q.as_deref(), &n)?;
                    self.query.projection.push(c);
                }
                SelectItem::Agg(f, arg) => {
                    let agg = match (f.as_str(), arg) {
                        ("count", None) => Aggregate::CountStar,
                        ("count", Some((q, n))) => {
                            Aggregate::Count(self.resolve_named(q.as_deref(), &n)?)
                        }
                        ("sum", Some((q, n))) => {
                            Aggregate::Sum(self.resolve_named(q.as_deref(), &n)?)
                        }
                        ("avg", Some((q, n))) => {
                            Aggregate::Avg(self.resolve_named(q.as_deref(), &n)?)
                        }
                        ("min", Some((q, n))) => {
                            Aggregate::Min(self.resolve_named(q.as_deref(), &n)?)
                        }
                        ("max", Some((q, n))) => {
                            Aggregate::Max(self.resolve_named(q.as_deref(), &n)?)
                        }
                        (f, _) => return self.err(format!("unsupported aggregate {f}")),
                    };
                    self.query.aggregates.push(agg);
                }
            }
        }
        Ok(())
    }

    fn parse_select_list(&mut self) -> Result<(), ParseError> {
        loop {
            if self.sym("*") {
                self.pending_select.push(SelectItem::Star);
            } else {
                let first = self.ident()?;
                let lower = first.to_ascii_lowercase();
                if matches!(lower.as_str(), "count" | "sum" | "avg" | "min" | "max")
                    && self.sym("(")
                {
                    if self.sym("*") {
                        self.expect_sym(")")?;
                        self.pending_select.push(SelectItem::Agg(lower, None));
                    } else {
                        let a = self.ident()?;
                        let (q, n) = if self.sym(".") {
                            (Some(a), self.ident()?)
                        } else {
                            (None, a)
                        };
                        self.expect_sym(")")?;
                        self.pending_select
                            .push(SelectItem::Agg(lower, Some((q, n))));
                    }
                } else if self.sym(".") {
                    let n = self.ident()?;
                    self.pending_select.push(SelectItem::Col(Some(first), n));
                } else {
                    self.pending_select.push(SelectItem::Col(None, first));
                }
            }
            if !self.sym(",") {
                return Ok(());
            }
        }
    }

    fn parse_from(&mut self) -> Result<(), ParseError> {
        self.parse_table_ref()?;
        loop {
            if self.sym(",") {
                self.parse_table_ref()?;
            } else if self.kw("join") || (self.kw("inner") && self.kw("join")) {
                self.parse_table_ref()?;
                self.expect_kw("on")?;
                let l = self.parse_colref()?;
                self.expect_sym("=")?;
                let r = self.parse_colref()?;
                self.query.joins.push(JoinPredicate { left: l, right: r });
            } else {
                return Ok(());
            }
        }
    }

    fn parse_table_ref(&mut self) -> Result<(), ParseError> {
        let name = self.ident()?;
        let table = match self.schema.table_by_name(&name) {
            Some(t) => t.id,
            None => return self.err(format!("unknown table {name:?}")),
        };
        // Optional [AS] alias — but do not swallow clause keywords.
        let mut alias = None;
        if self.kw("as") {
            alias = Some(self.ident()?);
        } else if let Tok::Ident(s) = self.peek().clone() {
            let lower = s.to_ascii_lowercase();
            if !matches!(
                lower.as_str(),
                "where" | "group" | "order" | "limit" | "join" | "inner" | "on"
            ) {
                self.bump();
                alias = Some(s);
            }
        }
        self.query.tables.push(QueryTable { table, alias });
        Ok(())
    }

    fn parse_where(&mut self) -> Result<(), ParseError> {
        loop {
            self.parse_predicate()?;
            if !self.kw("and") {
                return Ok(());
            }
        }
    }

    fn parse_predicate(&mut self) -> Result<(), ParseError> {
        let col = self.parse_colref()?;
        if self.kw("between") {
            let lo = self.parse_literal()?;
            self.expect_kw("and")?;
            let hi = self.parse_literal()?;
            self.query.filters.push(FilterPredicate {
                col,
                op: PredOp::Between(lo, hi),
            });
            return Ok(());
        }
        if self.kw("in") {
            self.expect_sym("(")?;
            let mut vals = Vec::new();
            loop {
                vals.push(self.parse_literal()?);
                if !self.sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            self.query.filters.push(FilterPredicate {
                col,
                op: PredOp::InList(vals),
            });
            return Ok(());
        }
        if self.kw("is") {
            let not = self.kw("not");
            self.expect_kw("null")?;
            self.query.filters.push(FilterPredicate {
                col,
                op: if not {
                    PredOp::IsNotNull
                } else {
                    PredOp::IsNull
                },
            });
            return Ok(());
        }
        let op = match self.peek().clone() {
            Tok::Symbol(s @ ("=" | "<" | "<=" | ">" | ">=" | "<>")) => {
                self.bump();
                match s {
                    "=" => CmpOp::Eq,
                    "<" => CmpOp::Lt,
                    "<=" => CmpOp::Le,
                    ">" => CmpOp::Gt,
                    ">=" => CmpOp::Ge,
                    _ => CmpOp::Ne,
                }
            }
            other => return self.err(format!("expected comparison operator, found {other:?}")),
        };
        // Right side: literal → filter; column → equi-join (only for `=`).
        if self.peek_is_colref() {
            let right = self.parse_colref()?;
            if op != CmpOp::Eq {
                return self.err("only equality joins are supported");
            }
            self.query.joins.push(JoinPredicate { left: col, right });
        } else {
            let lit = self.parse_literal()?;
            self.query.filters.push(FilterPredicate {
                col,
                op: PredOp::Cmp(op, lit),
            });
        }
        Ok(())
    }

    fn peek_is_colref(&self) -> bool {
        if let Tok::Ident(s) = self.peek() {
            // NULL / TRUE / FALSE are literals, not columns.
            !matches!(s.to_ascii_lowercase().as_str(), "null" | "true" | "false")
        } else {
            false
        }
    }

    fn parse_literal(&mut self) -> Result<Value, ParseError> {
        match self.peek().clone() {
            Tok::Number(n) => {
                self.bump();
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    Ok(Value::Int(n as i64))
                } else {
                    Ok(Value::Float(n))
                }
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Value::Str(s))
            }
            Tok::Ident(s) => {
                let lower = s.to_ascii_lowercase();
                match lower.as_str() {
                    "null" => {
                        self.bump();
                        Ok(Value::Null)
                    }
                    "true" => {
                        self.bump();
                        Ok(Value::Bool(true))
                    }
                    "false" => {
                        self.bump();
                        Ok(Value::Bool(false))
                    }
                    _ => self.err(format!("expected literal, found identifier {s:?}")),
                }
            }
            other => self.err(format!("expected literal, found {other:?}")),
        }
    }

    fn parse_colref(&mut self) -> Result<QueryColumn, ParseError> {
        let first = self.ident()?;
        if self.sym(".") {
            let col = self.ident()?;
            self.resolve_named(Some(&first), &col)
        } else {
            self.resolve_named(None, &first)
        }
    }

    /// Resolve `qualifier.name` against the FROM slots: the qualifier is an
    /// alias if one was declared, else a table name; bare names search all
    /// slots and must be unambiguous.
    fn resolve_named(
        &self,
        qualifier: Option<&str>,
        name: &str,
    ) -> Result<QueryColumn, ParseError> {
        let mut matches = Vec::new();
        for (slot, qt) in self.query.tables.iter().enumerate() {
            let t = self.schema.table(qt.table);
            let qualifier_ok = match qualifier {
                None => true,
                Some(q) => {
                    qt.alias
                        .as_deref()
                        .is_some_and(|a| a.eq_ignore_ascii_case(q))
                        || (qt.alias.is_none() && t.name.eq_ignore_ascii_case(q))
                }
            };
            if !qualifier_ok {
                continue;
            }
            if let Some(c) = t.column_by_name(name) {
                matches.push(QueryColumn::new(slot as u16, c));
            }
        }
        match matches.as_slice() {
            [only] => Ok(*only),
            [] => Err(ParseError {
                message: match qualifier {
                    Some(q) => format!("unknown column {q}.{name}"),
                    None => format!("unknown column {name}"),
                },
                offset: self.offset(),
            }),
            _ => Err(ParseError {
                message: format!("ambiguous column {name}"),
                offset: self.offset(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::schema::SchemaBuilder;
    use pgdesign_catalog::types::DataType;

    fn schema() -> Schema {
        SchemaBuilder::new()
            .table("photoobj")
            .column("objid", DataType::BigInt)
            .column("ra", DataType::Float)
            .column("dec", DataType::Float)
            .column("type", DataType::Int)
            .column("r", DataType::Float)
            .table("specobj")
            .column("specobjid", DataType::BigInt)
            .column("bestobjid", DataType::BigInt)
            .column("zredshift", DataType::Float)
            .build()
            .unwrap()
    }

    #[test]
    fn simple_select() {
        let s = schema();
        let q = parse_query(&s, "SELECT ra, dec FROM photoobj WHERE type = 3").unwrap();
        assert_eq!(q.tables.len(), 1);
        assert_eq!(q.projection.len(), 2);
        assert_eq!(q.filters.len(), 1);
        assert_eq!(q.filters[0].col, QueryColumn::new(0, 3));
    }

    #[test]
    fn range_between_and_order() {
        let s = schema();
        let q = parse_query(
            &s,
            "SELECT objid FROM photoobj WHERE ra BETWEEN 120.0 AND 130.0 AND r < 19.5 ORDER BY r DESC LIMIT 100",
        )
        .unwrap();
        assert_eq!(q.filters.len(), 2);
        assert!(matches!(q.filters[0].op, PredOp::Between(_, _)));
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(100));
    }

    #[test]
    fn implicit_join_in_where() {
        let s = schema();
        let q = parse_query(
            &s,
            "SELECT p.ra FROM photoobj p, specobj sp WHERE p.objid = sp.bestobjid AND sp.zredshift > 0.1",
        )
        .unwrap();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].left, QueryColumn::new(0, 0));
        assert_eq!(q.joins[0].right, QueryColumn::new(1, 1));
        assert_eq!(q.filters.len(), 1);
    }

    #[test]
    fn explicit_join_syntax() {
        let s = schema();
        let q = parse_query(
            &s,
            "SELECT count(*) FROM photoobj JOIN specobj ON photoobj.objid = specobj.bestobjid",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.aggregates, vec![Aggregate::CountStar]);
    }

    #[test]
    fn aggregates_and_group_by() {
        let s = schema();
        let q = parse_query(
            &s,
            "SELECT type, count(*), avg(r) FROM photoobj GROUP BY type",
        )
        .unwrap();
        assert_eq!(q.group_by, vec![QueryColumn::new(0, 3)]);
        assert_eq!(q.aggregates.len(), 2);
        assert!(matches!(q.aggregates[1], Aggregate::Avg(_)));
    }

    #[test]
    fn in_list_and_null_tests() {
        let s = schema();
        let q = parse_query(
            &s,
            "SELECT * FROM photoobj WHERE type IN (3, 6) AND dec IS NOT NULL",
        )
        .unwrap();
        assert!(q.select_star);
        assert!(matches!(q.filters[0].op, PredOp::InList(ref v) if v.len() == 2));
        assert!(matches!(q.filters[1].op, PredOp::IsNotNull));
    }

    #[test]
    fn self_join_with_aliases() {
        let s = schema();
        let q = parse_query(
            &s,
            "SELECT a.objid FROM photoobj a, photoobj b WHERE a.objid = b.objid AND a.r < 20",
        )
        .unwrap();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].left.slot, 0);
        assert_eq!(q.joins[0].right.slot, 1);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let s = schema();
        assert!(parse_query(&s, "SELECT x FROM nope").is_err());
        assert!(parse_query(&s, "SELECT nope FROM photoobj").is_err());
        let e = parse_query(
            &s,
            "SELECT objid FROM photoobj, specobj WHERE specobjid = 1 AND objid < bogus",
        )
        .unwrap_err();
        assert!(e.message.contains("bogus"), "{e}");
    }

    #[test]
    fn ambiguous_bare_column_rejected() {
        let s = SchemaBuilder::new()
            .table("a")
            .column("x", DataType::Int)
            .table("b")
            .column("x", DataType::Int)
            .build()
            .unwrap();
        let e = parse_query(&s, "SELECT x FROM a, b").unwrap_err();
        assert!(e.message.contains("ambiguous"));
    }

    #[test]
    fn non_equality_join_rejected() {
        let s = schema();
        let e = parse_query(
            &s,
            "SELECT p.ra FROM photoobj p, specobj sp WHERE p.objid < sp.bestobjid",
        )
        .unwrap_err();
        assert!(e.message.contains("equality"));
    }

    #[test]
    fn negative_and_float_literals() {
        let s = schema();
        let q = parse_query(&s, "SELECT ra FROM photoobj WHERE dec > -12.5").unwrap();
        assert!(matches!(q.filters[0].op, PredOp::Cmp(CmpOp::Gt, Value::Float(v)) if v == -12.5));
    }

    #[test]
    fn string_literals() {
        let s = SchemaBuilder::new()
            .table("t")
            .column("name", DataType::Text { avg_len: 10 })
            .build()
            .unwrap();
        let q = parse_query(&s, "SELECT name FROM t WHERE name = 'galaxy'").unwrap();
        assert!(matches!(
            &q.filters[0].op,
            PredOp::Cmp(CmpOp::Eq, Value::Str(s)) if s == "galaxy"
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let s = schema();
        assert!(parse_query(&s, "SELECT ra FROM photoobj garbage garbage").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        let s = schema();
        assert!(parse_query(&s, "select RA from PHOTOOBJ where TYPE = 1").is_err());
        // Table names are case sensitive (PostgreSQL folds to lowercase;
        // we require exact lowercase), but keywords are not:
        assert!(parse_query(&s, "SeLeCt ra FrOm photoobj WhErE type = 1").is_ok());
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn parser_never_panics(input in ".{0,80}") {
                let s = schema();
                let _ = parse_query(&s, &input);
            }

            #[test]
            fn roundtrip_simple_filters(v in -1000i64..1000) {
                let s = schema();
                let sql = format!("SELECT ra FROM photoobj WHERE type = {v}");
                let q = parse_query(&s, &sql).unwrap();
                prop_assert!(matches!(q.filters[0].op, PredOp::Cmp(CmpOp::Eq, Value::Int(x)) if x == v));
            }
        }
    }
}
