//! Data types and runtime values.
//!
//! The designer only ever needs values for two purposes: generating
//! synthetic data from which statistics are computed, and carrying literals
//! inside query predicates so that selectivities can be estimated. A small
//! closed set of types is therefore sufficient; it matches the types that
//! appear in the SDSS and TPC-H style schemas used by the paper's demo.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Logical column data type.
///
/// `byte_width` feeds the size model ([`crate::sizing`]); variable-length
/// types carry an *average* width the way `pg_statistic.stawidth` does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 32-bit integer.
    Int,
    /// 64-bit integer (object ids, keys).
    BigInt,
    /// 64-bit IEEE float (measurements, magnitudes).
    Float,
    /// Variable-length text with a given average byte length.
    Text {
        /// Average stored byte length, including the varlena header.
        avg_len: u16,
    },
    /// Boolean flag.
    Bool,
    /// Timestamp stored as microseconds since an epoch.
    Timestamp,
}

impl DataType {
    /// Average on-disk width of one value in bytes (PostgreSQL-flavoured).
    pub fn byte_width(&self) -> u32 {
        match self {
            DataType::Int => 4,
            DataType::BigInt => 8,
            DataType::Float => 8,
            DataType::Text { avg_len } => u32::from(*avg_len) + 1,
            DataType::Bool => 1,
            DataType::Timestamp => 8,
        }
    }

    /// True if values of this type have a natural linear order useful for
    /// B-tree indexing and range predicates (everything in our set does).
    pub fn is_orderable(&self) -> bool {
        true
    }

    /// True for types on which equality predicates are the norm and range
    /// predicates are unusual (flags / categorical text).
    pub fn is_categorical(&self) -> bool {
        matches!(self, DataType::Bool | DataType::Text { .. })
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "int"),
            DataType::BigInt => write!(f, "bigint"),
            DataType::Float => write!(f, "float"),
            DataType::Text { avg_len } => write!(f, "text({avg_len})"),
            DataType::Bool => write!(f, "bool"),
            DataType::Timestamp => write!(f, "timestamp"),
        }
    }
}

/// A runtime value: generated data cell or query literal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer value (covers `Int`, `BigInt` and `Timestamp`).
    Int(i64),
    /// Floating point value.
    Float(f64),
    /// Text value.
    Str(String),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// Project the value onto the real line for histogram placement.
    ///
    /// Strings are mapped through their first eight bytes interpreted as a
    /// big-endian integer, which preserves lexicographic order — the same
    /// trick PostgreSQL's `convert_string_to_scalar` uses for histogram
    /// interpolation on text columns. `NULL` has no numeric image.
    pub fn numeric_image(&self) -> Option<f64> {
        match self {
            Value::Null => None,
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(s) => Some(string_to_scalar(s)),
        }
    }

    /// True if this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL-style three-valued comparison; `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.total_cmp(b)),
            (Value::Int(a), Value::Float(b)) => Some((*a as f64).total_cmp(b)),
            (Value::Float(a), Value::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            // Heterogeneous comparisons fall back to the numeric image;
            // the parser only produces homogeneous ones.
            (a, b) => {
                let (x, y) = (a.numeric_image()?, b.numeric_image()?);
                Some(x.total_cmp(&y))
            }
        }
    }

    /// SQL equality (NULL never equals anything).
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.sql_cmp(other) == Some(Ordering::Equal)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Total equality used for dedup/NDV computation: NULL == NULL here,
        // unlike SQL semantics, because ANALYZE counts NULLs as one group.
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.sql_eq(other),
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_order(other)
    }
}

impl Value {
    /// Total order used for sorting data during statistics computation:
    /// NULLs sort last, as with PostgreSQL's default `NULLS LAST`.
    fn total_order(&self, other: &Self) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => self.sql_cmp(other).unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Map a string to a scalar preserving lexicographic order on the first
/// eight bytes (PostgreSQL `convert_string_to_scalar` analogue).
pub fn string_to_scalar(s: &str) -> f64 {
    let mut buf = [0u8; 8];
    for (i, b) in s.as_bytes().iter().take(8).enumerate() {
        buf[i] = *b;
    }
    u64::from_be_bytes(buf) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_are_positive_and_match_pg_conventions() {
        assert_eq!(DataType::Int.byte_width(), 4);
        assert_eq!(DataType::BigInt.byte_width(), 8);
        assert_eq!(DataType::Float.byte_width(), 8);
        assert_eq!(DataType::Text { avg_len: 12 }.byte_width(), 13);
        assert_eq!(DataType::Bool.byte_width(), 1);
        assert_eq!(DataType::Timestamp.byte_width(), 8);
    }

    #[test]
    fn sql_cmp_respects_null_semantics() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert!(!Value::Null.sql_eq(&Value::Null));
    }

    #[test]
    fn total_order_sorts_nulls_last() {
        let mut vals = [Value::Int(3), Value::Null, Value::Int(1)];
        vals.sort();
        assert_eq!(vals[0], Value::Int(1));
        assert_eq!(vals[1], Value::Int(3));
        assert!(vals[2].is_null());
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert!(Value::Int(2).sql_eq(&Value::Float(2.0)));
    }

    #[test]
    fn string_scalar_preserves_order() {
        let a = string_to_scalar("abc");
        let b = string_to_scalar("abd");
        let c = string_to_scalar("b");
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn numeric_image_of_strings_matches_scalar_map() {
        let v = Value::Str("galaxy".into());
        assert_eq!(v.numeric_image(), Some(string_to_scalar("galaxy")));
        assert_eq!(Value::Null.numeric_image(), None);
    }

    #[test]
    fn display_roundtrips_visually() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Str("x".into()).to_string(), "'x'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(DataType::Text { avg_len: 8 }.to_string(), "text(8)");
    }

    #[test]
    fn categorical_classification() {
        assert!(DataType::Bool.is_categorical());
        assert!(DataType::Text { avg_len: 4 }.is_categorical());
        assert!(!DataType::Float.is_categorical());
    }
}
