//! # pgdesign-catalog
//!
//! The catalog substrate of the *pgdesign* physical-design toolkit.
//!
//! The SIGMOD 2010 demonstration "An Automated, yet Interactive and Portable
//! DB designer" layers its advisors (CoPhy, AutoPart, COLT, index
//! interaction) on top of PostgreSQL's catalog and statistics subsystem.
//! This crate reproduces that substrate from scratch:
//!
//! * [`schema`] — logical schema (tables, columns, data types);
//! * [`stats`] / [`histogram`] — per-column statistics: row counts, number
//!   of distinct values, null fractions, most-common values and equi-depth
//!   histograms, mirroring what `ANALYZE` stores in `pg_statistic`;
//! * [`datagen`] — synthetic data generation with controllable
//!   distributions, from which statistics are *computed* (not stipulated),
//!   so the selectivity model downstream sees realistic skew;
//! * [`sizing`] — the page/size model (heap pages, B-tree pages) used both
//!   by the cost model and by what-if index size estimation;
//! * [`design`] — physical design structures: secondary indexes, vertical
//!   partitions (column groups with optional replication) and horizontal
//!   range partitioning, plus the [`design::PhysicalDesign`] container that
//!   the what-if optimizer evaluates;
//! * [`samples`] — the SDSS-like scientific schema used by the paper's demo
//!   scenarios and a TPC-H-like schema for broader workloads.
//!
//! Everything downstream treats [`Catalog`] as the single source of truth
//! for schema, statistics and base physical design.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod datagen;
pub mod design;
pub mod histogram;
pub mod samples;
pub mod schema;
pub mod sizing;
pub mod stats;
pub mod types;

pub use catalog::{Catalog, CatalogError};
pub use design::{HorizontalPartitioning, Index, PhysicalDesign, VerticalPartitioning};
pub use histogram::EquiDepthHistogram;
pub use schema::{ColumnDef, ColumnRef, Schema, SchemaBuilder, TableDef, TableId};
pub use stats::{ColumnStats, TableStats};
pub use types::{DataType, Value};
