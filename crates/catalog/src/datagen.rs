//! Synthetic data generation and the `ANALYZE` analogue.
//!
//! The paper demonstrates on SDSS, a real scientific dataset we cannot
//! ship. The substitution (see DESIGN.md) is to *generate* data with the
//! distributional features that matter to a physical designer — skew,
//! correlation-with-storage-order, wide domains, categorical columns — and
//! then compute statistics from the generated rows exactly as `ANALYZE`
//! would, so selectivity estimation downstream is grounded in actual data.

use crate::histogram::EquiDepthHistogram;
use crate::stats::{ColumnStats, TableStats};
use crate::types::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distribution of one generated column.
#[derive(Debug, Clone)]
pub enum ColumnGen {
    /// Dense sequential values `0..rows` (primary keys), clustered.
    Sequential,
    /// Uniform integers in `[lo, hi]`.
    UniformInt {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// Uniform floats in `[lo, hi)`.
    UniformFloat {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Zipf-distributed category ids over `0..n` with exponent `s`.
    Zipf {
        /// Number of distinct values.
        n: u64,
        /// Skew exponent (1.0 = classic Zipf; higher = more skew).
        s: f64,
    },
    /// Approximately normal floats via the Irwin–Hall sum of 12 uniforms.
    Normal {
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation.
        std: f64,
    },
    /// Uniform categorical text from a fixed vocabulary.
    Categorical {
        /// The category labels.
        labels: Vec<String>,
    },
    /// Foreign key into a table of `parent_rows` rows, uniform.
    ForeignKey {
        /// Cardinality of the referenced table.
        parent_rows: u64,
    },
    /// Inject NULLs with probability `frac` into an inner generator.
    Nullable {
        /// Probability of NULL per row.
        frac: f64,
        /// Generator for non-NULL values.
        inner: Box<ColumnGen>,
    },
}

impl ColumnGen {
    fn generate(&self, row: u64, rng: &mut StdRng) -> Value {
        match self {
            ColumnGen::Sequential => Value::Int(row as i64),
            ColumnGen::UniformInt { lo, hi } => Value::Int(rng.random_range(*lo..=*hi)),
            ColumnGen::UniformFloat { lo, hi } => Value::Float(rng.random_range(*lo..*hi)),
            ColumnGen::Zipf { n, s } => Value::Int(zipf_sample(*n, *s, rng) as i64),
            ColumnGen::Normal { mean, std } => {
                let sum: f64 = (0..12).map(|_| rng.random_range(0.0..1.0)).sum();
                Value::Float(mean + (sum - 6.0) * std)
            }
            ColumnGen::Categorical { labels } => {
                let i = rng.random_range(0..labels.len());
                Value::Str(labels[i].clone())
            }
            ColumnGen::ForeignKey { parent_rows } => {
                Value::Int(rng.random_range(0..*parent_rows) as i64)
            }
            ColumnGen::Nullable { frac, inner } => {
                if rng.random_range(0.0..1.0) < *frac {
                    Value::Null
                } else {
                    inner.generate(row, rng)
                }
            }
        }
    }
}

/// Inverse-CDF Zipf sampling over `0..n` (rank 1 is value 0).
///
/// Uses the rejection-free approximation of Gray et al. ("Quickly
/// generating billion-record synthetic databases"): draw u ∈ (0,1) and
/// invert the approximate harmonic CDF.
fn zipf_sample(n: u64, s: f64, rng: &mut StdRng) -> u64 {
    let n = n.max(1);
    if s <= 0.0 {
        return rng.random_range(0..n);
    }
    // Approximate generalized harmonic number H_{n,s} via the integral.
    let h = |x: f64| -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            x.ln() + 0.577
        } else {
            (x.powf(1.0 - s) - 1.0) / (1.0 - s) + 1.0
        }
    };
    let hn = h(n as f64);
    let u = rng.random_range(f64::MIN_POSITIVE..1.0);
    let target = u * hn;
    // Invert h.
    let rank = if (s - 1.0).abs() < 1e-9 {
        (target - 0.577).exp()
    } else {
        ((target - 1.0) * (1.0 - s) + 1.0).powf(1.0 / (1.0 - s))
    };
    (rank.max(1.0).min(n as f64) as u64) - 1
}

/// Column-oriented generated table sample.
#[derive(Debug, Clone)]
pub struct TableData {
    /// One vector of values per column, all the same length.
    pub columns: Vec<Vec<Value>>,
}

impl TableData {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }
}

/// Generate `rows` rows from per-column generators with a fixed seed.
pub fn generate(specs: &[ColumnGen], rows: u64, seed: u64) -> TableData {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut columns: Vec<Vec<Value>> = specs
        .iter()
        .map(|_| Vec::with_capacity(rows as usize))
        .collect();
    for row in 0..rows {
        for (c, spec) in specs.iter().enumerate() {
            columns[c].push(spec.generate(row, &mut rng));
        }
    }
    TableData { columns }
}

/// Number of histogram buckets `analyze` builds (PostgreSQL default
/// `default_statistics_target`).
pub const STATS_TARGET: usize = 100;
/// Number of most-common values retained.
pub const MCV_TARGET: usize = 10;

/// Compute [`TableStats`] from a data sample, scaled to `logical_rows`.
///
/// This is the `ANALYZE` analogue: NDV is estimated from the sample with
/// the Haas–Stokes style scale-up, the histogram is equi-depth over the
/// sample, MCVs are the most frequent sample values, and correlation is the
/// rank correlation between storage order and value order.
pub fn analyze(data: &TableData, logical_rows: u64) -> TableStats {
    let sample_rows = data.rows() as f64;
    let scale = if sample_rows > 0.0 {
        logical_rows as f64 / sample_rows
    } else {
        1.0
    };
    let columns = data
        .columns
        .iter()
        .map(|col| analyze_column(col, scale, logical_rows))
        .collect();
    TableStats {
        row_count: logical_rows,
        columns,
    }
}

fn analyze_column(col: &[Value], scale: f64, logical_rows: u64) -> ColumnStats {
    let n = col.len();
    if n == 0 {
        return ColumnStats::synthetic_uniform(0.0, 0.0, 1.0, 4.0);
    }
    let nulls = col.iter().filter(|v| v.is_null()).count();
    let null_frac = nulls as f64 / n as f64;

    let mut images: Vec<f64> = col.iter().filter_map(Value::numeric_image).collect();
    images.sort_by(f64::total_cmp);

    // Distinct count on the sample.
    let mut distinct = 0usize;
    let mut once = 0usize;
    {
        let mut i = 0;
        while i < images.len() {
            let mut j = i + 1;
            while j < images.len() && images[j] == images[i] {
                j += 1;
            }
            distinct += 1;
            if j - i == 1 {
                once += 1;
            }
            i = j;
        }
    }

    // Scale NDV: if (almost) all sample values are unique, assume the
    // column is unique; if duplicates dominate, assume NDV is saturated at
    // the sample's distinct count (Haas–Stokes flavoured heuristic, same
    // spirit as PostgreSQL's `estimate_ndistinct`).
    let ndv = if distinct == 0 {
        1.0
    } else if once as f64 > 0.9 * images.len() as f64 {
        (logical_rows as f64 * (1.0 - null_frac)).max(1.0)
    } else if once == 0 {
        distinct as f64
    } else {
        // Duj1 estimator: n_distinct = n*d / (n - f1 + f1*n/N)
        let nn = images.len() as f64;
        let d = distinct as f64;
        let f1 = once as f64;
        let big_n = (logical_rows as f64 * (1.0 - null_frac)).max(nn);
        ((nn * d) / (nn - f1 + f1 * nn / big_n)).clamp(d, big_n)
    };

    // MCVs from sample frequencies.
    let mut freq: Vec<(f64, usize)> = Vec::new();
    {
        let mut i = 0;
        while i < images.len() {
            let mut j = i + 1;
            while j < images.len() && images[j] == images[i] {
                j += 1;
            }
            freq.push((images[i], j - i));
            i = j;
        }
    }
    freq.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let mcv: Vec<(f64, f64)> = freq
        .iter()
        .take(MCV_TARGET)
        .filter(|(_, c)| *c > 1 && (*c as f64) / n as f64 > 1.5 / distinct.max(1) as f64)
        .map(|(v, c)| (*v, *c as f64 / n as f64))
        .collect();

    let histogram = EquiDepthHistogram::from_sorted(&images, STATS_TARGET);

    // Correlation between storage position and value rank (Pearson on
    // position vs value image; adequate for the cost model's needs).
    let correlation = storage_correlation(col);

    let avg_width = 8.0 * scale.clamp(0.0, 1.0) + 4.0; // coarse default; callers
                                                       // with schema knowledge overwrite via `with_schema_widths`.

    ColumnStats {
        ndv,
        null_frac,
        min: images.first().copied().unwrap_or(0.0),
        max: images.last().copied().unwrap_or(0.0),
        histogram,
        mcv,
        avg_width,
        correlation,
    }
}

/// Pearson correlation between row position and value image.
fn storage_correlation(col: &[Value]) -> f64 {
    let pairs: Vec<(f64, f64)> = col
        .iter()
        .enumerate()
        .filter_map(|(i, v)| v.numeric_image().map(|x| (i as f64, x)))
        .collect();
    let n = pairs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mean_x = pairs.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = pairs.iter().map(|(_, y)| y).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in &pairs {
        sxy += (x - mean_x) * (y - mean_y);
        sxx += (x - mean_x) * (x - mean_x);
        syy += (y - mean_y) * (y - mean_y);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_per_seed() {
        let specs = vec![ColumnGen::UniformInt { lo: 0, hi: 100 }];
        let a = generate(&specs, 50, 7);
        let b = generate(&specs, 50, 7);
        let c = generate(&specs, 50, 8);
        assert_eq!(a.columns, b.columns);
        assert_ne!(a.columns, c.columns);
    }

    #[test]
    fn sequential_is_clustered() {
        let data = generate(&[ColumnGen::Sequential], 500, 1);
        let stats = analyze(&data, 500);
        assert!(stats.columns[0].correlation > 0.99);
        assert!(stats.columns[0].ndv >= 499.0);
    }

    #[test]
    fn zipf_is_skewed() {
        let data = generate(&[ColumnGen::Zipf { n: 1000, s: 1.2 }], 5000, 2);
        let stats = analyze(&data, 5000);
        let s = &stats.columns[0];
        // Rank-0 value should be a most-common value with large frequency.
        assert!(!s.mcv.is_empty(), "zipf should produce MCVs");
        assert!(s.mcv[0].1 > 0.05, "top MCV frequency {}", s.mcv[0].1);
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let data = generate(&[ColumnGen::Zipf { n: 10, s: 0.0 }], 2000, 3);
        let stats = analyze(&data, 2000);
        assert!(stats.columns[0].ndv >= 9.0);
    }

    #[test]
    fn nullable_produces_null_fraction() {
        let g = ColumnGen::Nullable {
            frac: 0.3,
            inner: Box::new(ColumnGen::UniformInt { lo: 0, hi: 9 }),
        };
        let data = generate(&[g], 2000, 4);
        let stats = analyze(&data, 2000);
        let nf = stats.columns[0].null_frac;
        assert!((nf - 0.3).abs() < 0.05, "null_frac {nf}");
    }

    #[test]
    fn analyze_scales_ndv_for_unique_columns() {
        // A 1k sample of unique values standing in for a 10M-row table.
        let data = generate(&[ColumnGen::Sequential], 1000, 5);
        let stats = analyze(&data, 10_000_000);
        assert!(stats.columns[0].ndv > 1_000_000.0);
    }

    #[test]
    fn analyze_saturates_ndv_for_small_domains() {
        let data = generate(&[ColumnGen::UniformInt { lo: 0, hi: 4 }], 2000, 6);
        let stats = analyze(&data, 10_000_000);
        assert!(stats.columns[0].ndv <= 6.0);
    }

    #[test]
    fn histogram_from_normal_data_is_centered() {
        let data = generate(
            &[ColumnGen::Normal {
                mean: 100.0,
                std: 10.0,
            }],
            5000,
            7,
        );
        let stats = analyze(&data, 5000);
        let h = stats.columns[0].histogram.as_ref().unwrap();
        let below_mean = h.selectivity_lt(100.0);
        assert!((below_mean - 0.5).abs() < 0.05, "median off: {below_mean}");
    }

    #[test]
    fn foreign_key_spans_parent_domain() {
        let data = generate(&[ColumnGen::ForeignKey { parent_rows: 100 }], 5000, 8);
        let stats = analyze(&data, 5000);
        let s = &stats.columns[0];
        assert!(s.min >= 0.0 && s.max <= 99.0);
        assert!(s.ndv >= 90.0);
    }

    #[test]
    fn categorical_labels_hash_to_distinct_images() {
        let g = ColumnGen::Categorical {
            labels: vec!["star".into(), "galaxy".into(), "qso".into()],
        };
        let data = generate(&[g], 1000, 9);
        let stats = analyze(&data, 1000);
        assert!((stats.columns[0].ndv - 3.0).abs() < 0.5);
    }

    #[test]
    fn empty_generation() {
        let data = generate(&[ColumnGen::Sequential], 0, 1);
        assert_eq!(data.rows(), 0);
        let stats = analyze(&data, 0);
        assert_eq!(stats.row_count, 0);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn analyze_invariants(rows in 1u64..400, seed in 0u64..100) {
                let specs = vec![
                    ColumnGen::Sequential,
                    ColumnGen::Zipf { n: 50, s: 1.0 },
                    ColumnGen::Nullable { frac: 0.2, inner: Box::new(ColumnGen::UniformFloat { lo: -1.0, hi: 1.0 }) },
                ];
                let data = generate(&specs, rows, seed);
                let stats = analyze(&data, rows * 100);
                for c in &stats.columns {
                    prop_assert!(c.ndv >= 1.0);
                    prop_assert!((0.0..=1.0).contains(&c.null_frac));
                    prop_assert!(c.min <= c.max);
                    prop_assert!((-1.0..=1.0).contains(&c.correlation));
                    let mcv_mass: f64 = c.mcv.iter().map(|(_, f)| f).sum();
                    prop_assert!(mcv_mass <= 1.0 + 1e-9);
                }
            }
        }
    }
}
