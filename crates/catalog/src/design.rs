//! Physical design structures: indexes and partitions.
//!
//! A [`PhysicalDesign`] is the unit the what-if optimizer evaluates and the
//! unit every advisor (CoPhy, AutoPart, COLT) manipulates. Designs are
//! cheap to clone and hash so that configuration enumeration — the inner
//! loop of index interaction analysis — stays fast.

use crate::schema::{Schema, TableId};
use crate::sizing;
use crate::stats::TableStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A (possibly hypothetical) multi-column B-tree index.
///
/// There is no "hypothetical" flag: the whole point of the paper's what-if
/// component is that simulated and real structures share one definition and
/// one size model, differing only in whether they have been materialized.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Index {
    /// Indexed table.
    pub table: TableId,
    /// Key columns in significance order (ordinals within the table).
    pub columns: Vec<u16>,
    /// Whether the index enforces uniqueness of the full key.
    pub unique: bool,
}

impl Index {
    /// A non-unique index on the given columns.
    pub fn new(table: TableId, columns: Vec<u16>) -> Self {
        Index {
            table,
            columns,
            unique: false,
        }
    }

    /// A unique index on the given columns.
    pub fn unique(table: TableId, columns: Vec<u16>) -> Self {
        Index {
            table,
            columns,
            unique: true,
        }
    }

    /// Leading column of the key.
    pub fn leading_column(&self) -> u16 {
        self.columns[0]
    }

    /// Key width in bytes according to the schema.
    pub fn key_width(&self, schema: &Schema) -> u32 {
        schema.table(self.table).byte_width_of(&self.columns)
    }

    /// Estimated size in pages given the table's statistics.
    pub fn size_pages(&self, schema: &Schema, stats: &TableStats) -> u64 {
        sizing::btree_total_pages(stats.row_count, self.key_width(schema))
    }

    /// Estimated size in bytes.
    pub fn size_bytes(&self, schema: &Schema, stats: &TableStats) -> u64 {
        sizing::pages_to_bytes(self.size_pages(schema, stats))
    }

    /// Height of the B-tree (descent cost driver).
    pub fn height(&self, schema: &Schema, stats: &TableStats) -> u32 {
        sizing::btree_height(stats.row_count, self.key_width(schema))
    }

    /// True if `prefix` equals the first `prefix.len()` key columns.
    pub fn has_prefix(&self, prefix: &[u16]) -> bool {
        prefix.len() <= self.columns.len() && self.columns[..prefix.len()] == *prefix
    }

    /// True if the index key contains every column in `cols` (any order) —
    /// the covering test for index-only scans.
    pub fn covers(&self, cols: &[u16]) -> bool {
        cols.iter().all(|c| self.columns.contains(c))
    }

    /// Render with column names from the schema, e.g.
    /// `photoobj(ra, dec)`.
    pub fn display(&self, schema: &Schema) -> String {
        let t = schema.table(self.table);
        let cols: Vec<&str> = self
            .columns
            .iter()
            .map(|&c| t.column(c).name.as_str())
            .collect();
        format!(
            "{}({}){}",
            t.name,
            cols.join(", "),
            if self.unique { " UNIQUE" } else { "" }
        )
    }
}

impl fmt::Display for Index {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "idx:{}({})",
            self.table,
            self.columns
                .iter()
                .map(|c| format!("c{c}"))
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

/// A vertical partitioning of one table into column groups (fragments).
///
/// Groups may overlap: AutoPart permits *replicating* hot columns into
/// multiple fragments subject to a replication budget. Every column must
/// appear in at least one group. Each fragment implicitly carries the row
/// id so fragments can be re-joined.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VerticalPartitioning {
    /// Partitioned table.
    pub table: TableId,
    /// Column groups; each inner vec is sorted and non-empty.
    pub groups: Vec<Vec<u16>>,
}

impl VerticalPartitioning {
    /// The trivial partitioning: one group holding all columns.
    pub fn trivial(table: TableId, width: u16) -> Self {
        VerticalPartitioning {
            table,
            groups: vec![(0..width).collect()],
        }
    }

    /// Build a partitioning, normalising group order and content order.
    pub fn new(table: TableId, mut groups: Vec<Vec<u16>>) -> Self {
        for g in &mut groups {
            g.sort_unstable();
            g.dedup();
        }
        groups.retain(|g| !g.is_empty());
        groups.sort();
        VerticalPartitioning { table, groups }
    }

    /// Check every column `0..width` is covered by some group.
    pub fn is_complete(&self, width: u16) -> bool {
        (0..width).all(|c| self.groups.iter().any(|g| g.contains(&c)))
    }

    /// Bytes of replicated storage beyond a disjoint partitioning: the sum
    /// of widths of columns stored more than once, weighted by row count.
    pub fn replication_bytes(&self, schema: &Schema, stats: &TableStats) -> u64 {
        let t = schema.table(self.table);
        let mut seen = vec![0u32; t.width() as usize];
        for g in &self.groups {
            for &c in g {
                seen[c as usize] += 1;
            }
        }
        let extra_width: u64 = seen
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 1)
            .map(|(c, &n)| u64::from(n - 1) * u64::from(t.column(c as u16).dtype.byte_width()))
            .sum();
        extra_width * stats.row_count
    }

    /// Groups whose column set intersects `needed`, i.e. the fragments a
    /// query touching `needed` must scan.
    pub fn fragments_for(&self, needed: &[u16]) -> Vec<usize> {
        // Greedy set cover: favour fragments covering many needed columns
        // so replicated columns are not fetched twice.
        let mut remaining: Vec<u16> = needed.to_vec();
        let mut picked = Vec::new();
        while !remaining.is_empty() {
            let best = self
                .groups
                .iter()
                .enumerate()
                .filter(|(i, _)| !picked.contains(i))
                .max_by_key(|(_, g)| remaining.iter().filter(|c| g.contains(c)).count());
            match best {
                Some((i, g)) if remaining.iter().any(|c| g.contains(c)) => {
                    remaining.retain(|c| !g.contains(c));
                    picked.push(i);
                }
                _ => break, // column not covered anywhere: malformed, stop
            }
        }
        picked.sort_unstable();
        picked
    }
}

/// Horizontal range partitioning of a table on one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HorizontalPartitioning {
    /// Partitioned table.
    pub table: TableId,
    /// Partitioning column ordinal.
    pub column: u16,
    /// Interior split points (numeric image), ascending: `k` bounds make
    /// `k + 1` partitions.
    pub bounds: Vec<f64>,
}

impl HorizontalPartitioning {
    /// Build, sorting and deduplicating the bounds.
    pub fn new(table: TableId, column: u16, mut bounds: Vec<f64>) -> Self {
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        HorizontalPartitioning {
            table,
            column,
            bounds,
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.bounds.len() + 1
    }

    /// Fraction of partitions that survive pruning for a range restriction
    /// `[lo, hi]` on the partitioning column (either side open).
    pub fn surviving_fraction(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let n = self.partitions();
        let mut alive = 0usize;
        for p in 0..n {
            let p_lo = if p == 0 {
                f64::NEG_INFINITY
            } else {
                self.bounds[p - 1]
            };
            let p_hi = if p == n - 1 {
                f64::INFINITY
            } else {
                self.bounds[p]
            };
            let ok_lo = lo.is_none_or(|v| v <= p_hi);
            let ok_hi = hi.is_none_or(|v| v >= p_lo);
            if ok_lo && ok_hi {
                alive += 1;
            }
        }
        alive as f64 / n as f64
    }
}

/// A complete physical design: a set of secondary indexes plus optional
/// per-table vertical and horizontal partitionings.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhysicalDesign {
    indexes: Vec<Index>,
    vertical: BTreeMap<TableId, VerticalPartitioning>,
    horizontal: BTreeMap<TableId, HorizontalPartitioning>,
}

impl PhysicalDesign {
    /// The empty design (no secondary structures).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Design holding exactly the given indexes.
    pub fn with_indexes<I: IntoIterator<Item = Index>>(indexes: I) -> Self {
        let mut d = Self::default();
        for i in indexes {
            d.add_index(i);
        }
        d
    }

    /// Add an index (idempotent); returns true if it was new.
    pub fn add_index(&mut self, index: Index) -> bool {
        if self.indexes.contains(&index) {
            return false;
        }
        self.indexes.push(index);
        self.indexes.sort();
        true
    }

    /// Remove an index; returns true if it was present.
    pub fn remove_index(&mut self, index: &Index) -> bool {
        let before = self.indexes.len();
        self.indexes.retain(|i| i != index);
        before != self.indexes.len()
    }

    /// True if the design contains the index.
    pub fn has_index(&self, index: &Index) -> bool {
        self.indexes.contains(index)
    }

    /// All indexes, sorted.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Indexes on one table.
    pub fn indexes_on(&self, table: TableId) -> impl Iterator<Item = &Index> {
        self.indexes.iter().filter(move |i| i.table == table)
    }

    /// Install a vertical partitioning for its table, replacing any prior.
    pub fn set_vertical(&mut self, vp: VerticalPartitioning) {
        self.vertical.insert(vp.table, vp);
    }

    /// Install a horizontal partitioning for its table, replacing any prior.
    pub fn set_horizontal(&mut self, hp: HorizontalPartitioning) {
        self.horizontal.insert(hp.table, hp);
    }

    /// The vertical partitioning of a table, if any.
    pub fn vertical(&self, table: TableId) -> Option<&VerticalPartitioning> {
        self.vertical.get(&table)
    }

    /// The horizontal partitioning of a table, if any.
    pub fn horizontal(&self, table: TableId) -> Option<&HorizontalPartitioning> {
        self.horizontal.get(&table)
    }

    /// All vertical partitionings.
    pub fn verticals(&self) -> impl Iterator<Item = &VerticalPartitioning> {
        self.vertical.values()
    }

    /// All horizontal partitionings.
    pub fn horizontals(&self) -> impl Iterator<Item = &HorizontalPartitioning> {
        self.horizontal.values()
    }

    /// Union of this design and another (indexes and partitions; the other
    /// design's partitionings win on conflict).
    pub fn union(&self, other: &PhysicalDesign) -> PhysicalDesign {
        let mut d = self.clone();
        for i in &other.indexes {
            d.add_index(i.clone());
        }
        for vp in other.vertical.values() {
            d.set_vertical(vp.clone());
        }
        for hp in other.horizontal.values() {
            d.set_horizontal(hp.clone());
        }
        d
    }

    /// This design plus one extra index (no mutation).
    pub fn plus_index(&self, index: &Index) -> PhysicalDesign {
        let mut d = self.clone();
        d.add_index(index.clone());
        d
    }

    /// This design minus one index (no mutation).
    pub fn minus_index(&self, index: &Index) -> PhysicalDesign {
        let mut d = self.clone();
        d.remove_index(index);
        d
    }

    /// Total estimated bytes of all secondary indexes.
    pub fn index_bytes(&self, schema: &Schema, stats: &[TableStats]) -> u64 {
        self.indexes
            .iter()
            .map(|i| i.size_bytes(schema, &stats[i.table.0 as usize]))
            .sum()
    }

    /// Total replicated bytes introduced by vertical partitionings.
    pub fn replication_bytes(&self, schema: &Schema, stats: &[TableStats]) -> u64 {
        self.vertical
            .values()
            .map(|vp| vp.replication_bytes(schema, &stats[vp.table.0 as usize]))
            .sum()
    }

    /// Number of secondary indexes.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::stats::ColumnStats;
    use crate::types::DataType;

    fn schema() -> Schema {
        SchemaBuilder::new()
            .table("t")
            .column("a", DataType::BigInt)
            .column("b", DataType::Float)
            .column("c", DataType::Int)
            .column("d", DataType::Text { avg_len: 20 })
            .build()
            .unwrap()
    }

    fn stats() -> TableStats {
        TableStats {
            row_count: 1_000_000,
            columns: vec![
                ColumnStats::synthetic_key(1_000_000, 8.0),
                ColumnStats::synthetic_uniform(0.0, 1.0, 500_000.0, 8.0),
                ColumnStats::synthetic_uniform(0.0, 99.0, 100.0, 4.0),
                ColumnStats::synthetic_categorical(5, 21.0),
            ],
        }
    }

    #[test]
    fn index_prefix_and_cover() {
        let i = Index::new(TableId(0), vec![1, 2, 0]);
        assert!(i.has_prefix(&[1]));
        assert!(i.has_prefix(&[1, 2]));
        assert!(!i.has_prefix(&[2]));
        assert!(i.covers(&[0, 2]));
        assert!(!i.covers(&[3]));
    }

    #[test]
    fn index_size_grows_with_key_width() {
        let s = schema();
        let st = stats();
        let narrow = Index::new(TableId(0), vec![2]);
        let wide = Index::new(TableId(0), vec![3, 0, 1]);
        assert!(wide.size_bytes(&s, &st) > narrow.size_bytes(&s, &st));
        assert!(narrow.size_bytes(&s, &st) > 0);
    }

    #[test]
    fn index_display_uses_names() {
        let s = schema();
        let i = Index::unique(TableId(0), vec![0, 1]);
        assert_eq!(i.display(&s), "t(a, b) UNIQUE");
    }

    #[test]
    fn design_add_remove_is_idempotent() {
        let mut d = PhysicalDesign::empty();
        let i = Index::new(TableId(0), vec![0]);
        assert!(d.add_index(i.clone()));
        assert!(!d.add_index(i.clone()));
        assert_eq!(d.index_count(), 1);
        assert!(d.remove_index(&i));
        assert!(!d.remove_index(&i));
        assert_eq!(d.index_count(), 0);
    }

    #[test]
    fn plus_minus_do_not_mutate() {
        let d = PhysicalDesign::empty();
        let i = Index::new(TableId(0), vec![0]);
        let d2 = d.plus_index(&i);
        assert_eq!(d.index_count(), 0);
        assert_eq!(d2.index_count(), 1);
        let d3 = d2.minus_index(&i);
        assert_eq!(d2.index_count(), 1);
        assert_eq!(d3.index_count(), 0);
    }

    #[test]
    fn union_merges_everything() {
        let mut a = PhysicalDesign::with_indexes([Index::new(TableId(0), vec![0])]);
        a.set_vertical(VerticalPartitioning::trivial(TableId(0), 4));
        let b = PhysicalDesign::with_indexes([Index::new(TableId(0), vec![1])]);
        let u = a.union(&b);
        assert_eq!(u.index_count(), 2);
        assert!(u.vertical(TableId(0)).is_some());
    }

    #[test]
    fn vertical_partitioning_completeness() {
        let vp = VerticalPartitioning::new(TableId(0), vec![vec![0, 1], vec![2, 3]]);
        assert!(vp.is_complete(4));
        assert!(!vp.is_complete(5));
        let partial = VerticalPartitioning::new(TableId(0), vec![vec![0]]);
        assert!(!partial.is_complete(2));
    }

    #[test]
    fn vertical_fragments_for_projection() {
        let vp = VerticalPartitioning::new(TableId(0), vec![vec![0, 1], vec![2], vec![3]]);
        assert_eq!(vp.fragments_for(&[0]), vec![0]);
        assert_eq!(vp.fragments_for(&[0, 2]), vec![0, 1]);
        assert_eq!(vp.fragments_for(&[3, 2, 1]), vec![0, 1, 2]);
    }

    #[test]
    fn fragments_prefer_replicated_cover() {
        // Column 1 is replicated into both groups; asking for {0,1} should
        // read only the first fragment.
        let vp = VerticalPartitioning::new(TableId(0), vec![vec![0, 1], vec![1, 2]]);
        assert_eq!(vp.fragments_for(&[0, 1]), vec![0]);
    }

    #[test]
    fn replication_bytes_counts_overlap_only() {
        let s = schema();
        let st = stats();
        let disjoint = VerticalPartitioning::new(TableId(0), vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(disjoint.replication_bytes(&s, &st), 0);
        // Column 0 (8 bytes) replicated once → 8 bytes × 1M rows.
        let overlapping = VerticalPartitioning::new(TableId(0), vec![vec![0, 1], vec![0, 2, 3]]);
        assert_eq!(overlapping.replication_bytes(&s, &st), 8_000_000);
    }

    #[test]
    fn horizontal_pruning() {
        let hp = HorizontalPartitioning::new(TableId(0), 2, vec![25.0, 50.0, 75.0]);
        assert_eq!(hp.partitions(), 4);
        assert_eq!(hp.surviving_fraction(None, None), 1.0);
        // Restriction to [0, 10] hits only the first partition.
        assert_eq!(hp.surviving_fraction(Some(0.0), Some(10.0)), 0.25);
        // Restriction to [30, 60] spans two partitions.
        assert_eq!(hp.surviving_fraction(Some(30.0), Some(60.0)), 0.5);
    }

    #[test]
    fn horizontal_bounds_normalised() {
        let hp = HorizontalPartitioning::new(TableId(0), 0, vec![50.0, 10.0, 50.0]);
        assert_eq!(hp.bounds, vec![10.0, 50.0]);
        assert_eq!(hp.partitions(), 3);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn surviving_fraction_in_unit_interval(
                bounds in proptest::collection::vec(-1e5f64..1e5, 0..10),
                lo in -2e5f64..2e5, hi in -2e5f64..2e5,
            ) {
                let hp = HorizontalPartitioning::new(TableId(0), 0, bounds);
                let (l, h) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                let f = hp.surviving_fraction(Some(l), Some(h));
                prop_assert!((0.0..=1.0).contains(&f));
                prop_assert!(f > 0.0, "a non-empty range always hits ≥1 partition");
            }

            #[test]
            fn fragments_cover_request(
                groups in proptest::collection::vec(proptest::collection::vec(0u16..6, 1..4), 1..5),
                needed in proptest::collection::vec(0u16..6, 1..5),
            ) {
                let vp = VerticalPartitioning::new(TableId(0), groups);
                let all: Vec<u16> = vp.groups.iter().flatten().copied().collect();
                let needed: Vec<u16> = needed.into_iter().filter(|c| all.contains(c)).collect();
                let frags = vp.fragments_for(&needed);
                for c in &needed {
                    prop_assert!(frags.iter().any(|&f| vp.groups[f].contains(c)));
                }
            }
        }
    }
}
