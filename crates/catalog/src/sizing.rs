//! Page and structure size model.
//!
//! The paper stresses (§2, critique of Monteiro et al.) that treating
//! what-if indexes as zero-size "severely affects the accuracy of the
//! optimizer". This module is the corrective: a PostgreSQL-flavoured size
//! model used uniformly for real and hypothetical structures, so what-if
//! costing and storage-budget accounting see the same bytes. Experiment E7
//! ablates exactly this choice.

/// Bytes per heap/index page (PostgreSQL default block size).
pub const PAGE_SIZE: u64 = 8192;
/// Per-page header bytes.
pub const PAGE_HEADER: u64 = 24;
/// Per-tuple header bytes in heap pages (PostgreSQL `HeapTupleHeaderData`).
pub const HEAP_TUPLE_HEADER: u64 = 23;
/// Per-tuple line pointer in the page slot directory.
pub const ITEM_POINTER: u64 = 4;
/// B-tree per-entry overhead (IndexTupleData + line pointer).
pub const BTREE_ENTRY_OVERHEAD: u64 = 8 + 4;
/// Default index fill factor.
pub const BTREE_FILL_FACTOR: f64 = 0.90;
/// Heap fill factor.
pub const HEAP_FILL_FACTOR: f64 = 1.00;

/// Round a byte width up to the 8-byte alignment PostgreSQL uses (MAXALIGN).
pub fn maxalign(width: u64) -> u64 {
    width.div_ceil(8) * 8
}

/// Number of heap pages needed for `rows` tuples of `payload_width` bytes.
pub fn heap_pages(rows: u64, payload_width: u32) -> u64 {
    if rows == 0 {
        return 1;
    }
    let tuple = maxalign(HEAP_TUPLE_HEADER + u64::from(payload_width)) + ITEM_POINTER;
    let usable = ((PAGE_SIZE - PAGE_HEADER) as f64 * HEAP_FILL_FACTOR) as u64;
    let per_page = (usable / tuple).max(1);
    rows.div_ceil(per_page)
}

/// Number of leaf pages of a B-tree holding `rows` entries whose key part
/// is `key_width` bytes wide (heap pointer included in the overhead).
pub fn btree_leaf_pages(rows: u64, key_width: u32) -> u64 {
    if rows == 0 {
        return 1;
    }
    let entry = maxalign(u64::from(key_width)) + BTREE_ENTRY_OVERHEAD;
    let usable = ((PAGE_SIZE - PAGE_HEADER) as f64 * BTREE_FILL_FACTOR) as u64;
    let per_page = (usable / entry).max(1);
    rows.div_ceil(per_page)
}

/// Total pages of a B-tree (leaf + internal levels + metapage).
pub fn btree_total_pages(rows: u64, key_width: u32) -> u64 {
    let leaves = btree_leaf_pages(rows, key_width);
    let entry = maxalign(u64::from(key_width)) + BTREE_ENTRY_OVERHEAD;
    let fanout = (((PAGE_SIZE - PAGE_HEADER) as f64 * BTREE_FILL_FACTOR) as u64 / entry).max(2);
    let mut total = leaves + 1; // +1 metapage
    let mut level = leaves;
    while level > 1 {
        level = level.div_ceil(fanout);
        total += level;
    }
    total
}

/// Height (number of levels above the leaves) of the B-tree; the number of
/// page reads a single-key descent performs before touching a leaf.
pub fn btree_height(rows: u64, key_width: u32) -> u32 {
    let leaves = btree_leaf_pages(rows, key_width);
    let entry = maxalign(u64::from(key_width)) + BTREE_ENTRY_OVERHEAD;
    let fanout = (((PAGE_SIZE - PAGE_HEADER) as f64 * BTREE_FILL_FACTOR) as u64 / entry).max(2);
    let mut h = 0u32;
    let mut level = leaves;
    while level > 1 {
        level = level.div_ceil(fanout);
        h += 1;
    }
    h
}

/// Bytes occupied by `pages` pages.
pub fn pages_to_bytes(pages: u64) -> u64 {
    pages * PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxalign_rounds_up_to_eight() {
        assert_eq!(maxalign(0), 0);
        assert_eq!(maxalign(1), 8);
        assert_eq!(maxalign(8), 8);
        assert_eq!(maxalign(9), 16);
        assert_eq!(maxalign(23), 24);
    }

    #[test]
    fn heap_pages_scale_linearly() {
        let one = heap_pages(10_000, 100);
        let two = heap_pages(20_000, 100);
        assert!(two >= 2 * one - 1);
        assert!(two <= 2 * one + 1);
    }

    #[test]
    fn wider_rows_need_more_pages() {
        assert!(heap_pages(100_000, 200) > heap_pages(100_000, 50));
    }

    #[test]
    fn empty_relation_occupies_one_page() {
        assert_eq!(heap_pages(0, 100), 1);
        assert_eq!(btree_leaf_pages(0, 8), 1);
    }

    #[test]
    fn btree_total_exceeds_leaves() {
        let rows = 1_000_000;
        let leaves = btree_leaf_pages(rows, 8);
        let total = btree_total_pages(rows, 8);
        assert!(total > leaves);
        // Internal levels are a tiny fraction given the large fanout.
        assert!(total < leaves + leaves / 10 + 10);
    }

    #[test]
    fn btree_height_grows_logarithmically() {
        assert_eq!(btree_height(1, 8), 0);
        let h_small = btree_height(100_000, 8);
        let h_large = btree_height(100_000_000, 8);
        assert!(h_large >= h_small);
        assert!(h_large <= 4, "unexpectedly tall tree: {h_large}");
    }

    #[test]
    fn index_size_is_nonzero_even_for_narrow_keys() {
        // Guards against the zero-size what-if fallacy the paper calls out.
        assert!(pages_to_bytes(btree_total_pages(1_000_000, 4)) > 10 * PAGE_SIZE);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn heap_pages_monotone_in_rows(r1 in 0u64..10_000_000, r2 in 0u64..10_000_000, w in 1u32..2000) {
                let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
                prop_assert!(heap_pages(lo, w) <= heap_pages(hi, w));
            }

            #[test]
            fn btree_pages_monotone_in_width(r in 1u64..5_000_000, w1 in 1u32..500, w2 in 1u32..500) {
                let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
                prop_assert!(btree_total_pages(r, lo) <= btree_total_pages(r, hi));
            }
        }
    }
}
