//! Equi-depth histograms, the workhorse of selectivity estimation.
//!
//! PostgreSQL's `ANALYZE` stores `histogram_bounds`: `B+1` boundary values
//! splitting the non-MCV population into `B` buckets of equal row counts.
//! Range selectivities interpolate linearly within a bucket, exactly as
//! `ineq_histogram_selectivity` does. We reproduce that scheme over the
//! numeric image of values ([`crate::types::Value::numeric_image`]).

use serde::{Deserialize, Serialize};

/// An equi-depth histogram over the numeric image of a column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquiDepthHistogram {
    /// `bounds.len() == buckets + 1`; `bounds[0]` = min, last = max.
    bounds: Vec<f64>,
}

impl EquiDepthHistogram {
    /// Build from already-sorted, non-NULL sample values and a target
    /// bucket count. Returns `None` when there is nothing to summarise.
    pub fn from_sorted(sorted: &[f64], buckets: usize) -> Option<Self> {
        if sorted.is_empty() || buckets == 0 {
            return None;
        }
        let b = buckets.min(sorted.len());
        let mut bounds = Vec::with_capacity(b + 1);
        for i in 0..=b {
            // Index of the i-th quantile boundary.
            let pos = (i * (sorted.len() - 1)) / b;
            bounds.push(sorted[pos]);
        }
        // Collapse is fine: repeated bounds model heavy duplicates.
        Some(EquiDepthHistogram { bounds })
    }

    /// Build directly from known `(min, max)` assuming a uniform spread —
    /// used when statistics are synthesised rather than computed.
    pub fn uniform(min: f64, max: f64, buckets: usize) -> Self {
        let b = buckets.max(1);
        let bounds = (0..=b)
            .map(|i| min + (max - min) * (i as f64) / (b as f64))
            .collect();
        EquiDepthHistogram { bounds }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Smallest summarised value.
    pub fn min(&self) -> f64 {
        self.bounds[0]
    }

    /// Largest summarised value.
    pub fn max(&self) -> f64 {
        *self.bounds.last().unwrap()
    }

    /// The boundary values (length `buckets() + 1`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Estimated fraction of rows with value `< v` (strict), by linear
    /// interpolation inside the containing bucket.
    pub fn selectivity_lt(&self, v: f64) -> f64 {
        let n = self.buckets() as f64;
        if v <= self.min() {
            return 0.0;
        }
        if v > self.max() {
            return 1.0;
        }
        // Find the bucket containing v.
        let mut lo = 0usize;
        let mut hi = self.buckets();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.bounds[mid + 1] < v {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let (b_lo, b_hi) = (self.bounds[lo], self.bounds[lo + 1]);
        let frac_in_bucket = if b_hi > b_lo {
            ((v - b_lo) / (b_hi - b_lo)).clamp(0.0, 1.0)
        } else {
            0.5
        };
        ((lo as f64 + frac_in_bucket) / n).clamp(0.0, 1.0)
    }

    /// Estimated fraction of rows with `lo <= value <= hi`.
    pub fn selectivity_range(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let s_lo = lo.map_or(0.0, |v| self.selectivity_lt(v));
        let s_hi = hi.map_or(1.0, |v| {
            // `<= hi` ≈ `< hi` plus a sliver for equality; the sliver is
            // folded into eq-selectivity elsewhere, so `< next(hi)` is a
            // fine approximation at histogram resolution.
            self.selectivity_lt(v) + self.point_mass(v)
        });
        (s_hi - s_lo).clamp(0.0, 1.0)
    }

    /// Crude per-point mass used to make `<=` differ from `<` at bucket
    /// resolution: one bucket spread over its width.
    fn point_mass(&self, v: f64) -> f64 {
        if v < self.min() || v > self.max() {
            return 0.0;
        }
        let span = self.max() - self.min();
        if span <= 0.0 {
            return 1.0;
        }
        // One part in (10 × buckets) — small but non-zero.
        1.0 / (10.0 * self.buckets() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_0_100() -> EquiDepthHistogram {
        EquiDepthHistogram::uniform(0.0, 100.0, 10)
    }

    #[test]
    fn uniform_histogram_interpolates_linearly() {
        let h = uniform_0_100();
        assert!((h.selectivity_lt(50.0) - 0.5).abs() < 1e-9);
        assert!((h.selectivity_lt(25.0) - 0.25).abs() < 1e-9);
        assert_eq!(h.selectivity_lt(-5.0), 0.0);
        assert_eq!(h.selectivity_lt(500.0), 1.0);
    }

    #[test]
    fn from_sorted_handles_skew() {
        // 90% of the mass at small values.
        let mut vals: Vec<f64> = (0..900).map(|i| (i % 10) as f64).collect();
        vals.extend((0..100).map(|i| 100.0 + i as f64));
        vals.sort_by(f64::total_cmp);
        let h = EquiDepthHistogram::from_sorted(&vals, 10).unwrap();
        // value < 10 covers ~90% of rows
        let s = h.selectivity_lt(10.0);
        assert!(s > 0.8, "skew not captured: {s}");
    }

    #[test]
    fn from_sorted_empty_returns_none() {
        assert!(EquiDepthHistogram::from_sorted(&[], 10).is_none());
        assert!(EquiDepthHistogram::from_sorted(&[1.0], 0).is_none());
    }

    #[test]
    fn single_value_histogram() {
        let h = EquiDepthHistogram::from_sorted(&[5.0], 4).unwrap();
        assert_eq!(h.min(), 5.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.selectivity_lt(5.0), 0.0);
        assert_eq!(h.selectivity_lt(6.0), 1.0);
    }

    #[test]
    fn range_selectivity_is_monotone_and_bounded() {
        let h = uniform_0_100();
        let r1 = h.selectivity_range(Some(10.0), Some(20.0));
        let r2 = h.selectivity_range(Some(10.0), Some(60.0));
        assert!(r1 > 0.0 && r1 < r2 && r2 <= 1.0);
        let all = h.selectivity_range(None, None);
        assert!((all - 1.0).abs() < 1e-9);
    }

    #[test]
    fn range_with_open_ends() {
        let h = uniform_0_100();
        assert!((h.selectivity_range(Some(50.0), None) - 0.5).abs() < 1e-9);
        let below = h.selectivity_range(None, Some(50.0));
        assert!((0.5..0.52).contains(&below));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn lt_selectivity_is_monotone(mut vals in proptest::collection::vec(-1e6f64..1e6, 2..200), a in -1e6f64..1e6, b in -1e6f64..1e6) {
                vals.sort_by(f64::total_cmp);
                let h = EquiDepthHistogram::from_sorted(&vals, 16).unwrap();
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                prop_assert!(h.selectivity_lt(lo) <= h.selectivity_lt(hi) + 1e-12);
            }

            #[test]
            fn selectivities_stay_in_unit_interval(mut vals in proptest::collection::vec(-1e6f64..1e6, 1..100), probe in -2e6f64..2e6) {
                vals.sort_by(f64::total_cmp);
                let h = EquiDepthHistogram::from_sorted(&vals, 8).unwrap();
                let s = h.selectivity_lt(probe);
                prop_assert!((0.0..=1.0).contains(&s));
            }
        }
    }
}
