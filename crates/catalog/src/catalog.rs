//! The [`Catalog`]: schema + statistics + base physical design.

use crate::design::PhysicalDesign;
use crate::schema::{ColumnRef, Schema, TableId};
use crate::stats::{ColumnStats, TableStats};

/// Why a [`Catalog`] (or a statistics update) was rejected.
///
/// Statistics arrive from outside the system — an `ANALYZE` pipe, a
/// drift feed, an operator — so malformed input is a runtime condition,
/// not a bug: it must surface as an error the daemon can refuse, never
/// as a `NaN` that poisons every downstream f64 cost accumulation.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogError {
    /// `stats.len()` does not match the number of schema tables.
    TableCountMismatch {
        /// Tables in the schema.
        expected: usize,
        /// Table-stats entries provided.
        got: usize,
    },
    /// A table's column-stats vector does not align with its columns.
    ColumnCountMismatch {
        /// The misaligned table.
        table: TableId,
        /// Columns in the schema.
        expected: usize,
        /// Column-stats entries provided.
        got: usize,
    },
    /// A statistic that feeds cost arithmetic is NaN or infinite.
    NonFinite {
        /// The offending table.
        table: TableId,
        /// The offending column ordinal.
        column: u16,
        /// Which field was non-finite.
        field: &'static str,
    },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::TableCountMismatch { expected, got } => write!(
                f,
                "stats must be provided for every table (schema has {expected} tables, got {got})"
            ),
            CatalogError::ColumnCountMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "column stats must align with table {table} ({expected} columns, got {got})"
            ),
            CatalogError::NonFinite {
                table,
                column,
                field,
            } => write!(
                f,
                "non-finite statistic `{field}` for table {table} column {column}"
            ),
        }
    }
}

impl std::error::Error for CatalogError {}

/// Every float in `col` that feeds cost arithmetic must be finite.
fn check_column_finite(table: TableId, column: u16, col: &ColumnStats) -> Result<(), CatalogError> {
    let err = |field: &'static str| CatalogError::NonFinite {
        table,
        column,
        field,
    };
    let fields: [(&'static str, f64); 6] = [
        ("ndv", col.ndv),
        ("null_frac", col.null_frac),
        ("min", col.min),
        ("max", col.max),
        ("avg_width", col.avg_width),
        ("correlation", col.correlation),
    ];
    for (name, v) in fields {
        if !v.is_finite() {
            return Err(err(name));
        }
    }
    for (v, frac) in &col.mcv {
        if !v.is_finite() || !frac.is_finite() {
            return Err(err("mcv"));
        }
    }
    if let Some(h) = &col.histogram {
        if h.bounds().iter().any(|b| !b.is_finite()) {
            return Err(err("histogram"));
        }
    }
    Ok(())
}

/// Validate one table's stats block against its schema definition.
fn check_table_stats(
    schema: &Schema,
    table: TableId,
    stats: &TableStats,
) -> Result<(), CatalogError> {
    let expected = schema.table(table).columns.len();
    if stats.columns.len() != expected {
        return Err(CatalogError::ColumnCountMismatch {
            table,
            expected,
            got: stats.columns.len(),
        });
    }
    for (ordinal, col) in stats.columns.iter().enumerate() {
        check_column_finite(table, ordinal as u16, col)?;
    }
    Ok(())
}

/// Single source of truth for everything the optimizer and the advisors
/// need to know about the database.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// Logical schema.
    pub schema: Schema,
    /// Per-table statistics, aligned with table ids.
    pub stats: Vec<TableStats>,
    /// The *materialized* physical design (real indexes/partitions). The
    /// what-if layer overlays hypothetical designs on top of this.
    pub base_design: PhysicalDesign,
}

impl Catalog {
    /// Assemble a catalog; panics if the stats are misaligned or contain
    /// non-finite values. For input that arrives from outside the
    /// process (drift feeds, operator updates) use [`Self::try_new`],
    /// which returns the reason as a typed [`CatalogError`] instead.
    pub fn new(schema: Schema, stats: Vec<TableStats>) -> Self {
        match Self::try_new(schema, stats) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Assemble a catalog, rejecting misaligned stats and any NaN or
    /// infinite statistic with a typed error. This is the input edge
    /// that keeps poisoned floats out of the cost model: every
    /// selectivity, page estimate and matrix cell downstream assumes
    /// finite inputs.
    pub fn try_new(schema: Schema, stats: Vec<TableStats>) -> Result<Self, CatalogError> {
        if schema.len() != stats.len() {
            return Err(CatalogError::TableCountMismatch {
                expected: schema.len(),
                got: stats.len(),
            });
        }
        for t in schema.tables() {
            check_table_stats(&schema, t.id, &stats[t.id.0 as usize])?;
        }
        Ok(Catalog {
            schema,
            stats,
            base_design: PhysicalDesign::empty(),
        })
    }

    /// Replace one table's statistics (the mid-stream drift path),
    /// subject to the same alignment and finiteness validation as
    /// construction. On error the catalog is unchanged.
    pub fn update_table_stats(
        &mut self,
        table: TableId,
        stats: TableStats,
    ) -> Result<(), CatalogError> {
        let slot =
            self.stats
                .get_mut(table.0 as usize)
                .ok_or(CatalogError::TableCountMismatch {
                    expected: self.schema.len(),
                    got: table.0 as usize + 1,
                })?;
        check_table_stats(&self.schema, table, &stats)?;
        *slot = stats;
        Ok(())
    }

    /// Statistics of one table.
    pub fn table_stats(&self, table: TableId) -> &TableStats {
        &self.stats[table.0 as usize]
    }

    /// Statistics of one column.
    pub fn column_stats(&self, col: ColumnRef) -> &ColumnStats {
        self.table_stats(col.table).column(col.column)
    }

    /// Row count of one table.
    pub fn row_count(&self, table: TableId) -> u64 {
        self.table_stats(table).row_count
    }

    /// Total bytes of base-table heap storage (the "data size" against
    /// which storage budgets like "0.5× data" are expressed).
    pub fn data_bytes(&self) -> u64 {
        self.schema
            .tables()
            .map(|t| {
                crate::sizing::pages_to_bytes(crate::sizing::heap_pages(
                    self.stats[t.id.0 as usize].row_count,
                    t.row_byte_width(),
                ))
            })
            .sum()
    }

    /// Install the materialized design.
    pub fn set_base_design(&mut self, d: PhysicalDesign) {
        self.base_design = d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::types::DataType;

    fn tiny() -> Catalog {
        let schema = SchemaBuilder::new()
            .table("t")
            .column("a", DataType::Int)
            .column("b", DataType::Float)
            .build()
            .unwrap();
        let stats = vec![TableStats {
            row_count: 1000,
            columns: vec![
                ColumnStats::synthetic_key(1000, 4.0),
                ColumnStats::synthetic_uniform(0.0, 1.0, 100.0, 8.0),
            ],
        }];
        Catalog::new(schema, stats)
    }

    #[test]
    fn lookups_align() {
        let c = tiny();
        assert_eq!(c.row_count(TableId(0)), 1000);
        let col = c.schema.resolve("t", "b").unwrap();
        assert_eq!(c.column_stats(col).ndv, 100.0);
    }

    #[test]
    fn data_bytes_positive() {
        let c = tiny();
        assert!(c.data_bytes() >= crate::sizing::PAGE_SIZE);
    }

    #[test]
    #[should_panic(expected = "stats must be provided")]
    fn misaligned_stats_panic() {
        let schema = SchemaBuilder::new()
            .table("t")
            .column("a", DataType::Int)
            .build()
            .unwrap();
        Catalog::new(schema, vec![]);
    }

    #[test]
    fn non_finite_stats_are_rejected_with_a_typed_error() {
        let schema = SchemaBuilder::new()
            .table("t")
            .column("a", DataType::Int)
            .build()
            .unwrap();
        let poison = |mutate: fn(&mut ColumnStats)| {
            let mut col = ColumnStats::synthetic_key(1000, 4.0);
            mutate(&mut col);
            TableStats {
                row_count: 1000,
                columns: vec![col],
            }
        };
        for (field, stats) in [
            ("ndv", poison(|c| c.ndv = f64::NAN)),
            ("null_frac", poison(|c| c.null_frac = f64::INFINITY)),
            ("min", poison(|c| c.min = f64::NEG_INFINITY)),
            ("max", poison(|c| c.max = f64::NAN)),
            ("avg_width", poison(|c| c.avg_width = f64::NAN)),
            ("correlation", poison(|c| c.correlation = f64::NAN)),
            ("mcv", poison(|c| c.mcv = vec![(f64::NAN, 0.1)])),
        ] {
            match Catalog::try_new(schema.clone(), vec![stats]) {
                Err(CatalogError::NonFinite { field: got, .. }) => {
                    assert_eq!(got, field, "wrong field reported")
                }
                other => panic!("{field}: expected NonFinite, got {other:?}"),
            }
        }
    }

    #[test]
    fn stats_updates_validate_and_leave_catalog_unchanged_on_error() {
        let mut c = tiny();
        let before_ndv = c.column_stats(c.schema.resolve("t", "b").unwrap()).ndv;
        // Poisoned drift is refused...
        let mut bad = c.table_stats(TableId(0)).clone();
        bad.columns[1].ndv = f64::NAN;
        assert!(matches!(
            c.update_table_stats(TableId(0), bad),
            Err(CatalogError::NonFinite { .. })
        ));
        assert_eq!(
            c.column_stats(c.schema.resolve("t", "b").unwrap()).ndv,
            before_ndv,
            "a rejected update must not mutate the catalog"
        );
        // ...misaligned drift is refused...
        let mut short = c.table_stats(TableId(0)).clone();
        short.columns.pop();
        assert!(matches!(
            c.update_table_stats(TableId(0), short),
            Err(CatalogError::ColumnCountMismatch { .. })
        ));
        // ...and valid drift lands.
        let mut good = c.table_stats(TableId(0)).clone();
        good.row_count = 2000;
        assert!(c.update_table_stats(TableId(0), good).is_ok());
        assert_eq!(c.row_count(TableId(0)), 2000);
        // An out-of-range table id is an error, not a panic.
        assert!(c
            .update_table_stats(TableId(9), c.table_stats(TableId(0)).clone())
            .is_err());
    }
}
