//! The [`Catalog`]: schema + statistics + base physical design.

use crate::design::PhysicalDesign;
use crate::schema::{ColumnRef, Schema, TableId};
use crate::stats::{ColumnStats, TableStats};

/// Single source of truth for everything the optimizer and the advisors
/// need to know about the database.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// Logical schema.
    pub schema: Schema,
    /// Per-table statistics, aligned with table ids.
    pub stats: Vec<TableStats>,
    /// The *materialized* physical design (real indexes/partitions). The
    /// what-if layer overlays hypothetical designs on top of this.
    pub base_design: PhysicalDesign,
}

impl Catalog {
    /// Assemble a catalog; panics if `stats` is not aligned with the schema
    /// (that is a construction bug, not a runtime condition).
    pub fn new(schema: Schema, stats: Vec<TableStats>) -> Self {
        assert_eq!(
            schema.len(),
            stats.len(),
            "stats must be provided for every table"
        );
        for t in schema.tables() {
            assert_eq!(
                t.columns.len(),
                stats[t.id.0 as usize].columns.len(),
                "column stats must align with table {}",
                t.name
            );
        }
        Catalog {
            schema,
            stats,
            base_design: PhysicalDesign::empty(),
        }
    }

    /// Statistics of one table.
    pub fn table_stats(&self, table: TableId) -> &TableStats {
        &self.stats[table.0 as usize]
    }

    /// Statistics of one column.
    pub fn column_stats(&self, col: ColumnRef) -> &ColumnStats {
        self.table_stats(col.table).column(col.column)
    }

    /// Row count of one table.
    pub fn row_count(&self, table: TableId) -> u64 {
        self.table_stats(table).row_count
    }

    /// Total bytes of base-table heap storage (the "data size" against
    /// which storage budgets like "0.5× data" are expressed).
    pub fn data_bytes(&self) -> u64 {
        self.schema
            .tables()
            .map(|t| {
                crate::sizing::pages_to_bytes(crate::sizing::heap_pages(
                    self.stats[t.id.0 as usize].row_count,
                    t.row_byte_width(),
                ))
            })
            .sum()
    }

    /// Install the materialized design.
    pub fn set_base_design(&mut self, d: PhysicalDesign) {
        self.base_design = d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::types::DataType;

    fn tiny() -> Catalog {
        let schema = SchemaBuilder::new()
            .table("t")
            .column("a", DataType::Int)
            .column("b", DataType::Float)
            .build()
            .unwrap();
        let stats = vec![TableStats {
            row_count: 1000,
            columns: vec![
                ColumnStats::synthetic_key(1000, 4.0),
                ColumnStats::synthetic_uniform(0.0, 1.0, 100.0, 8.0),
            ],
        }];
        Catalog::new(schema, stats)
    }

    #[test]
    fn lookups_align() {
        let c = tiny();
        assert_eq!(c.row_count(TableId(0)), 1000);
        let col = c.schema.resolve("t", "b").unwrap();
        assert_eq!(c.column_stats(col).ndv, 100.0);
    }

    #[test]
    fn data_bytes_positive() {
        let c = tiny();
        assert!(c.data_bytes() >= crate::sizing::PAGE_SIZE);
    }

    #[test]
    #[should_panic(expected = "stats must be provided")]
    fn misaligned_stats_panic() {
        let schema = SchemaBuilder::new()
            .table("t")
            .column("a", DataType::Int)
            .build()
            .unwrap();
        Catalog::new(schema, vec![]);
    }
}
