//! Ready-made catalogs: an SDSS-like scientific schema (the dataset the
//! paper demonstrates on) and a TPC-H-like schema for broader workloads.
//!
//! Row counts are logical and scale with the `scale` parameter; statistics
//! are computed from a fixed-size generated sample and scaled up, the same
//! way `ANALYZE` samples a large table.

use crate::catalog::Catalog;
use crate::datagen::{analyze, generate, ColumnGen};
use crate::schema::{Schema, SchemaBuilder};
use crate::stats::TableStats;
use crate::types::DataType;

/// Rows generated per table to compute statistics from.
const SAMPLE_ROWS: u64 = 2000;

/// Build stats for one table from generators, fixing average widths from
/// the schema (the generators don't know declared types).
fn stats_for(
    schema: &Schema,
    table: &str,
    specs: &[ColumnGen],
    logical_rows: u64,
    seed: u64,
) -> TableStats {
    let data = generate(specs, SAMPLE_ROWS.min(logical_rows.max(1)), seed);
    let mut stats = analyze(&data, logical_rows);
    let t = schema.table_by_name(table).expect("table exists");
    for (i, c) in stats.columns.iter_mut().enumerate() {
        c.avg_width = f64::from(t.column(i as u16).dtype.byte_width());
    }
    stats
}

/// The SDSS-like catalog.
///
/// Four tables modelled on the Sloan Digital Sky Survey's `BestDR7`-era
/// layout, reduced to the columns the demo workload touches:
///
/// * `photoobj` — photometric objects (the big fact table): sky position
///   (`ra`, `dec`), magnitudes (`u..z`), object `type`, processing flags,
///   `run`/`camcol`/`field` observation coordinates;
/// * `specobj` — spectroscopic objects with redshift `z`, class, and a
///   foreign key `bestobjid` to `photoobj`;
/// * `neighbors` — object-pair proximity (self-join helper);
/// * `field` — per-field observation metadata.
///
/// `scale = 1.0` gives a 10M-row `photoobj`, matching the "large real-world
/// scientific dataset" framing at laptop-simulation scale.
pub fn sdss_catalog(scale: f64) -> Catalog {
    let scale = scale.max(1e-3);
    let photo_rows = (10_000_000.0 * scale) as u64;
    let spec_rows = (800_000.0 * scale) as u64;
    let neigh_rows = (30_000_000.0 * scale) as u64;
    let field_rows = (60_000.0 * scale).max(10.0) as u64;

    let schema = SchemaBuilder::new()
        .table("photoobj")
        .column("objid", DataType::BigInt)
        .column("ra", DataType::Float)
        .column("dec", DataType::Float)
        .column("type", DataType::Int)
        .column("u", DataType::Float)
        .column("g", DataType::Float)
        .column("r", DataType::Float)
        .column("i", DataType::Float)
        .column("z", DataType::Float)
        .column("run", DataType::Int)
        .column("camcol", DataType::Int)
        .column("field", DataType::Int)
        .column("flags", DataType::BigInt)
        .column("status", DataType::Int)
        .column("rowc", DataType::Float)
        .column("colc", DataType::Float)
        .table("specobj")
        .column("specobjid", DataType::BigInt)
        .column("bestobjid", DataType::BigInt)
        .column("class", DataType::Int)
        .column("zredshift", DataType::Float)
        .column("zerr", DataType::Float)
        .column("plate", DataType::Int)
        .column("mjd", DataType::Int)
        .column("fiberid", DataType::Int)
        .table("neighbors")
        .column("objid", DataType::BigInt)
        .column("neighborobjid", DataType::BigInt)
        .column("distance", DataType::Float)
        .column("ntype", DataType::Int)
        .table("field")
        .column("fieldid", DataType::BigInt)
        .column("run", DataType::Int)
        .column("camcol", DataType::Int)
        .column("fieldnum", DataType::Int)
        .column("quality", DataType::Int)
        .column("mjd", DataType::Int)
        .build()
        .expect("sdss schema is well formed");

    let photo = stats_for(
        &schema,
        "photoobj",
        &[
            ColumnGen::Sequential,                          // objid
            ColumnGen::UniformFloat { lo: 0.0, hi: 360.0 }, // ra
            ColumnGen::Normal {
                mean: 20.0,
                std: 25.0,
            }, // dec
            ColumnGen::Zipf { n: 6, s: 0.8 },               // type (skewed: star/galaxy)
            ColumnGen::Normal {
                mean: 21.0,
                std: 2.0,
            }, // u
            ColumnGen::Normal {
                mean: 20.0,
                std: 2.0,
            }, // g
            ColumnGen::Normal {
                mean: 19.5,
                std: 2.0,
            }, // r
            ColumnGen::Normal {
                mean: 19.0,
                std: 2.0,
            }, // i
            ColumnGen::Normal {
                mean: 18.8,
                std: 2.0,
            }, // z
            ColumnGen::UniformInt { lo: 94, hi: 8162 },     // run
            ColumnGen::UniformInt { lo: 1, hi: 6 },         // camcol
            ColumnGen::UniformInt { lo: 11, hi: 1000 },     // field
            ColumnGen::UniformInt { lo: 0, hi: 1 << 30 },   // flags
            ColumnGen::Zipf { n: 8, s: 1.0 },               // status
            ColumnGen::UniformFloat {
                lo: 0.0,
                hi: 1489.0,
            }, // rowc
            ColumnGen::UniformFloat {
                lo: 0.0,
                hi: 2048.0,
            }, // colc
        ],
        photo_rows,
        0xDEC0,
    );
    let spec = stats_for(
        &schema,
        "specobj",
        &[
            ColumnGen::Sequential, // specobjid
            ColumnGen::ForeignKey {
                parent_rows: photo_rows.max(1),
            }, // bestobjid
            ColumnGen::Zipf { n: 4, s: 0.9 }, // class
            ColumnGen::Normal {
                mean: 0.15,
                std: 0.12,
            }, // zredshift
            ColumnGen::UniformFloat { lo: 0.0, hi: 0.01 }, // zerr
            ColumnGen::UniformInt { lo: 266, hi: 2974 }, // plate
            ColumnGen::UniformInt {
                lo: 51578,
                hi: 54663,
            }, // mjd
            ColumnGen::UniformInt { lo: 1, hi: 640 }, // fiberid
        ],
        spec_rows,
        0xDEC1,
    );
    let neigh = stats_for(
        &schema,
        "neighbors",
        &[
            ColumnGen::ForeignKey {
                parent_rows: photo_rows.max(1),
            },
            ColumnGen::ForeignKey {
                parent_rows: photo_rows.max(1),
            },
            ColumnGen::UniformFloat { lo: 0.0, hi: 0.5 },
            ColumnGen::Zipf { n: 6, s: 0.8 },
        ],
        neigh_rows,
        0xDEC2,
    );
    let field = stats_for(
        &schema,
        "field",
        &[
            ColumnGen::Sequential,
            ColumnGen::UniformInt { lo: 94, hi: 8162 },
            ColumnGen::UniformInt { lo: 1, hi: 6 },
            ColumnGen::UniformInt { lo: 11, hi: 1000 },
            ColumnGen::Zipf { n: 3, s: 0.5 },
            ColumnGen::UniformInt {
                lo: 51075,
                hi: 54663,
            },
        ],
        field_rows,
        0xDEC3,
    );

    Catalog::new(schema, vec![photo, spec, neigh, field])
}

/// A TPC-H-like catalog (lineitem/orders/customer/part/supplier), used by
/// tests and the broader workload generators. `scale = 1.0` ≈ SF1 row
/// counts.
pub fn tpch_catalog(scale: f64) -> Catalog {
    let scale = scale.max(1e-3);
    let li_rows = (6_000_000.0 * scale) as u64;
    let ord_rows = (1_500_000.0 * scale) as u64;
    let cust_rows = (150_000.0 * scale).max(10.0) as u64;
    let part_rows = (200_000.0 * scale).max(10.0) as u64;
    let supp_rows = (10_000.0 * scale).max(10.0) as u64;

    let schema = SchemaBuilder::new()
        .table("lineitem")
        .column("l_orderkey", DataType::BigInt)
        .column("l_partkey", DataType::BigInt)
        .column("l_suppkey", DataType::BigInt)
        .column("l_linenumber", DataType::Int)
        .column("l_quantity", DataType::Float)
        .column("l_extendedprice", DataType::Float)
        .column("l_discount", DataType::Float)
        .column("l_tax", DataType::Float)
        .column("l_shipdate", DataType::Timestamp)
        .column("l_commitdate", DataType::Timestamp)
        .column("l_receiptdate", DataType::Timestamp)
        .column("l_returnflag", DataType::Int)
        .column("l_linestatus", DataType::Int)
        .table("orders")
        .column("o_orderkey", DataType::BigInt)
        .column("o_custkey", DataType::BigInt)
        .column("o_orderstatus", DataType::Int)
        .column("o_totalprice", DataType::Float)
        .column("o_orderdate", DataType::Timestamp)
        .column("o_orderpriority", DataType::Int)
        .column("o_shippriority", DataType::Int)
        .table("customer")
        .column("c_custkey", DataType::BigInt)
        .column("c_nationkey", DataType::Int)
        .column("c_acctbal", DataType::Float)
        .column("c_mktsegment", DataType::Int)
        .table("part")
        .column("p_partkey", DataType::BigInt)
        .column("p_brand", DataType::Int)
        .column("p_type", DataType::Int)
        .column("p_size", DataType::Int)
        .column("p_retailprice", DataType::Float)
        .table("supplier")
        .column("s_suppkey", DataType::BigInt)
        .column("s_nationkey", DataType::Int)
        .column("s_acctbal", DataType::Float)
        .build()
        .expect("tpch schema is well formed");

    let day0 = 8766i64; // days: domain stand-in for dates
    let li = stats_for(
        &schema,
        "lineitem",
        &[
            ColumnGen::ForeignKey {
                parent_rows: ord_rows.max(1),
            },
            ColumnGen::ForeignKey {
                parent_rows: part_rows.max(1),
            },
            ColumnGen::ForeignKey {
                parent_rows: supp_rows.max(1),
            },
            ColumnGen::UniformInt { lo: 1, hi: 7 },
            ColumnGen::UniformInt { lo: 1, hi: 50 },
            ColumnGen::UniformFloat {
                lo: 900.0,
                hi: 105_000.0,
            },
            ColumnGen::UniformFloat { lo: 0.0, hi: 0.10 },
            ColumnGen::UniformFloat { lo: 0.0, hi: 0.08 },
            ColumnGen::UniformInt {
                lo: day0,
                hi: day0 + 2526,
            },
            ColumnGen::UniformInt {
                lo: day0,
                hi: day0 + 2526,
            },
            ColumnGen::UniformInt {
                lo: day0,
                hi: day0 + 2526,
            },
            ColumnGen::Zipf { n: 3, s: 0.3 },
            ColumnGen::Zipf { n: 2, s: 0.2 },
        ],
        li_rows,
        0x7C01,
    );
    let ord = stats_for(
        &schema,
        "orders",
        &[
            ColumnGen::Sequential,
            ColumnGen::ForeignKey {
                parent_rows: cust_rows.max(1),
            },
            ColumnGen::Zipf { n: 3, s: 0.5 },
            ColumnGen::UniformFloat {
                lo: 850.0,
                hi: 560_000.0,
            },
            ColumnGen::UniformInt {
                lo: day0,
                hi: day0 + 2405,
            },
            ColumnGen::UniformInt { lo: 1, hi: 5 },
            ColumnGen::UniformInt { lo: 0, hi: 0 },
        ],
        ord_rows,
        0x7C02,
    );
    let cust = stats_for(
        &schema,
        "customer",
        &[
            ColumnGen::Sequential,
            ColumnGen::UniformInt { lo: 0, hi: 24 },
            ColumnGen::UniformFloat {
                lo: -999.0,
                hi: 9999.0,
            },
            ColumnGen::UniformInt { lo: 0, hi: 4 },
        ],
        cust_rows,
        0x7C03,
    );
    let part = stats_for(
        &schema,
        "part",
        &[
            ColumnGen::Sequential,
            ColumnGen::UniformInt { lo: 0, hi: 24 },
            ColumnGen::UniformInt { lo: 0, hi: 149 },
            ColumnGen::UniformInt { lo: 1, hi: 50 },
            ColumnGen::UniformFloat {
                lo: 900.0,
                hi: 2100.0,
            },
        ],
        part_rows,
        0x7C04,
    );
    let supp = stats_for(
        &schema,
        "supplier",
        &[
            ColumnGen::Sequential,
            ColumnGen::UniformInt { lo: 0, hi: 24 },
            ColumnGen::UniformFloat {
                lo: -999.0,
                hi: 9999.0,
            },
        ],
        supp_rows,
        0x7C05,
    );

    Catalog::new(schema, vec![li, ord, cust, part, supp])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdss_catalog_builds_and_has_expected_shape() {
        let c = sdss_catalog(0.01);
        assert_eq!(c.schema.len(), 4);
        assert_eq!(
            c.row_count(c.schema.table_by_name("photoobj").unwrap().id),
            100_000
        );
        let objid = c.schema.resolve("photoobj", "objid").unwrap();
        assert!(c.column_stats(objid).ndv > 50_000.0, "objid is a key");
    }

    #[test]
    fn sdss_type_column_is_skewed() {
        let c = sdss_catalog(0.01);
        let ty = c.schema.resolve("photoobj", "type").unwrap();
        assert!(!c.column_stats(ty).mcv.is_empty());
    }

    #[test]
    fn tpch_catalog_builds() {
        let c = tpch_catalog(0.01);
        assert_eq!(c.schema.len(), 5);
        let sd = c.schema.resolve("lineitem", "l_shipdate").unwrap();
        let s = c.column_stats(sd);
        assert!(s.max > s.min);
    }

    #[test]
    fn scale_changes_row_counts_not_schema() {
        let small = sdss_catalog(0.01);
        let big = sdss_catalog(0.1);
        let t = small.schema.table_by_name("photoobj").unwrap().id;
        assert_eq!(big.row_count(t), 10 * small.row_count(t));
        assert_eq!(small.schema.len(), big.schema.len());
    }

    #[test]
    fn data_bytes_scale_with_rows() {
        let small = sdss_catalog(0.01);
        let big = sdss_catalog(0.02);
        assert!(big.data_bytes() > small.data_bytes());
    }

    #[test]
    fn stats_widths_match_schema() {
        let c = sdss_catalog(0.01);
        let ra = c.schema.resolve("photoobj", "ra").unwrap();
        assert_eq!(c.column_stats(ra).avg_width, 8.0);
    }
}
