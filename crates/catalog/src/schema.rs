//! Logical schema: tables, columns, and stable identifiers.
//!
//! Identifiers are small copy types so that the optimizer, the INUM cache
//! and the solvers can key hash maps on them cheaply.

use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a table within a [`Schema`] (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Reference to a column: table plus 0-based column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Owning table.
    pub table: TableId,
    /// Column ordinal within the table.
    pub column: u16,
}

impl ColumnRef {
    /// Construct a reference from raw parts.
    pub fn new(table: TableId, column: u16) -> Self {
        ColumnRef { table, column }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.c{}", self.table, self.column)
    }
}

/// Definition of one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name, unique within its table.
    pub name: String,
    /// Data type.
    pub dtype: DataType,
    /// Whether NULLs may appear.
    pub nullable: bool,
}

/// Definition of one table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableDef {
    /// Identifier (position within the schema).
    pub id: TableId,
    /// Table name, unique within the schema.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    name_index: HashMap<String, u16>,
}

impl TableDef {
    /// Look up a column ordinal by name.
    pub fn column_by_name(&self, name: &str) -> Option<u16> {
        self.name_index.get(name).copied()
    }

    /// The column definition at `ordinal`, panicking on out-of-range — the
    /// schema is the authority, so out-of-range ordinals are logic errors.
    pub fn column(&self, ordinal: u16) -> &ColumnDef {
        &self.columns[ordinal as usize]
    }

    /// Number of columns.
    pub fn width(&self) -> u16 {
        self.columns.len() as u16
    }

    /// Sum of average byte widths of the given columns, i.e. the payload
    /// width of a projection or vertical fragment.
    pub fn byte_width_of(&self, columns: &[u16]) -> u32 {
        columns
            .iter()
            .map(|&c| self.columns[c as usize].dtype.byte_width())
            .sum()
    }

    /// Payload width of the full row.
    pub fn row_byte_width(&self) -> u32 {
        self.columns.iter().map(|c| c.dtype.byte_width()).sum()
    }
}

/// A complete logical schema.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schema {
    tables: Vec<TableDef>,
    by_name: HashMap<String, TableId>,
}

impl Schema {
    /// Iterate over all tables in id order.
    pub fn tables(&self) -> impl Iterator<Item = &TableDef> {
        self.tables.iter()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the schema holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The table with the given id.
    // analyzer:allow(panic-freedom): TableId values originate from this
    // schema's own tables/by_name maps, never from external input; an
    // out-of-range id is a construction bug the panic should surface.
    pub fn table(&self, id: TableId) -> &TableDef {
        &self.tables[id.0 as usize]
    }

    /// Look up a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<&TableDef> {
        self.by_name.get(name).map(|id| self.table(*id))
    }

    /// Resolve `table.column` names into a [`ColumnRef`].
    pub fn resolve(&self, table: &str, column: &str) -> Option<ColumnRef> {
        let t = self.table_by_name(table)?;
        let c = t.column_by_name(column)?;
        Some(ColumnRef::new(t.id, c))
    }

    /// Resolve a bare column name by scanning all tables; `None` if the
    /// name is absent or ambiguous. Mirrors SQL unqualified-name rules.
    pub fn resolve_unqualified(&self, column: &str) -> Option<ColumnRef> {
        let mut found = None;
        for t in &self.tables {
            if let Some(c) = t.column_by_name(column) {
                if found.is_some() {
                    return None; // ambiguous
                }
                found = Some(ColumnRef::new(t.id, c));
            }
        }
        found
    }

    /// Human-readable name of a column reference.
    pub fn column_name(&self, c: ColumnRef) -> String {
        let t = self.table(c.table);
        format!("{}.{}", t.name, t.column(c.column).name)
    }
}

/// Errors raised while building a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Two tables with the same name.
    DuplicateTable(String),
    /// Two columns with the same name in one table.
    DuplicateColumn {
        /// The table involved.
        table: String,
        /// The repeated column name.
        column: String,
    },
    /// A table with no columns.
    EmptyTable(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateTable(t) => write!(f, "duplicate table name {t:?}"),
            SchemaError::DuplicateColumn { table, column } => {
                write!(f, "duplicate column {column:?} in table {table:?}")
            }
            SchemaError::EmptyTable(t) => write!(f, "table {t:?} has no columns"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Fluent builder for [`Schema`].
///
/// ```
/// use pgdesign_catalog::schema::SchemaBuilder;
/// use pgdesign_catalog::types::DataType;
///
/// let schema = SchemaBuilder::new()
///     .table("photoobj")
///     .column("objid", DataType::BigInt)
///     .column("ra", DataType::Float)
///     .column("dec", DataType::Float)
///     .table("specobj")
///     .column("specobjid", DataType::BigInt)
///     .column("bestobjid", DataType::BigInt)
///     .build()
///     .unwrap();
/// assert_eq!(schema.len(), 2);
/// assert!(schema.resolve("photoobj", "ra").is_some());
/// ```
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    tables: Vec<(String, Vec<ColumnDef>)>,
}

impl SchemaBuilder {
    /// Start an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a new table; subsequent `column` calls attach to it.
    pub fn table(mut self, name: &str) -> Self {
        self.tables.push((name.to_string(), Vec::new()));
        self
    }

    /// Add a non-nullable column to the current table.
    pub fn column(self, name: &str, dtype: DataType) -> Self {
        self.column_full(name, dtype, false)
    }

    /// Add a nullable column to the current table.
    pub fn nullable_column(self, name: &str, dtype: DataType) -> Self {
        self.column_full(name, dtype, true)
    }

    fn column_full(mut self, name: &str, dtype: DataType, nullable: bool) -> Self {
        let (_, cols) = self
            .tables
            .last_mut()
            .expect("column() called before table()");
        cols.push(ColumnDef {
            name: name.to_string(),
            dtype,
            nullable,
        });
        self
    }

    /// Validate and produce the immutable [`Schema`].
    pub fn build(self) -> Result<Schema, SchemaError> {
        let mut schema = Schema::default();
        for (name, columns) in self.tables {
            if columns.is_empty() {
                return Err(SchemaError::EmptyTable(name));
            }
            if schema.by_name.contains_key(&name) {
                return Err(SchemaError::DuplicateTable(name));
            }
            let id = TableId(schema.tables.len() as u32);
            let mut name_index = HashMap::with_capacity(columns.len());
            for (i, c) in columns.iter().enumerate() {
                if name_index.insert(c.name.clone(), i as u16).is_some() {
                    return Err(SchemaError::DuplicateColumn {
                        table: name,
                        column: c.name.clone(),
                    });
                }
            }
            schema.by_name.insert(name.clone(), id);
            schema.tables.push(TableDef {
                id,
                name,
                columns,
                name_index,
            });
        }
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Schema {
        SchemaBuilder::new()
            .table("t1")
            .column("a", DataType::Int)
            .column("b", DataType::Float)
            .table("t2")
            .column("a", DataType::BigInt)
            .nullable_column("z", DataType::Text { avg_len: 10 })
            .build()
            .unwrap()
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let s = demo();
        assert_eq!(s.table_by_name("t1").unwrap().id, TableId(0));
        assert_eq!(s.table_by_name("t2").unwrap().id, TableId(1));
    }

    #[test]
    fn resolve_qualified_and_unqualified() {
        let s = demo();
        let b = s.resolve("t1", "b").unwrap();
        assert_eq!(b, ColumnRef::new(TableId(0), 1));
        // "b" is unique across tables, "a" is ambiguous.
        assert!(s.resolve_unqualified("b").is_some());
        assert!(s.resolve_unqualified("a").is_none());
        assert!(s.resolve_unqualified("nope").is_none());
    }

    #[test]
    fn duplicate_table_rejected() {
        let err = SchemaBuilder::new()
            .table("t")
            .column("a", DataType::Int)
            .table("t")
            .column("a", DataType::Int)
            .build()
            .unwrap_err();
        assert_eq!(err, SchemaError::DuplicateTable("t".into()));
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = SchemaBuilder::new()
            .table("t")
            .column("a", DataType::Int)
            .column("a", DataType::Int)
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateColumn { .. }));
    }

    #[test]
    fn empty_table_rejected() {
        let err = SchemaBuilder::new().table("t").build().unwrap_err();
        assert_eq!(err, SchemaError::EmptyTable("t".into()));
    }

    #[test]
    fn byte_widths_accumulate() {
        let s = demo();
        let t2 = s.table_by_name("t2").unwrap();
        assert_eq!(t2.row_byte_width(), 8 + 11);
        assert_eq!(t2.byte_width_of(&[0]), 8);
    }

    #[test]
    fn column_name_formats() {
        let s = demo();
        let c = s.resolve("t2", "z").unwrap();
        assert_eq!(s.column_name(c), "t2.z");
    }
}
