//! Table and column statistics, the `pg_statistic` analogue.
//!
//! Statistics are either computed from generated data
//! ([`crate::datagen::analyze`]) or synthesised directly for large logical
//! row counts ([`ColumnStats::synthetic_uniform`] and friends) — mirroring
//! how the paper's tool piggybacks on the DBMS's `ANALYZE` output.

use crate::histogram::EquiDepthHistogram;
use serde::{Deserialize, Serialize};

/// Statistics for one column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Number of distinct non-NULL values.
    pub ndv: f64,
    /// Fraction of rows that are NULL.
    pub null_frac: f64,
    /// Minimum numeric image among non-NULL values.
    pub min: f64,
    /// Maximum numeric image among non-NULL values.
    pub max: f64,
    /// Equi-depth histogram over non-MCV, non-NULL values.
    pub histogram: Option<EquiDepthHistogram>,
    /// Most common values with their frequencies (fraction of all rows).
    pub mcv: Vec<(f64, f64)>,
    /// Average byte width of stored values (may differ from the type's
    /// nominal width for variable-length data).
    pub avg_width: f64,
    /// Physical/logical order correlation in `[-1, 1]`; `1.0` means the
    /// column is stored in sorted order (clustered), `0.0` random.
    /// Drives the fraction of random vs sequential page fetches in index
    /// scans, like `pg_stats.correlation`.
    pub correlation: f64,
}

impl ColumnStats {
    /// Uniform synthetic stats on the integer domain `[min, max]`.
    pub fn synthetic_uniform(min: f64, max: f64, ndv: f64, avg_width: f64) -> Self {
        ColumnStats {
            ndv: ndv.max(1.0),
            null_frac: 0.0,
            min,
            max,
            histogram: Some(EquiDepthHistogram::uniform(min, max, 100)),
            mcv: Vec::new(),
            avg_width,
            correlation: 0.0,
        }
    }

    /// Synthetic stats for a key column: distinct, clustered, uniform.
    pub fn synthetic_key(rows: u64, avg_width: f64) -> Self {
        let mut s = Self::synthetic_uniform(0.0, rows.max(1) as f64 - 1.0, rows as f64, avg_width);
        s.correlation = 1.0;
        s
    }

    /// Synthetic stats for a categorical column with `k` equally likely
    /// categories.
    pub fn synthetic_categorical(k: u32, avg_width: f64) -> Self {
        let k = k.max(1);
        ColumnStats {
            ndv: k as f64,
            null_frac: 0.0,
            min: 0.0,
            max: (k - 1) as f64,
            histogram: Some(EquiDepthHistogram::uniform(0.0, (k - 1) as f64, k as usize)),
            mcv: (0..k.min(10)).map(|i| (i as f64, 1.0 / k as f64)).collect(),
            avg_width,
            correlation: 0.0,
        }
    }

    /// Estimated selectivity of `column = v`.
    ///
    /// Follows PostgreSQL's `eqsel`: exact frequency for MCVs, otherwise
    /// the residual mass divided by the residual distinct count.
    pub fn eq_selectivity(&self, v: f64) -> f64 {
        if let Some((_, f)) = self
            .mcv
            .iter()
            .find(|(val, _)| (val - v).abs() < f64::EPSILON.max(v.abs() * 1e-12))
        {
            return *f;
        }
        let mcv_mass: f64 = self.mcv.iter().map(|(_, f)| f).sum();
        let residual_ndv = (self.ndv - self.mcv.len() as f64).max(1.0);
        let residual_mass = (1.0 - self.null_frac - mcv_mass).max(0.0);
        (residual_mass / residual_ndv).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of a (closed) range predicate over the column.
    pub fn range_selectivity(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let base = match &self.histogram {
            Some(h) => h.selectivity_range(lo, hi),
            None => {
                // Fall back to uniform interpolation on [min, max].
                let span = (self.max - self.min).max(f64::EPSILON);
                let l = lo.unwrap_or(self.min).clamp(self.min, self.max);
                let h = hi.unwrap_or(self.max).clamp(self.min, self.max);
                ((h - l) / span).clamp(0.0, 1.0)
            }
        };
        // Add MCV mass that falls inside the range (histogram excludes it
        // only approximately in our construction, so blend conservatively).
        (base * (1.0 - self.null_frac)).clamp(0.0, 1.0)
    }

    /// Selectivity of `IS NULL`.
    pub fn null_selectivity(&self) -> f64 {
        self.null_frac
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableStats {
    /// Logical row count (may far exceed any generated sample).
    pub row_count: u64,
    /// Per-column statistics, aligned with the table's column ordinals.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Statistics for the column at `ordinal`.
    pub fn column(&self, ordinal: u16) -> &ColumnStats {
        &self.columns[ordinal as usize]
    }

    /// Joint number of distinct values over a set of columns, assuming
    /// independence but capped by the row count (the standard estimate).
    pub fn joint_ndv(&self, ordinals: &[u16]) -> f64 {
        let prod: f64 = ordinals
            .iter()
            .map(|&c| self.columns[c as usize].ndv.max(1.0))
            .product();
        prod.min(self.row_count as f64).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_selectivity_uses_mcv_when_available() {
        let mut s = ColumnStats::synthetic_uniform(0.0, 99.0, 100.0, 4.0);
        s.mcv = vec![(7.0, 0.30)];
        assert!((s.eq_selectivity(7.0) - 0.30).abs() < 1e-12);
        // Non-MCV: residual mass 0.7 over 99 residual values.
        let resid = s.eq_selectivity(8.0);
        assert!((resid - 0.7 / 99.0).abs() < 1e-9);
    }

    #[test]
    fn eq_selectivity_without_mcv_is_one_over_ndv() {
        let s = ColumnStats::synthetic_uniform(0.0, 999.0, 1000.0, 4.0);
        assert!((s.eq_selectivity(123.0) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn range_selectivity_uniform() {
        let s = ColumnStats::synthetic_uniform(0.0, 100.0, 100.0, 4.0);
        let sel = s.range_selectivity(Some(25.0), Some(75.0));
        assert!((sel - 0.5).abs() < 0.02, "sel = {sel}");
    }

    #[test]
    fn range_selectivity_respects_null_fraction() {
        let mut s = ColumnStats::synthetic_uniform(0.0, 100.0, 100.0, 4.0);
        s.null_frac = 0.5;
        let sel = s.range_selectivity(None, None);
        assert!((sel - 0.5).abs() < 1e-9);
    }

    #[test]
    fn key_stats_are_clustered_and_distinct() {
        let s = ColumnStats::synthetic_key(10_000, 8.0);
        assert_eq!(s.correlation, 1.0);
        assert!((s.ndv - 10_000.0).abs() < 1e-9);
        assert!((s.eq_selectivity(42.0) - 1e-4).abs() < 1e-8);
    }

    #[test]
    fn categorical_stats_spread_mass_evenly() {
        let s = ColumnStats::synthetic_categorical(4, 1.0);
        assert!((s.eq_selectivity(2.0) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn joint_ndv_caps_at_row_count() {
        let t = TableStats {
            row_count: 1000,
            columns: vec![
                ColumnStats::synthetic_uniform(0.0, 99.0, 100.0, 4.0),
                ColumnStats::synthetic_uniform(0.0, 99.0, 100.0, 4.0),
            ],
        };
        assert_eq!(t.joint_ndv(&[0]), 100.0);
        assert_eq!(t.joint_ndv(&[0, 1]), 1000.0); // 100*100 capped at rows
    }
}
