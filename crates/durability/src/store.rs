//! Storage abstraction for durable session state.
//!
//! [`DurableStore`] models a small flat directory of named files with the
//! three operations recovery correctness depends on: atomic whole-file
//! replacement (write-temp / fsync / rename-into-place), append, and fsync.
//! [`FsStore`] is the real filesystem implementation; [`MemStore`] is a
//! deterministic in-memory double with injectable failpoints (short
//! writes, fsync failures, crash-after-N-bytes) and an explicit
//! power-cut/restart cycle, so every recovery path is exercised by test
//! rather than by argument.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::PathBuf;

/// A named-file store with the durability primitives the snapshot/log
/// layer needs. All methods take `&mut self`: the fault-injecting test
/// implementation mutates internal failpoint state on every call.
pub trait DurableStore {
    /// Full contents of `name`, or `None` if it does not exist.
    fn read(&mut self, name: &str) -> io::Result<Option<Vec<u8>>>;

    /// Atomically replace `name` with `bytes`: on return the file holds
    /// either the complete old contents or the complete new contents,
    /// never a prefix. Implementations write a temp file, fsync it, and
    /// rename into place.
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Append `bytes` to `name`, creating it if missing. Not durable
    /// until [`DurableStore::sync`] returns.
    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// fsync `name`: all previously appended bytes survive a crash.
    fn sync(&mut self, name: &str) -> io::Result<()>;

    /// Delete `name` (idempotent: missing files are not an error).
    fn remove(&mut self, name: &str) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// Filesystem store
// ---------------------------------------------------------------------------

/// [`DurableStore`] backed by a real directory.
pub struct FsStore {
    dir: PathBuf,
}

impl FsStore {
    /// Open (creating if needed) the directory that will hold the files.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(FsStore { dir })
    }

    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Best-effort fsync of the directory itself so renames are durable.
    fn sync_dir(&self) {
        if let Ok(d) = fs::File::open(&self.dir) {
            // analyzer:allow(error-discipline): directory fsync is advisory
            // hardening on top of the file's own sync; a failure here does
            // not hole the log — replay re-verifies every record checksum.
            let _ = d.sync_all();
        }
    }
}

impl DurableStore for FsStore {
    fn read(&mut self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path(name))?;
        self.sync_dir();
        Ok(())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(bytes)
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        // fsync applies to the file, not to a particular handle's writes,
        // so a fresh handle flushes everything appended so far.
        fs::OpenOptions::new()
            .append(true)
            .open(self.path(name))?
            .sync_all()
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        match fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-injecting in-memory store
// ---------------------------------------------------------------------------

/// A failpoint armed on a [`MemStore`]. Each fires deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Failpoint {
    /// Every subsequent `sync` fails; appended bytes stay in the volatile
    /// tail and are lost at the next power cut.
    FsyncError,
    /// The next `times` syncs fail, then the store recovers on its own —
    /// the transient-I/O shape (EINTR, a momentarily full device) that
    /// bounded retry is supposed to ride out.
    TransientFsync {
        /// How many more syncs fail before the store heals.
        times: usize,
    },
    /// The next `append` writes only the first `keep` bytes of its
    /// payload, then the store behaves as crashed (all later ops error).
    ShortWrite { keep: usize },
    /// After `n` more appended bytes (across appends), the store crashes
    /// mid-write: the partial prefix lands in the volatile tail and every
    /// later operation errors until [`MemStore::power_cut`].
    CrashAfterBytes { n: usize },
}

#[derive(Default, Clone)]
struct MemFile {
    /// Bytes guaranteed durable (survive a power cut).
    synced: Vec<u8>,
    /// Bytes appended but not yet fsync'd; a power cut keeps an arbitrary
    /// prefix of these (the torn tail).
    tail: Vec<u8>,
}

/// Deterministic in-memory [`DurableStore`] with failpoints and an
/// explicit crash/restart cycle.
#[derive(Default)]
pub struct MemStore {
    files: BTreeMap<String, MemFile>,
    failpoint: Option<Failpoint>,
    crashed: bool,
    appended_since_arm: usize,
}

impl MemStore {
    pub fn new() -> Self {
        MemStore::default()
    }

    /// Arm a failpoint; replaces any previously armed one.
    pub fn arm(&mut self, f: Failpoint) {
        self.failpoint = Some(f);
        self.appended_since_arm = 0;
    }

    /// Simulate kill -9 followed by restart. Un-fsync'd tails are
    /// truncated; `keep_unsynced` bytes of each file's volatile tail are
    /// allowed to have reached disk anyway (page-cache flush order is not
    /// ours to choose), which is how a torn trailing record is produced.
    /// Clears the crashed flag and any armed failpoint: the store is
    /// usable again, as a restarted process would find it.
    pub fn power_cut(&mut self, keep_unsynced: usize) {
        for file in self.files.values_mut() {
            let keep = keep_unsynced.min(file.tail.len());
            file.synced
                .extend_from_slice(file.tail.get(..keep).unwrap_or_default());
            file.tail.clear();
        }
        self.failpoint = None;
        self.crashed = false;
        self.appended_since_arm = 0;
    }

    /// Flip every bit of one byte of `name`'s durable contents — the
    /// flipped-byte corruption the per-record CRC must catch.
    pub fn corrupt(&mut self, name: &str, offset: usize) {
        if let Some(file) = self.files.get_mut(name) {
            if let Some(byte) = file.synced.get_mut(offset) {
                *byte ^= 0xFF;
            }
        }
    }

    /// Durable length of `name` (what a restart would see), for tests.
    pub fn durable_len(&self, name: &str) -> usize {
        self.files.get(name).map_or(0, |f| f.synced.len())
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.crashed {
            Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected crash: store is down until power_cut()",
            ))
        } else {
            Ok(())
        }
    }
}

fn whole(file: &MemFile) -> Vec<u8> {
    let mut v = file.synced.clone();
    v.extend_from_slice(&file.tail);
    v
}

impl DurableStore for MemStore {
    fn read(&mut self, name: &str) -> io::Result<Option<Vec<u8>>> {
        self.check_alive()?;
        Ok(self.files.get(name).map(whole))
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.check_alive()?;
        // Rename-into-place is all-or-nothing: a short write hits the temp
        // file and the destination keeps its old contents.
        if let Some(Failpoint::ShortWrite { .. }) = self.failpoint {
            self.failpoint = None;
            self.crashed = true;
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected short write during atomic replace",
            ));
        }
        self.files.insert(
            name.to_string(),
            MemFile {
                synced: bytes.to_vec(),
                tail: Vec::new(),
            },
        );
        Ok(())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.check_alive()?;
        let mut written = bytes.len();
        let mut fail: Option<io::Error> = None;
        match self.failpoint {
            Some(Failpoint::ShortWrite { keep }) => {
                written = keep.min(bytes.len());
                self.failpoint = None;
                self.crashed = true;
                fail = Some(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "injected short write",
                ));
            }
            Some(Failpoint::CrashAfterBytes { n }) if self.appended_since_arm + bytes.len() > n => {
                written = n.saturating_sub(self.appended_since_arm);
                self.failpoint = None;
                self.crashed = true;
                fail = Some(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected crash mid-append",
                ));
            }
            _ => {}
        }
        self.appended_since_arm += written;
        let file = self.files.entry(name.to_string()).or_default();
        file.tail
            .extend_from_slice(bytes.get(..written).unwrap_or_default());
        match fail {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        self.check_alive()?;
        if let Some(Failpoint::FsyncError) = self.failpoint {
            return Err(io::Error::other("injected fsync failure"));
        }
        if let Some(Failpoint::TransientFsync { times }) = self.failpoint {
            self.failpoint = if times > 1 {
                Some(Failpoint::TransientFsync { times: times - 1 })
            } else {
                None
            };
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected transient fsync failure",
            ));
        }
        if let Some(file) = self.files.get_mut(name) {
            let tail = std::mem::take(&mut file.tail);
            file.synced.extend_from_slice(&tail);
        }
        Ok(())
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        self.check_alive()?;
        self.files.remove(name);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Shared handle over one in-memory "disk"
// ---------------------------------------------------------------------------

/// A cloneable handle onto one shared [`MemStore`]: every clone reads and
/// writes the same underlying bytes. Tests hand one handle to a session,
/// drop the session (the "kill -9"), inject a [`MemStore::power_cut`] or
/// [`MemStore::corrupt`] through [`SharedMemStore::lock`], and reopen on
/// another handle — a process restart over one filesystem.
#[derive(Clone, Default)]
pub struct SharedMemStore(std::sync::Arc<std::sync::Mutex<MemStore>>);

impl SharedMemStore {
    pub fn new() -> Self {
        SharedMemStore::default()
    }

    /// Direct access to the underlying store for failpoint arming,
    /// power cuts, and corruption injection.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, MemStore> {
        // A poisoned mutex only means another handle panicked mid-access;
        // the bytes themselves are still the test's single source of truth.
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl DurableStore for SharedMemStore {
    fn read(&mut self, name: &str) -> io::Result<Option<Vec<u8>>> {
        self.lock().read(name)
    }
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.lock().write_atomic(name, bytes)
    }
    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.lock().append(name, bytes)
    }
    fn sync(&mut self, name: &str) -> io::Result<()> {
        self.lock().sync(name)
    }
    fn remove(&mut self, name: &str) -> io::Result<()> {
        self.lock().remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_power_cut_drops_unsynced_tail() {
        let mut s = MemStore::new();
        s.append("f", b"durable").unwrap();
        s.sync("f").unwrap();
        s.append("f", b"volatile").unwrap();
        s.power_cut(0);
        assert_eq!(s.read("f").unwrap().unwrap(), b"durable");
    }

    #[test]
    fn mem_store_power_cut_can_leave_a_torn_prefix() {
        let mut s = MemStore::new();
        s.append("f", b"durable").unwrap();
        s.sync("f").unwrap();
        s.append("f", b"volatile").unwrap();
        s.power_cut(3);
        assert_eq!(s.read("f").unwrap().unwrap(), b"durablevol");
    }

    #[test]
    fn crash_after_bytes_leaves_partial_append_and_downs_the_store() {
        let mut s = MemStore::new();
        s.arm(Failpoint::CrashAfterBytes { n: 4 });
        assert!(s.append("f", b"0123456789").is_err());
        assert!(s.read("f").is_err(), "store must be down after crash");
        s.power_cut(usize::MAX);
        assert_eq!(s.read("f").unwrap().unwrap(), b"0123");
    }

    #[test]
    fn transient_fsync_heals_after_n_failures() {
        let mut s = MemStore::new();
        s.append("f", b"abc").unwrap();
        s.arm(Failpoint::TransientFsync { times: 2 });
        assert!(s.sync("f").is_err());
        assert!(s.sync("f").is_err());
        s.sync("f").unwrap();
        s.power_cut(0);
        assert_eq!(s.read("f").unwrap().unwrap(), b"abc");
    }

    #[test]
    fn fsync_failure_keeps_bytes_volatile() {
        let mut s = MemStore::new();
        s.append("f", b"abc").unwrap();
        s.arm(Failpoint::FsyncError);
        assert!(s.sync("f").is_err());
        s.power_cut(0);
        assert_eq!(s.read("f").unwrap().unwrap(), b"");
    }

    #[test]
    fn short_write_fails_atomic_replace_without_touching_destination() {
        let mut s = MemStore::new();
        s.write_atomic("f", b"old").unwrap();
        s.arm(Failpoint::ShortWrite { keep: 1 });
        assert!(s.write_atomic("f", b"new contents").is_err());
        s.power_cut(0);
        assert_eq!(s.read("f").unwrap().unwrap(), b"old");
    }

    #[test]
    fn fs_store_round_trips_through_a_real_directory() {
        let dir = std::env::temp_dir().join(format!("pgds-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut s = FsStore::open(&dir).unwrap();
        assert_eq!(s.read("x").unwrap(), None);
        s.write_atomic("x", b"snapshot").unwrap();
        s.append("y", b"rec1").unwrap();
        s.append("y", b"rec2").unwrap();
        s.sync("y").unwrap();
        assert_eq!(s.read("x").unwrap().unwrap(), b"snapshot");
        assert_eq!(s.read("y").unwrap().unwrap(), b"rec1rec2");
        s.remove("x").unwrap();
        s.remove("x").unwrap(); // idempotent
        assert_eq!(s.read("x").unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
