//! On-disk file formats: the checksummed snapshot (`.pgds`) and the
//! append-only edit log (`.pgdl`).
//!
//! Both files are built from one framing unit, the *record*:
//!
//! ```text
//! [len: u32 LE][crc32(payload): u32 LE][payload: len bytes]
//! ```
//!
//! Snapshot file (written atomically, so it is either entirely present or
//! entirely absent — corruption here means bit rot, not a torn write):
//!
//! ```text
//! [magic "PGDS"][format version: u32][body crc32: u32][records...]
//! ```
//!
//! Edit log (appended to, fsync'd per record, so the tail may be torn by
//! a crash between append and fsync):
//!
//! ```text
//! [magic "PGDL"][format version: u32][snapshot crc32: u32][records...]
//! ```
//!
//! The log header embeds the body CRC of the snapshot it extends: edit
//! records are positional (candidate/query slot ids), so replaying them
//! against any other base state would be wrong. A log that does not match
//! the snapshot on disk is discarded, never replayed.

use crate::codec::{ByteReader, CodecError};
use crate::crc::crc32;
use crate::store::DurableStore;
use std::io;

/// Bumped whenever the record payload layout changes incompatibly.
/// A reader that sees a different version falls back to a cold build.
pub const FORMAT_VERSION: u32 = 1;

const SNAPSHOT_MAGIC: u32 = u32::from_le_bytes(*b"PGDS");
const LOG_MAGIC: u32 = u32::from_le_bytes(*b"PGDL");
const FILE_HEADER_LEN: usize = 12; // magic + version + crc

/// Little-endian `u32` at `pos`, or `None` past the end — the panic-free
/// primitive the record scanner is built on.
fn read_u32_at(buf: &[u8], pos: usize) -> Option<u32> {
    let bytes: [u8; 4] = buf.get(pos..pos.checked_add(4)?)?.try_into().ok()?;
    Some(u32::from_le_bytes(bytes))
}

/// Frame one record (length + CRC + payload) onto `out`.
pub fn frame_record(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Result of scanning a record stream that may end in a torn tail.
#[derive(Debug, Default)]
pub struct RecordScan {
    /// Complete, CRC-verified records in order.
    pub records: Vec<Vec<u8>>,
    /// Record frames abandoned at the tail (a partial or corrupt frame
    /// counts as one: past the first bad frame nothing can be trusted).
    pub dropped_records: u64,
    /// Bytes abandoned at the tail.
    pub dropped_bytes: u64,
}

/// Scan records until the end of input or the first frame whose length or
/// CRC does not check out; everything from that point on is dropped. This
/// is the WAL discipline: truncate at the last good record.
pub fn scan_records(buf: &[u8]) -> RecordScan {
    let mut scan = RecordScan::default();
    let mut pos = 0;
    while pos < buf.len() {
        // A frame header or payload running past the end reads as `None`:
        // that is the torn tail.
        let (Some(len), Some(crc)) = (read_u32_at(buf, pos), read_u32_at(buf, pos + 4)) else {
            break; // partial frame header
        };
        let len = len as usize;
        let Some(payload) = buf.get(pos + 8..pos + 8 + len) else {
            break; // partial payload
        };
        if crc32(payload) != crc {
            break; // corrupt payload (torn rewrite or bit rot)
        }
        scan.records.push(payload.to_vec());
        pos += 8 + len;
    }
    if pos < buf.len() {
        scan.dropped_records = 1;
        scan.dropped_bytes = (buf.len() - pos) as u64;
    }
    scan
}

/// Strict variant for the snapshot body, where a torn tail is impossible
/// (atomic replace) and any bad frame means the file is corrupt.
pub fn read_records_strict(buf: &[u8]) -> Result<Vec<Vec<u8>>, CodecError> {
    let scan = scan_records(buf);
    if scan.dropped_bytes > 0 {
        return Err(CodecError {
            what: "corrupt record in snapshot body",
            at: buf.len() - scan.dropped_bytes as usize,
        });
    }
    Ok(scan.records)
}

// ---------------------------------------------------------------------------
// Snapshot file
// ---------------------------------------------------------------------------

/// Why a snapshot could not be used. Every variant is a *graceful* path:
/// the caller falls back to a cold build with this as the logged reason.
#[derive(Debug)]
pub enum SnapshotFileError {
    /// No snapshot on disk (first run).
    Missing,
    /// The file is not a pgdesign snapshot at all.
    BadMagic,
    /// Written by an incompatible format version.
    VersionSkew {
        found: u32,
    },
    /// Checksum or structure failure (bit rot, flipped byte, truncation).
    Corrupt(&'static str),
    Io(io::Error),
}

impl std::fmt::Display for SnapshotFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotFileError::Missing => write!(f, "no snapshot on disk"),
            SnapshotFileError::BadMagic => write!(f, "bad magic (not a pgdesign snapshot)"),
            SnapshotFileError::VersionSkew { found } => {
                write!(
                    f,
                    "format version skew (found v{found}, want v{FORMAT_VERSION})"
                )
            }
            SnapshotFileError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotFileError::Io(e) => write!(f, "snapshot i/o error: {e}"),
        }
    }
}

/// A verified snapshot: its records and the body CRC that names it (the
/// same CRC a matching edit log must carry in its header).
pub struct SnapshotFile {
    pub records: Vec<Vec<u8>>,
    pub body_crc: u32,
}

/// Atomically write a snapshot file; returns the body CRC identifying it.
pub fn write_snapshot(
    store: &mut dyn DurableStore,
    name: &str,
    records: &[Vec<u8>],
) -> io::Result<u32> {
    let mut body = Vec::new();
    for rec in records {
        frame_record(&mut body, rec);
    }
    let body_crc = crc32(&body);
    let mut file = Vec::with_capacity(FILE_HEADER_LEN + body.len());
    file.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
    file.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    file.extend_from_slice(&body_crc.to_le_bytes());
    file.extend_from_slice(&body);
    store.write_atomic(name, &file)?;
    Ok(body_crc)
}

/// Read and fully verify a snapshot file.
pub fn read_snapshot(
    store: &mut dyn DurableStore,
    name: &str,
) -> Result<SnapshotFile, SnapshotFileError> {
    let bytes = store
        .read(name)
        .map_err(SnapshotFileError::Io)?
        .ok_or(SnapshotFileError::Missing)?;
    if bytes.len() < FILE_HEADER_LEN {
        return Err(SnapshotFileError::Corrupt("file shorter than header"));
    }
    let mut r = ByteReader::new(&bytes);
    let short = |_| SnapshotFileError::Corrupt("file shorter than header");
    let magic = r.get_u32().map_err(short)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotFileError::BadMagic);
    }
    let version = r.get_u32().map_err(short)?;
    if version != FORMAT_VERSION {
        return Err(SnapshotFileError::VersionSkew { found: version });
    }
    let body_crc = r.get_u32().map_err(short)?;
    let body = bytes
        .get(FILE_HEADER_LEN..)
        .ok_or(SnapshotFileError::Corrupt("file shorter than header"))?;
    if crc32(body) != body_crc {
        return Err(SnapshotFileError::Corrupt("body checksum mismatch"));
    }
    let records =
        read_records_strict(body).map_err(|_| SnapshotFileError::Corrupt("bad record frame"))?;
    Ok(SnapshotFile { records, body_crc })
}

// ---------------------------------------------------------------------------
// Edit log
// ---------------------------------------------------------------------------

/// Reset the log to an empty one bound to `snapshot_crc` — this is the
/// checkpoint truncation, done as an atomic replace so a crash during
/// checkpointing leaves either the old log or the fresh empty one.
pub fn log_reset(store: &mut dyn DurableStore, name: &str, snapshot_crc: u32) -> io::Result<()> {
    let mut header = Vec::with_capacity(FILE_HEADER_LEN);
    header.extend_from_slice(&LOG_MAGIC.to_le_bytes());
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&snapshot_crc.to_le_bytes());
    store.write_atomic(name, &header)
}

/// Append one edit record and fsync it: when this returns `Ok`, the
/// record survives any crash.
pub fn log_append(store: &mut dyn DurableStore, name: &str, payload: &[u8]) -> io::Result<()> {
    let mut framed = Vec::with_capacity(8 + payload.len());
    frame_record(&mut framed, payload);
    store.append(name, &framed)?;
    store.sync(name)
}

/// [`log_append`] with bounded retry of *sync* failures: the record's
/// bytes are appended once, then the fsync is attempted up to
/// `1 + max_retries` times, calling `backoff(attempt)` before each retry
/// (the caller supplies the delay policy — typically a deterministic
/// sleep). Returns the number of retries that were needed.
///
/// Only the sync is retried. A failed *append* may leave a partial frame
/// on disk; appending the record again would land it after the torn
/// frame, where replay's truncate-at-first-bad-frame discipline drops
/// it — so an append error returns immediately and the caller must treat
/// the log as suspect.
pub fn log_append_retrying(
    store: &mut dyn DurableStore,
    name: &str,
    payload: &[u8],
    max_retries: u32,
    mut backoff: impl FnMut(u32),
) -> io::Result<u32> {
    let mut framed = Vec::with_capacity(8 + payload.len());
    frame_record(&mut framed, payload);
    store.append(name, &framed)?;
    let mut attempt = 0u32;
    loop {
        match store.sync(name) {
            Ok(()) => return Ok(attempt),
            Err(e) if attempt >= max_retries => return Err(e),
            Err(_) => {
                backoff(attempt);
                attempt += 1;
            }
        }
    }
}

/// Outcome of opening the edit log against an already-verified snapshot.
#[derive(Debug)]
pub enum LogState {
    /// No log on disk: the snapshot alone is the state.
    Missing,
    /// The log does not extend this snapshot (stale header, wrong magic,
    /// version skew, or it names a different snapshot CRC). It must be
    /// discarded, not replayed.
    Mismatch(&'static str),
    /// Verified records to replay, plus what was dropped at a torn tail.
    Replay(RecordScan),
}

/// Read the log and validate that it extends the snapshot named by
/// `expect_snapshot_crc`. A torn or corrupt tail is truncated at the last
/// good record, never an error.
pub fn log_open(
    store: &mut dyn DurableStore,
    name: &str,
    expect_snapshot_crc: u32,
) -> io::Result<LogState> {
    let bytes = match store.read(name)? {
        None => return Ok(LogState::Missing),
        Some(b) => b,
    };
    if bytes.len() < FILE_HEADER_LEN {
        // The header is written atomically, so a short file is a stale
        // artifact, not a torn tail.
        return Ok(LogState::Mismatch("log shorter than header"));
    }
    let mut r = ByteReader::new(&bytes);
    let (Ok(magic), Ok(version), Ok(snapshot_crc)) = (r.get_u32(), r.get_u32(), r.get_u32()) else {
        return Ok(LogState::Mismatch("log shorter than header"));
    };
    if magic != LOG_MAGIC {
        return Ok(LogState::Mismatch("bad log magic"));
    }
    if version != FORMAT_VERSION {
        return Ok(LogState::Mismatch("log format version skew"));
    }
    if snapshot_crc != expect_snapshot_crc {
        return Ok(LogState::Mismatch("log extends a different snapshot"));
    }
    let body = bytes.get(FILE_HEADER_LEN..).unwrap_or_default();
    Ok(LogState::Replay(scan_records(body)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Failpoint, MemStore};

    #[test]
    fn snapshot_round_trip() {
        let mut s = MemStore::new();
        let recs = vec![b"header".to_vec(), b"cells".to_vec(), Vec::new()];
        let crc = write_snapshot(&mut s, "m.pgds", &recs).unwrap();
        let file = read_snapshot(&mut s, "m.pgds").unwrap();
        assert_eq!(file.records, recs);
        assert_eq!(file.body_crc, crc);
    }

    #[test]
    fn missing_snapshot_is_its_own_error() {
        let mut s = MemStore::new();
        assert!(matches!(
            read_snapshot(&mut s, "nope.pgds"),
            Err(SnapshotFileError::Missing)
        ));
    }

    #[test]
    fn flipped_byte_is_caught_by_checksum() {
        let mut s = MemStore::new();
        write_snapshot(&mut s, "m.pgds", &[b"payload".to_vec()]).unwrap();
        let len = s.read("m.pgds").unwrap().unwrap().len();
        s.corrupt("m.pgds", len - 1);
        assert!(matches!(
            read_snapshot(&mut s, "m.pgds"),
            Err(SnapshotFileError::Corrupt(_))
        ));
    }

    #[test]
    fn version_skew_is_detected() {
        let mut s = MemStore::new();
        write_snapshot(&mut s, "m.pgds", &[b"payload".to_vec()]).unwrap();
        let mut bytes = s.read("m.pgds").unwrap().unwrap();
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        s.write_atomic("m.pgds", &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&mut s, "m.pgds"),
            Err(SnapshotFileError::VersionSkew { .. })
        ));
    }

    #[test]
    fn log_replays_records_and_truncates_torn_tail() {
        let mut s = MemStore::new();
        log_reset(&mut s, "m.pgdl", 0xABCD).unwrap();
        log_append(&mut s, "m.pgdl", b"edit-1").unwrap();
        log_append(&mut s, "m.pgdl", b"edit-2").unwrap();
        // A third record is appended but the crash happens before fsync;
        // the power cut leaves 5 bytes of it on disk — a torn tail.
        s.arm(Failpoint::FsyncError);
        assert!(log_append(&mut s, "m.pgdl", b"edit-3").is_err());
        s.power_cut(5);
        match log_open(&mut s, "m.pgdl", 0xABCD).unwrap() {
            LogState::Replay(scan) => {
                assert_eq!(scan.records, vec![b"edit-1".to_vec(), b"edit-2".to_vec()]);
                assert_eq!(scan.dropped_records, 1);
                assert_eq!(scan.dropped_bytes, 5);
            }
            other => panic!("expected replay, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_shorter_than_header_is_corrupt_not_a_panic() {
        let mut s = MemStore::new();
        // Every prefix length below the fixed header exercises the
        // guarded slicing in `read_snapshot` — each must surface as a
        // structured `Corrupt`, never an out-of-bounds panic.
        for n in 0..FILE_HEADER_LEN {
            s.write_atomic("m.pgds", &vec![0u8; n]).unwrap();
            assert!(matches!(
                read_snapshot(&mut s, "m.pgds"),
                Err(SnapshotFileError::Corrupt(_))
            ));
        }
    }

    #[test]
    fn log_shorter_than_header_is_mismatch_not_a_panic() {
        let mut s = MemStore::new();
        for n in 1..FILE_HEADER_LEN {
            s.write_atomic("m.pgdl", &vec![0u8; n]).unwrap();
            assert!(matches!(
                log_open(&mut s, "m.pgdl", 0xABCD).unwrap(),
                LogState::Mismatch(_)
            ));
        }
    }

    #[test]
    fn retried_append_survives_transient_fsync_failures() {
        let mut s = MemStore::new();
        log_reset(&mut s, "m.pgdl", 0xABCD).unwrap();
        s.arm(Failpoint::TransientFsync { times: 2 });
        let mut backoffs = Vec::new();
        let retries =
            log_append_retrying(&mut s, "m.pgdl", b"edit-1", 3, |a| backoffs.push(a)).unwrap();
        assert_eq!(retries, 2);
        assert_eq!(backoffs, vec![0, 1]);
        // The record is durable: a power cut does not lose it.
        s.power_cut(0);
        match log_open(&mut s, "m.pgdl", 0xABCD).unwrap() {
            LogState::Replay(scan) => assert_eq!(scan.records, vec![b"edit-1".to_vec()]),
            other => panic!("expected replay, got {other:?}"),
        }
    }

    #[test]
    fn retried_append_gives_up_after_the_budget() {
        let mut s = MemStore::new();
        log_reset(&mut s, "m.pgdl", 0xABCD).unwrap();
        s.arm(Failpoint::FsyncError); // permanent, not transient
        let mut attempts = 0;
        let err = log_append_retrying(&mut s, "m.pgdl", b"edit-1", 3, |_| attempts += 1)
            .expect_err("permanent fsync failure must surface");
        assert_eq!(attempts, 3, "exactly the retry budget is spent");
        assert!(err.to_string().contains("fsync"));
    }

    #[test]
    fn log_for_a_different_snapshot_is_rejected() {
        let mut s = MemStore::new();
        log_reset(&mut s, "m.pgdl", 0xABCD).unwrap();
        log_append(&mut s, "m.pgdl", b"edit-1").unwrap();
        assert!(matches!(
            log_open(&mut s, "m.pgdl", 0x1234).unwrap(),
            LogState::Mismatch(_)
        ));
    }
}
