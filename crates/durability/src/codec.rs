//! Hand-rolled little-endian byte codec.
//!
//! The workspace's vendored `serde` is a no-op shim, so every durable
//! artifact is written in an explicit little-endian format through this
//! writer/reader pair. Numbers are fixed-width `to_le_bytes`; `f64` goes
//! through `to_bits` so NaN payloads and signed zeros round-trip exactly;
//! variable-length data is a `u64` length prefix followed by raw bytes.

use std::fmt;

/// A structural decode failure: what was being read and at which byte
/// offset the input ran out or stopped making sense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    pub what: &'static str,
    pub at: usize,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {} at byte {}", self.what, self.at)
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian encoder.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Collection length prefix (stored as `u64`).
    pub fn put_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }

    /// Raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Length-prefixed byte blob.
    pub fn put_blob(&mut self, bytes: &[u8]) {
        self.put_len(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_blob(s.as_bytes());
    }
}

/// Cursor-based little-endian decoder over a borrowed buffer.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError { what, at: self.pos });
        }
        let slice = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or(CodecError { what, at: self.pos })?;
        self.pos += n;
        Ok(slice)
    }

    /// Fixed-width read as an array — the panic-free backbone of every
    /// integer getter (a short buffer is a [`CodecError`], never a slice
    /// panic).
    fn take_array<const N: usize>(&mut self, what: &'static str) -> Result<[u8; N], CodecError> {
        let at = self.pos;
        self.take(N, what)?
            .try_into()
            .map_err(|_| CodecError { what, at })
    }

    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        let [b] = self.take_array::<1>("u8")?;
        Ok(b)
    }

    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError {
                what: "bool",
                at: self.pos - 1,
            }),
        }
    }

    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take_array("u16")?))
    }

    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_array("u32")?))
    }

    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_array("u64")?))
    }

    pub fn get_u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take_array("u128")?))
    }

    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take_array("i64")?))
    }

    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Collection length prefix. Guarded against lengths that could not
    /// possibly fit in the remaining input (each element is ≥ 1 byte), so
    /// corrupt data fails fast instead of triggering huge allocations.
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        let at = self.pos;
        let n = self.get_u64()?;
        if n > self.remaining() as u64 {
            return Err(CodecError {
                what: "length prefix exceeds remaining input",
                at,
            });
        }
        Ok(n as usize)
    }

    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n, "raw bytes")
    }

    pub fn get_blob(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.get_len()?;
        self.take(n, "blob")
    }

    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let at = self.pos;
        let bytes = self.get_blob()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError {
            what: "invalid utf-8 string",
            at,
        })
    }

    /// Assert that the whole input was consumed.
    pub fn expect_end(&self, what: &'static str) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError { what, at: self.pos })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u16(65535);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_u128(1u128 << 100);
        w.put_i64(-42);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_str("héllo");
        w.put_blob(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u16().unwrap(), 65535);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_u128().unwrap(), 1u128 << 100);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_blob().unwrap(), &[1, 2, 3]);
        r.expect_end("trailing").unwrap();
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut w = ByteWriter::new();
        w.put_u64(123);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(r.get_u64().is_err());
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // claims ~2^64 elements with no payload
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_len().is_err());
    }
}
