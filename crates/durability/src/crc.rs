//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum
//! guarding every record in the snapshot and edit-log files. Table-driven;
//! the table is built at compile time.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // analyzer:allow(panic-freedom): `i < 256` is the loop bound of this
        // const fn — the index is provably in range and evaluated at compile
        // time, so no runtime input can reach it.
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (standard init 0xFFFFFFFF, final xor 0xFFFFFFFF).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        // analyzer:allow(panic-freedom): the index is masked with `& 0xFF`,
        // so it is provably < 256 for any input byte.
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
