//! # pgdesign-durability
//!
//! Crash-safe storage primitives for pgdesign's long-lived tuning
//! sessions. This crate is a dependency leaf — it knows nothing about
//! cost matrices or catalogs; it provides the mechanics every durable
//! layer needs and that the vendored no-op `serde` shim cannot:
//!
//! - [`codec`]: an explicit little-endian [`ByteWriter`]/[`ByteReader`]
//!   pair (the wire format is hand-rolled, versioned, and checked).
//! - [`crc`]: table-driven CRC-32 guarding every record.
//! - [`store`]: the [`DurableStore`] abstraction with a real filesystem
//!   implementation ([`FsStore`]) and a deterministic fault-injection
//!   double ([`MemStore`]) supporting short writes, fsync failures,
//!   crash-after-N-bytes, and explicit power-cut/restart cycles.
//! - [`mod@file`]: the snapshot (`.pgds`) and edit-log (`.pgdl`) framing —
//!   magic headers, format version, per-record CRC, atomic
//!   rename-into-place for snapshots and checkpoint truncation, fsync
//!   per appended log record, and torn-tail truncation on replay.
//!
//! The semantic payloads (what a matrix cell or an edit record *means*)
//! live upstream in `pgdesign-inum`; recovery policy (when to fall back
//! to a cold build, how staleness is handled) lives in `pgdesign` core.

#![forbid(unsafe_code)]
// Recovery code must never panic on untrusted bytes; `.unwrap()` and
// `.expect()` are compile errors here (tests are exempt — a failed
// assertion is exactly what a test wants).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod codec;
pub mod crc;
pub mod file;
pub mod store;

pub use codec::{ByteReader, ByteWriter, CodecError};
pub use crc::crc32;
pub use file::{
    frame_record, log_append, log_append_retrying, log_open, log_reset, read_snapshot,
    scan_records, write_snapshot, LogState, RecordScan, SnapshotFile, SnapshotFileError,
    FORMAT_VERSION,
};
pub use store::{DurableStore, Failpoint, FsStore, MemStore, SharedMemStore};
