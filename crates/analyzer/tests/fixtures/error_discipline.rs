//! Seeded fixture: `Result`s silently discarded on the durability path —
//! a `let _ =` drop and a bare expression-statement drop.

fn sync_dir(d: &Dir) {
    let _ = d.sync_all();
}

fn checkpoint_all(s: &Store) {
    s.checkpoint();
}
