//! Seeded fixture: the helper with the direct costing site, in a module
//! *outside* the sanctioned cost boundary.

pub struct Probe;

impl Probe {
    pub fn raw_cost(&self) -> f64 {
        self.inum().cost(&q)
    }
}
