//! Seeded cost-purity violations: read paths reaching for the optimizer
//! instead of cost-matrix lookups. Not compiled — lexed by the golden test.

pub fn sneaky(m: &M, q: &Query) -> f64 {
    let inum = m.inum();
    inum.cost(q)
}

pub fn also_sneaky(handle: &Inum<'_>, q: &Query) -> f64 {
    Inum::cost(handle, q)
}

pub fn worst(session: &TuningSession<'_>) -> f64 {
    let h = session.inum_longlived();
    h.total()
}

pub fn waived(m: &M, q: &Query) -> f64 {
    // analyzer:allow(cost-purity): fixture demonstrating a reasoned waiver.
    let inum = m.inum();
    inum.read_only_metadata(q)
}
