//! A fixture every rule should pass: matrix lookups, checked access,
//! ordered iteration, argued unsafe (none), guard taken for the swap
//! alone. Not compiled — lexed by the golden test.

use std::collections::BTreeMap;

pub fn workload_total(costs: &BTreeMap<usize, f64>) -> f64 {
    let mut sum = 0.0;
    for (_q, c) in costs.iter() {
        sum += c;
    }
    sum
}

pub fn decode(bytes: &[u8]) -> Result<u8, DecodeError> {
    bytes.first().copied().ok_or(DecodeError::Short)
}

pub fn swap_only(slot: &PublishSlot, prepared: Snapshot) {
    let guard = slot.write();
    guard.swap(prepared);
}
