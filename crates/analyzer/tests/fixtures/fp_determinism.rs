//! Seeded fp-determinism violations: f64 accumulation driven by hash
//! iteration order. Not compiled — lexed by the golden test.

use std::collections::HashMap;

pub fn workload_total(costs: &HashMap<usize, f64>) -> f64 {
    let mut sum = 0.0;
    for (_q, c) in costs.iter() {
        sum += c;
    }
    sum
}

pub fn weighted(weights: HashMap<usize, f64>, scale: f64) -> f64 {
    weights.values().map(|w| w * scale).sum()
}
