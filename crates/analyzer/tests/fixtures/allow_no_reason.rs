//! Seeded allow-syntax violations: a bare allow (no reason) does not
//! waive the underlying diagnostic, and an unknown rule name is itself
//! flagged. Not compiled — lexed by the golden test.

pub fn bare_allow(bytes: &[u8]) -> u8 {
    // analyzer:allow(panic-freedom)
    bytes[0]
}

pub fn unknown_rule(bytes: &[u8]) -> u8 {
    // analyzer:allow(made-up-rule): confidently wrong.
    bytes.get(0).copied().unwrap()
}
