//! Seeded panic-freedom violations: decode paths that die on the first
//! corrupt byte. Not compiled — lexed by the golden test.

pub fn decode(bytes: &[u8]) -> u8 {
    let first = bytes[0];
    let second = bytes.get(1).copied().unwrap();
    first + second
}

pub fn replay(records: &[Vec<u8>]) -> Edit {
    let head = records.first().expect("log never empty");
    if head.is_empty() {
        panic!("empty record");
    }
    parse(head)
}

pub fn finish(tag: u8) -> Edit {
    match tag {
        0 => Edit::Noop,
        _ => unreachable!("tags are exhaustive"),
    }
}
