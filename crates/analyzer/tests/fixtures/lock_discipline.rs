//! Seeded lock-discipline violations: costing and publishing while a
//! publish-slot write guard is live. Not compiled — lexed by the golden test.

pub fn publish_under_guard(slot: &PublishSlot, matrix: &CostMatrix<'_>) {
    let guard = slot.write();
    matrix.publish();
    drop(guard);
}

pub fn cost_under_guard(slot: &PublishSlot, m: &M, q: &Query) -> f64 {
    let guard = slot.write();
    let c = m.inum().cost(q);
    drop(guard);
    c
}

pub fn compute_then_swap(slot: &PublishSlot, next: Snapshot) {
    let prepared = expensive_compute(next);
    let guard = slot.write();
    guard.swap(prepared);
}
