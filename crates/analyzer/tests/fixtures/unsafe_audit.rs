//! Seeded unsafe-audit violation: an unsafe block whose soundness
//! argument was never written down. Not compiled — lexed by the golden
//! test.

pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn read_argued(p: *const u8) -> u8 {
    // SAFETY: fixture demonstrating a documented block; callers pass a
    // pointer derived from a live reference.
    unsafe { *p }
}
