//! Seeded fixture: a reasoned, well-formed allow that no longer
//! suppresses anything — reported as a warning so the escape-hatch
//! inventory cannot rot.

// analyzer:allow(cost-purity): this fn used to cost via the optimizer
fn tidy() -> f64 {
    0.0
}
