//! Seeded fixture: out-of-order lock acquisition — the snapshot slot's
//! RwLock (`current`, innermost) is held while the probe cache lock
//! (`cache`, outer) is taken, both directly and through a helper call.

pub struct Slot;

impl Slot {
    fn bad(&self) {
        let g = self.current.write();
        self.cache.write().clear();
    }

    fn indirect(&self) {
        let g = self.current.write();
        self.touch_cache();
    }

    fn touch_cache(&self) {
        self.cache.write().clear();
    }
}
