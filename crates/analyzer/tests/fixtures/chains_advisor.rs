//! Seeded fixture: a read-path advisor that reaches `Inum::cost` only
//! through an intermediate helper — both `pick` and `refine` must be
//! flagged transitively, with the full call chain down to the site.

pub fn pick(h: &Probe) -> f64 {
    refine(h)
}

fn refine(h: &Probe) -> f64 {
    h.raw_cost()
}
