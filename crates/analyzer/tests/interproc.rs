//! Integration tests for the interprocedural engine: multi-file golden
//! fixtures (cross-file chains, lock order, error discipline, dead
//! allows), JSON emission, and incremental-cache determinism.
//!
//! Regenerate goldens after an intentional rule change with
//! `UPDATE_GOLDEN=1 cargo test -p pgdesign-analyzer --test interproc`.

use pgdesign_analyzer::cache::FileSummary;
use pgdesign_analyzer::rules::analyze_summaries;
use pgdesign_analyzer::{analyze_workspace_cached, Config, Severity};
use std::fs;
use std::path::{Path, PathBuf};

/// Each golden set: (name, [(fixture file, synthetic repo path)]) —
/// rendered together as one mini-workspace.
const SETS: &[(&str, &[(&str, &str)])] = &[
    (
        "chains",
        &[
            ("chains_advisor.rs", "crates/cophy/src/advisor.rs"),
            ("chains_probe.rs", "crates/core/src/probe.rs"),
        ],
    ),
    (
        "lock_order",
        &[("lock_order.rs", "crates/interaction/src/fixture2.rs")],
    ),
    (
        "error_discipline",
        &[("error_discipline.rs", "crates/durability/src/fixture2.rs")],
    ),
    (
        "dead_allow",
        &[("dead_allow.rs", "crates/cophy/src/fixture2.rs")],
    ),
];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn summaries_of(files: &[(&str, &str)]) -> Vec<FileSummary> {
    let mut sums: Vec<FileSummary> = files
        .iter()
        .map(|&(fixture, as_path)| {
            let src = fs::read_to_string(fixture_dir().join(fixture)).expect("read fixture");
            pgdesign_analyzer::cache::summarize(as_path, &src)
        })
        .collect();
    sums.sort_by(|a, b| a.path.cmp(&b.path));
    sums
}

fn render_set(files: &[(&str, &str)]) -> String {
    let (diags, _) = analyze_summaries(&summaries_of(files), &Config::workspace());
    let mut out = String::new();
    for d in &diags {
        if d.severity == Severity::Warning {
            out.push_str("warning: ");
        }
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

#[test]
fn interproc_fixtures_match_golden_output() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    for &(name, files) in SETS {
        let got = render_set(files);
        let expected_path = fixture_dir().join(format!("{name}.expected"));
        if update {
            fs::write(&expected_path, &got).expect("write golden");
            continue;
        }
        let want = fs::read_to_string(&expected_path)
            .unwrap_or_else(|_| panic!("missing golden file {}", expected_path.display()));
        assert_eq!(
            got, want,
            "golden mismatch for set `{name}` (run with UPDATE_GOLDEN=1 to regenerate)"
        );
    }
}

/// The tentpole acceptance case: a read-path fn that reaches `Inum::cost`
/// only through an intermediate helper is flagged with the full chain.
#[test]
fn cross_file_chain_carries_every_hop() {
    let (diags, _) = analyze_summaries(&summaries_of(SETS[0].1), &Config::workspace());
    let pick = diags
        .iter()
        .find(|d| d.rule == "cost-purity" && d.msg.contains("`pick`"))
        .expect("pick flagged transitively");
    // pick → refine (same file) → Probe::raw_cost (other file) → site.
    assert!(pick.chain.len() >= 4, "chain: {:?}", pick.chain);
    assert_eq!(pick.chain.first().unwrap().func, "pick");
    let last = pick.chain.last().unwrap();
    assert_eq!(last.func, "<site>");
    assert!(last.path.ends_with("probe.rs"));
    assert!(pick.msg.contains("call chain"));
    // The direct site itself is still reported, chainless.
    assert!(diags
        .iter()
        .any(|d| d.rule == "cost-purity" && d.path.ends_with("probe.rs") && d.chain.is_empty()));
}

/// Build a three-crate throwaway workspace for cache/determinism tests.
fn scratch_workspace(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("analyzer-interproc-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    for (krate, src) in [
        (
            "alpha",
            "pub fn pick(h: &Probe) -> f64 {\n    h.raw_cost()\n}\n",
        ),
        (
            "beta",
            "pub struct Probe;\nimpl Probe {\n    pub fn raw_cost(&self) -> f64 {\n        self.inum().cost(&q)\n    }\n}\n",
        ),
        ("gamma", "pub fn quiet() -> u32 {\n    7\n}\n"),
    ] {
        let dir = root.join("crates").join(krate).join("src");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join("lib.rs"), src).expect("write src");
    }
    root
}

fn render_report(diags: &[pgdesign_analyzer::Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Warm runs must hit the cache for every unchanged file, re-extract only
/// a touched file, and reach a byte-identical fixpoint either way.
#[test]
fn incremental_reanalysis_is_byte_identical_to_cold() {
    let root = scratch_workspace("incr");
    let cache = root.join("target/analyzer-facts");
    let cfg = Config::workspace();

    let cold = analyze_workspace_cached(&root, &cfg, Some(&cache)).expect("cold run");
    assert_eq!(cold.stats.extracted, 3);
    assert_eq!(cold.stats.cache_hits, 0);

    let warm = analyze_workspace_cached(&root, &cfg, Some(&cache)).expect("warm run");
    assert_eq!(warm.stats.extracted, 0);
    assert_eq!(warm.stats.cache_hits, 3);
    assert_eq!(render_report(&warm.diags), render_report(&cold.diags));

    // Touch one file: only it re-extracts; the fixpoint is unchanged.
    let gamma = root.join("crates/gamma/src/lib.rs");
    let mut src = fs::read_to_string(&gamma).expect("read gamma");
    src.push_str("\n// a trailing comment changes the content hash\n");
    fs::write(&gamma, src).expect("touch gamma");
    let touched = analyze_workspace_cached(&root, &cfg, Some(&cache)).expect("touched run");
    assert_eq!(
        touched.stats.extracted, 1,
        "only the touched file re-extracts"
    );
    assert_eq!(touched.stats.cache_hits, 2);
    assert_eq!(touched.stats.rounds, cold.stats.rounds);
    assert_eq!(render_report(&touched.diags), render_report(&cold.diags));

    // And the cacheless run agrees byte-for-byte.
    let nocache = analyze_workspace_cached(&root, &cfg, None).expect("nocache run");
    assert_eq!(render_report(&nocache.diags), render_report(&cold.diags));

    let _ = fs::remove_dir_all(&root);
}

/// `--format json` emits the `{rule, path, line, chain}` records CI diffs.
#[test]
fn json_output_carries_rule_path_line_chain() {
    let root = scratch_workspace("json");
    let exe = env!("CARGO_BIN_EXE_pgdesign-analyzer");
    let out = std::process::Command::new(exe)
        .arg(&root)
        .args(["--format", "json", "--no-cache"])
        .output()
        .expect("run analyzer binary");
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(!out.status.success(), "seeded workspace must gate");
    assert!(text.trim_start().starts_with('['), "json array: {text}");
    assert!(text.trim_end().ends_with(']'));
    assert!(text.contains("\"rule\": \"cost-purity\""));
    assert!(text.contains("\"path\": \"crates/alpha/src/lib.rs\""));
    assert!(text.contains("\"line\": "));
    assert!(
        text.contains("\"chain\": [{"),
        "transitive finding has hops: {text}"
    );
    assert!(text.contains("\"fn\": \"pick\""));
    let _ = fs::remove_dir_all(&root);
}
