//! Golden-file tests for the analyzer.
//!
//! Each fixture under `tests/fixtures/` is analyzed under a synthetic
//! repo path that puts it in the right rule scope; the rendered
//! `path:line: rule: message` output must match the committed
//! `.expected` file byte-for-byte. Regenerate after an intentional rule
//! change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p pgdesign-analyzer --test golden
//! ```
//!
//! and review the diff — a golden update is a rule-behavior change.

use pgdesign_analyzer::{analyze_source, analyze_workspace, Config};
use std::fs;
use std::path::{Path, PathBuf};

/// Fixture file → the repo path it pretends to live at (scoping is by
/// path prefix, so this picks which rules apply at full strength).
const FIXTURES: &[(&str, &str)] = &[
    ("cost_purity.rs", "crates/cophy/src/fixture.rs"),
    ("panic_freedom.rs", "crates/durability/src/fixture.rs"),
    ("fp_determinism.rs", "crates/colt/src/fixture.rs"),
    ("unsafe_audit.rs", "crates/core/src/fixture.rs"),
    ("lock_discipline.rs", "crates/interaction/src/fixture.rs"),
    ("allow_no_reason.rs", "crates/durability/src/fixture.rs"),
    ("clean.rs", "crates/query/src/fixture.rs"),
];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn render(fixture: &str, as_path: &str) -> String {
    let src = fs::read_to_string(fixture_dir().join(fixture)).expect("read fixture");
    let diags = analyze_source(as_path, &src, &Config::workspace());
    let mut out = String::new();
    for d in &diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

#[test]
fn fixtures_match_golden_output() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    for &(fixture, as_path) in FIXTURES {
        let got = render(fixture, as_path);
        let expected_path = fixture_dir().join(fixture).with_extension("expected");
        if update {
            fs::write(&expected_path, &got).expect("write golden");
            continue;
        }
        let want = fs::read_to_string(&expected_path)
            .unwrap_or_else(|_| panic!("missing golden file {}", expected_path.display()));
        assert_eq!(
            got, want,
            "golden mismatch for {fixture} (run with UPDATE_GOLDEN=1 to regenerate)"
        );
    }
}

#[test]
fn every_seeded_fixture_is_caught() {
    for &(fixture, as_path) in FIXTURES {
        if fixture == "clean.rs" {
            continue;
        }
        let src = fs::read_to_string(fixture_dir().join(fixture)).expect("read fixture");
        let diags = analyze_source(as_path, &src, &Config::workspace());
        assert!(
            !diags.is_empty(),
            "{fixture} should trip the analyzer but came back clean"
        );
        // Every fixture's namesake rule shows up (allow_no_reason seeds
        // allow-syntax plus the unwaived panic-freedom hit).
        let rule: String = match fixture {
            "allow_no_reason.rs" => "allow-syntax".to_string(),
            other => other[..other.len() - 3].replace('_', "-"),
        };
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "{fixture}: expected a `{rule}` diagnostic, got {diags:?}"
        );
    }
}

#[test]
fn bare_allow_does_not_waive_the_violation() {
    let src = fs::read_to_string(fixture_dir().join("allow_no_reason.rs")).expect("read fixture");
    let diags = analyze_source(
        "crates/durability/src/fixture.rs",
        &src,
        &Config::workspace(),
    );
    // The bare allow is reported…
    assert!(diags
        .iter()
        .any(|d| d.rule == "allow-syntax" && d.msg.contains("without a reason")));
    // …and the indexing it sat above is still reported too.
    assert!(diags
        .iter()
        .any(|d| d.rule == "panic-freedom" && d.line == 7));
}

#[test]
fn clean_fixture_stays_clean() {
    assert_eq!(render("clean.rs", "crates/query/src/fixture.rs"), "");
}

/// The self-test: the workspace this analyzer ships in must satisfy its
/// own rules. `CARGO_MANIFEST_DIR` is `crates/analyzer`, two levels below
/// the checkout root.
#[test]
fn workspace_is_clean_under_own_rules() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let diags = analyze_workspace(&root, &Config::workspace()).expect("walk workspace");
    assert!(
        diags.is_empty(),
        "workspace violates its own architecture rules:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
