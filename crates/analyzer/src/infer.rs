//! The Datalog-style inference core: IDB relations derived from the call
//! graph by semi-naive iteration to fixpoint.
//!
//! Every interprocedural relation the rules need is an instance of one
//! scheme — reachability over reversed call edges with a blocked set:
//!
//! ```text
//! reaches(F) :- seed(F).
//! reaches(F) :- calls(F, G), reaches(G), ¬blocked(G).
//! ```
//!
//! `reaches_cost` seeds from direct cost-primitive sites, `may_panic`
//! from panic sites, and the per-lock `may_acquire(L)` family from
//! acquisition sites. Blocking implements sanctioned boundaries: a
//! cost-allowed module, a test fn, or an allow-covered fn is still
//! *derived* (its fact exists) but propagates nothing upward — an allow
//! anywhere on a chain therefore suppresses every chain through it.
//!
//! Each derived fact records the `(callee, call-line)` it was first
//! reached through; following these witnesses back to a seed yields the
//! full call chain for the diagnostic. Iteration order is sorted node
//! ids per round, and a fact is never overwritten once inserted, so the
//! fixpoint — and every printed chain — is deterministic regardless of
//! file arrival order, a property the incremental cache relies on.

use std::collections::{BTreeMap, BTreeSet};

/// A derived reachability relation: node → the first `(callee, line)`
/// witness, `None` for seeds.
pub struct Derived {
    pub facts: BTreeMap<u32, Option<(u32, u32)>>,
    /// Semi-naive rounds to fixpoint (for the stats line).
    pub rounds: u32,
}

impl Derived {
    /// Is the fact derived for `node` (seed or transitive)?
    pub fn holds(&self, node: u32) -> bool {
        self.facts.contains_key(&node)
    }

    /// The witness chain from `node` down to a seed: a list of
    /// `(next_node, call_line)` hops, empty when `node` is itself a seed.
    /// Bounded to guard against (impossible, but cheap to exclude)
    /// witness cycles.
    pub fn chain(&self, node: u32) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let mut cur = node;
        while let Some(&Some((next, line))) = self.facts.get(&cur) {
            out.push((next, line));
            cur = next;
            if out.len() > 64 {
                break;
            }
        }
        out
    }
}

/// Derive reachability over `redges` (callee → callers) from `seeds`,
/// never propagating out of a node in `blocked`.
pub fn reach(seeds: &[u32], blocked: &BTreeSet<u32>, redges: &[Vec<(u32, u32)>]) -> Derived {
    let mut facts: BTreeMap<u32, Option<(u32, u32)>> = BTreeMap::new();
    let mut frontier: Vec<u32> = seeds.to_vec();
    frontier.sort();
    frontier.dedup();
    for &s in &frontier {
        facts.insert(s, None);
    }
    let mut rounds = 0;
    while !frontier.is_empty() {
        rounds += 1;
        let mut next = Vec::new();
        for &f in &frontier {
            if blocked.contains(&f) {
                continue;
            }
            for &(caller, line) in &redges[f as usize] {
                if let std::collections::btree_map::Entry::Vacant(e) = facts.entry(caller) {
                    e.insert(Some((f, line)));
                    next.push(caller);
                }
            }
        }
        next.sort();
        next.dedup();
        frontier = next;
    }
    Derived { facts, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn redges_of(edges: &[(u32, u32, u32)], n: usize) -> Vec<Vec<(u32, u32)>> {
        let mut r = vec![Vec::new(); n];
        for &(caller, callee, line) in edges {
            r[callee as usize].push((caller, line));
        }
        r
    }

    #[test]
    fn transitive_chain_with_witnesses() {
        // 0 → 1 → 2(seed)
        let r = redges_of(&[(0, 1, 10), (1, 2, 20)], 3);
        let d = reach(&[2], &BTreeSet::new(), &r);
        assert!(d.holds(0) && d.holds(1) && d.holds(2));
        assert_eq!(d.chain(0), vec![(1, 10), (2, 20)]);
        assert_eq!(d.chain(2), vec![]);
    }

    #[test]
    fn blocked_nodes_derive_but_do_not_propagate() {
        // 0 → 1(blocked) → 2(seed); 3 → 2 directly.
        let r = redges_of(&[(0, 1, 10), (1, 2, 20), (3, 2, 30)], 4);
        let blocked: BTreeSet<u32> = [1].into_iter().collect();
        let d = reach(&[2], &blocked, &r);
        assert!(d.holds(1), "the blocked node's own fact still derives");
        assert!(!d.holds(0), "nothing propagates out of a blocked node");
        assert!(d.holds(3));
    }

    #[test]
    fn cycles_reach_fixpoint() {
        // 0 ↔ 1, 1 → 2(seed).
        let r = redges_of(&[(0, 1, 1), (1, 0, 2), (1, 2, 3)], 3);
        let d = reach(&[2], &BTreeSet::new(), &r);
        assert!(d.holds(0) && d.holds(1));
        assert!(d.rounds <= 4);
    }
}
