//! The workspace call graph: fn nodes from every file's fact module,
//! `calls(caller, callee)` edges resolved by qualified name.
//!
//! Resolution is deliberately conservative where ambiguity would create
//! *wrong* edges (a `.cost(...)` on an untyped receiver must never link a
//! pure matrix lookup to `Inum::cost`) and permissive where the workspace
//! leaves no room for doubt (a method name with exactly one impl anywhere
//! resolves to it). The ladder, in order:
//!
//! 1. `Type::name(...)` / `Self::name(...)` — typed qualified lookup.
//! 2. `recv.name(...)` with a receiver whose type is known from a
//!    binding (`recv: Type`) or the enclosing `impl` (`self.`): typed
//!    method lookup.
//! 3. `recv.name(...)` otherwise: unique-name fallback, unless the name
//!    is on the `COMMON_METHODS` blocklist (std-colliding or
//!    multi-impl names never resolve by bare name).
//! 4. `name(...)`: free-fn lookup, preferring a same-file definition.
//!
//! Unresolved calls simply contribute no edge — the direct-site rules
//! still catch the primitives they might have hidden, because cost/panic
//! *sites* are matched textually per file, not through the graph.

use crate::cache::{FileSummary, NO_FN};
use std::collections::BTreeMap;

/// Method names that must never resolve through the unique-name
/// fallback: std-prelude collisions and workspace names with many impls.
const COMMON_METHODS: &[&str] = &[
    "new",
    "default",
    "len",
    "is_empty",
    "clone",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "fmt",
    "eq",
    "cmp",
    "partial_cmp",
    "hash",
    "drop",
    "from",
    "into",
    "try_from",
    "try_into",
    "to_string",
    "as_ref",
    "as_mut",
    "as_str",
    "write",
    "read",
    "lock",
    "flush",
    "clear",
    "contains",
    "contains_key",
    "extend",
    "sort",
    "sort_by",
    "cost",
    "cost_plus",
    "cost_minus",
    "build",
    "open",
    "close",
    "apply",
    "run",
    "step",
    "name",
    "id",
    "with_capacity",
    "unwrap_or",
    "map",
    "and_then",
    "filter",
    "collect",
    "min",
    "max",
    "sum",
    "abs",
    "sqrt",
    "reset",
    "path",
    "snapshot",
    "restore",
    "observe",
    "get_or",
    "set",
    "take",
    "replace",
    "update",
    "add",
    "count",
    "tick",
    "start",
    "stop",
    "finish",
];

/// One fn in the workspace graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the owning [`FileSummary`].
    pub file: u32,
    /// Fn index within that file.
    pub local: u32,
    pub name: String,
    /// Receiver type (empty for free fns).
    pub receiver: String,
    pub path: String,
    pub line: u32,
    pub is_test: bool,
    pub returns_result: bool,
}

impl FnNode {
    /// `Type::name` for methods, bare `name` for free fns — the display
    /// form chain diagnostics use.
    pub fn qualified(&self) -> String {
        if self.receiver.is_empty() {
            self.name.clone()
        } else {
            format!("{}::{}", self.receiver, self.name)
        }
    }
}

/// The resolved workspace call graph.
pub struct Graph {
    pub nodes: Vec<FnNode>,
    /// `edges[caller]` → `(callee, call-site line)`, deduplicated.
    pub edges: Vec<Vec<(u32, u32)>>,
    /// Reverse edges: `redges[callee]` → `(caller, call-site line)`.
    pub redges: Vec<Vec<(u32, u32)>>,
    /// `offsets[file] + local` = node id.
    pub offsets: Vec<u32>,
}

impl Graph {
    /// Node id of fn `local` in file `file`, if the fn index is real.
    pub fn node_of(&self, file: u32, local: u32) -> Option<u32> {
        if local == NO_FN {
            return None;
        }
        let id = self.offsets.get(file as usize)? + local;
        (id < self.nodes.len() as u32).then_some(id)
    }

    /// Build the graph from per-file fact modules. `summaries` must be
    /// sorted by path — node ids and edge order are then deterministic.
    pub fn build(summaries: &[FileSummary]) -> Graph {
        let mut nodes = Vec::new();
        let mut offsets = Vec::with_capacity(summaries.len());
        for (fi, s) in summaries.iter().enumerate() {
            offsets.push(nodes.len() as u32);
            for (li, f) in s.fns.iter().enumerate() {
                nodes.push(FnNode {
                    file: fi as u32,
                    local: li as u32,
                    name: f.name.clone(),
                    receiver: f.receiver.clone(),
                    path: s.path.clone(),
                    line: f.line,
                    is_test: f.is_test,
                    returns_result: f.returns_result,
                });
            }
        }

        // Resolution tables.
        let mut methods: BTreeMap<(String, String), Vec<u32>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        let mut frees: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            let id = id as u32;
            if n.receiver.is_empty() {
                frees.entry(n.name.clone()).or_default().push(id);
            } else {
                methods
                    .entry((n.receiver.clone(), n.name.clone()))
                    .or_default()
                    .push(id);
                methods_by_name.entry(n.name.clone()).or_default().push(id);
            }
        }
        let unique = |v: Option<&Vec<u32>>| match v {
            Some(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        };

        let mut edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nodes.len()];
        for (fi, s) in summaries.iter().enumerate() {
            for c in &s.calls {
                let Some(caller) = offsets
                    .get(fi)
                    .and_then(|&o| (c.fn_idx != NO_FN).then(|| o + c.fn_idx))
                else {
                    continue;
                };
                let callee = match c.shape {
                    // Qualified or typed-receiver: exact impl lookup, then
                    // free fns for `module::fn(...)` paths.
                    2 => unique(methods.get(&(c.recv_ty.clone(), c.name.clone())))
                        .or_else(|| unique(frees.get(&c.name))),
                    1 => {
                        let typed = if c.recv_ty.is_empty() {
                            None
                        } else {
                            unique(methods.get(&(c.recv_ty.clone(), c.name.clone())))
                        };
                        typed.or_else(|| {
                            if COMMON_METHODS.contains(&c.name.as_str()) {
                                None
                            } else {
                                unique(methods_by_name.get(&c.name))
                            }
                        })
                    }
                    _ => match frees.get(&c.name) {
                        Some(v) if v.len() == 1 => Some(v[0]),
                        Some(v) => v
                            .iter()
                            .copied()
                            .find(|&id| nodes[id as usize].file == fi as u32),
                        None => None,
                    },
                };
                let Some(callee) = callee else { continue };
                if callee == caller {
                    continue; // self-recursion adds no new reachability
                }
                // Live code never reaches #[cfg(test)] items.
                if !nodes[caller as usize].is_test && nodes[callee as usize].is_test {
                    continue;
                }
                edges[caller as usize].push((callee, c.line));
            }
        }
        for list in &mut edges {
            list.sort();
            list.dedup_by_key(|&mut (callee, _)| callee);
        }
        let mut redges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nodes.len()];
        for (caller, list) in edges.iter().enumerate() {
            for &(callee, line) in list {
                redges[callee as usize].push((caller as u32, line));
            }
        }
        Graph {
            nodes,
            edges,
            redges,
            offsets,
        }
    }

    /// All nodes named `name` (methods and frees) — for the
    /// error-discipline name-level `Result` check.
    pub fn by_name<'a, 'b>(&'a self, name: &'b str) -> impl Iterator<Item = &'a FnNode> + 'a
    where
        'b: 'a,
    {
        self.nodes.iter().filter(move |n| n.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::summarize;

    fn graph_of(files: &[(&str, &str)]) -> Graph {
        let mut sums: Vec<FileSummary> = files.iter().map(|(p, s)| summarize(p, s)).collect();
        sums.sort_by(|a, b| a.path.cmp(&b.path));
        Graph::build(&sums)
    }

    #[test]
    fn cross_file_method_resolution_via_binding_type() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "pub struct Helper;\nimpl Helper { pub fn probe(&self) {} }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "fn advisor(h: &Helper) { h.probe(); }\n",
            ),
        ]);
        let advisor = g.nodes.iter().position(|n| n.name == "advisor").unwrap();
        let probe = g.nodes.iter().position(|n| n.name == "probe").unwrap() as u32;
        assert!(g.edges[advisor].iter().any(|&(c, _)| c == probe));
    }

    #[test]
    fn ambiguous_method_names_do_not_resolve() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "impl A { pub fn cost(&self) {} }\nimpl B { pub fn cost(&self) {} }\n",
            ),
            ("crates/b/src/lib.rs", "fn f(x: &Unknown) { x.cost(); }\n"),
        ]);
        let f = g.nodes.iter().position(|n| n.name == "f").unwrap();
        assert!(g.edges[f].is_empty());
    }

    #[test]
    fn test_fns_get_no_edges_from_live_code() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn live() { helper(); }\n#[cfg(test)]\nmod tests {\n fn helper() {}\n}\n",
        )]);
        let live = g.nodes.iter().position(|n| n.name == "live").unwrap();
        assert!(g.edges[live].is_empty());
    }
}
