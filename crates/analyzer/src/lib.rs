//! `pgdesign-analyzer` — an architectural lint pass over the workspace's
//! own sources.
//!
//! The repo's load-bearing invariants (advisors cost via matrix lookups
//! only; recovery never panics on corrupt bytes; f64 summation order is
//! deterministic; every `unsafe` block argues its safety; no costing
//! under a publish write guard) were previously enforced only by dynamic
//! tests, which see the paths a test happens to execute. This crate
//! makes them *structural*: a hand-rolled Rust lexer (same idiom as the
//! SQL lexer in `pgdesign-query`, no external parser) tokenizes every
//! `crates/*/src/**.rs` file into a fact base ([`facts`]), and each rule
//! ([`rules`]) is a query over those facts — Datalog-style lint-as-query,
//! evaluated per file.
//!
//! Run it with `cargo run -p pgdesign-analyzer` (or `make lint-arch`);
//! it exits non-zero if any diagnostic survives the
//! `// analyzer:allow(<rule>): <reason>` escape hatch.

#![forbid(unsafe_code)]

pub mod facts;
pub mod lexer;
pub mod rules;

pub use rules::{analyze_source, Config, Diagnostic, RULE_NAMES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Analyze every `crates/*/src/**.rs` file under `root` (the workspace
/// checkout) and return all diagnostics, sorted by path then line.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();

    let mut out = Vec::new();
    for file in &files {
        let text = fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.extend(analyze_source(&rel, &text, cfg));
    }
    out.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    Ok(out)
}

/// How many `.rs` files `analyze_workspace` would visit — for the
/// summary line.
pub fn workspace_file_count(root: &Path) -> io::Result<usize> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let dir = entry?.path();
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    Ok(files.len())
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
