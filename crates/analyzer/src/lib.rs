//! `pgdesign-analyzer` — an interprocedural architectural lint pass over
//! the workspace's own sources.
//!
//! The repo's load-bearing invariants (advisors cost via matrix lookups
//! only; recovery never panics on corrupt bytes; f64 summation order is
//! deterministic; every `unsafe` block argues its safety; no costing
//! under a publish write guard; locks acquired in one global order; no
//! dropped `Result`s on durability paths) were previously enforced only
//! per file, which sees the sites a file happens to contain. This crate
//! makes them *transitive*: a hand-rolled Rust lexer (same idiom as the
//! SQL lexer in `pgdesign-query`, no external parser) tokenizes every
//! source file into a fact base ([`facts`]), each file is condensed into
//! a cacheable fact module ([`cache`]), a workspace call graph is
//! resolved over those modules ([`graph`]), and Datalog-style derived
//! relations ([`infer`]) — `reaches_cost`, `may_panic`,
//! `holds_lock_then_acquires`, `drops_result` — are computed to fixpoint
//! by semi-naive iteration. Diagnostics for the transitive rules print
//! the full call chain.
//!
//! ## Rule scoping
//!
//! | rule             | applies to                                   | relaxed in                       |
//! |------------------|----------------------------------------------|----------------------------------|
//! | cost-purity      | everything                                   | matrix build, colt probe, durable restore (the sanctioned boundary) |
//! | panic-freedom    | decode/replay surface (`crates/durability`, `inum/persist.rs`, `query/parser.rs`) | `#[cfg(test)]`/`#[test]` spans, `examples/`, `tests/` harnesses |
//! | fp-determinism   | everything                                   | test spans                       |
//! | unsafe-audit     | everything                                   | —                                |
//! | lock-discipline  | everything                                   | —                                |
//! | lock-order       | everything                                   | test spans                       |
//! | error-discipline | durability/health paths                      | test spans                       |
//!
//! The walk covers `crates/*/src/**.rs` plus the repo-root `src/`,
//! `examples/`, and `tests/` trees; harness files (root `examples/` and
//! `tests/`) get panic-freedom's test-aware relaxation because they *are*
//! drivers, not recovery code.
//!
//! Run it with `make lint-arch`; it exits non-zero if any error-severity
//! diagnostic survives the `// analyzer:allow(<rule>): <reason>` escape
//! hatch. Per-file fact modules are cached under `target/analyzer-facts/`
//! keyed by content hash, so a warm run re-extracts only changed files
//! (the global inference always reruns — it is cross-file by nature).

#![forbid(unsafe_code)]

pub mod cache;
pub mod facts;
pub mod graph;
pub mod infer;
pub mod lexer;
pub mod rules;

pub use rules::{analyze_source, ChainLink, Config, Diagnostic, InferStats, Severity, RULE_NAMES};

use cache::{CacheStats, FileSummary};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Timing and cache accounting for one workspace run.
#[derive(Debug, Default, Clone, Copy)]
pub struct RunStats {
    /// Files walked (and summarized).
    pub files: usize,
    /// Fact modules served from the content-hash cache.
    pub cache_hits: usize,
    /// Fact modules (re-)extracted this run.
    pub extracted: usize,
    /// Total semi-naive rounds across derived relations.
    pub rounds: u32,
    /// Call-graph size.
    pub fns: usize,
    pub edges: usize,
    /// Wall-clock: extraction (incl. cache I/O) and inference.
    pub extract_ms: u128,
    pub infer_ms: u128,
}

/// Diagnostics plus run accounting.
pub struct RunReport {
    pub diags: Vec<Diagnostic>,
    pub stats: RunStats,
}

/// Every `.rs` file the analyzer covers, workspace-relative, sorted.
fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    // Repo-root trees: the binary crate's own src plus the integration
    // harnesses (panic-freedom treats the latter as test code).
    for top in ["src", "examples", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Analyze the workspace at `root` with per-file fact caching under
/// `cache_dir` (no caching when `None`).
pub fn analyze_workspace_cached(
    root: &Path,
    cfg: &Config,
    cache_dir: Option<&Path>,
) -> io::Result<RunReport> {
    let files = workspace_files(root)?;
    let mut cstats = CacheStats::default();
    let mut summaries: Vec<FileSummary> = Vec::with_capacity(files.len());
    let t0 = Instant::now();
    for file in &files {
        let text = fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        summaries.push(cache::load_or_summarize(
            cache_dir,
            &rel,
            &text,
            &mut cstats,
        ));
    }
    summaries.sort_by(|a, b| a.path.cmp(&b.path));
    let extract_ms = t0.elapsed().as_millis();

    let t1 = Instant::now();
    let (diags, istats) = rules::analyze_summaries(&summaries, cfg);
    let infer_ms = t1.elapsed().as_millis();

    Ok(RunReport {
        diags,
        stats: RunStats {
            files: files.len(),
            cache_hits: cstats.hits,
            extracted: cstats.extracted,
            rounds: istats.rounds,
            fns: istats.fns,
            edges: istats.edges,
            extract_ms,
            infer_ms,
        },
    })
}

/// Analyze the workspace without a fact cache; diagnostics only.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<Diagnostic>> {
    Ok(analyze_workspace_cached(root, cfg, None)?.diags)
}

/// How many `.rs` files the walk visits — for the summary line.
pub fn workspace_file_count(root: &Path) -> io::Result<usize> {
    Ok(workspace_files(root)?.len())
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
