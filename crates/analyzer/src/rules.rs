//! The rule set: five architectural invariants evaluated as queries over
//! a file's [`Facts`], each returning `file:line` diagnostics.
//!
//! Every rule documents *why* the invariant is load-bearing for the
//! design described in the paper reproduction (see each rule fn's
//! rustdoc). Violations can be waived per-site with
//! `// analyzer:allow(<rule>): <reason>` on the preceding line (or
//! trailing on the same line); the reason is mandatory — an allow without
//! one is itself a diagnostic.

use crate::facts::{extract, Facts, NON_INDEX_KEYWORDS};
use crate::lexer::Kind;

/// The rule names recognised by `analyzer:allow(...)`.
pub const RULE_NAMES: &[&str] = &[
    "cost-purity",
    "panic-freedom",
    "fp-determinism",
    "unsafe-audit",
    "lock-discipline",
];

/// One finding, printed as `path:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// Per-run scoping: which modules a rule covers or exempts. Paths are
/// workspace-relative with `/` separators; a trailing `/` means "prefix".
pub struct Config {
    /// Modules allowed to call the costing entry points directly: the
    /// matrix build internals, the colt probe path, and durable restore.
    pub cost_purity_allowed: Vec<String>,
    /// Modules held to panic-freedom: the decode/replay surface that must
    /// turn corrupt bytes into `DecodeError`, never a panic.
    pub panic_freedom_scope: Vec<String>,
}

impl Config {
    /// The scoping for this workspace (the defaults `make lint-arch`
    /// runs with).
    pub fn workspace() -> Self {
        Config {
            cost_purity_allowed: vec![
                "crates/inum/src/".to_string(),
                "crates/colt/src/".to_string(),
                "crates/core/src/durable.rs".to_string(),
            ],
            panic_freedom_scope: vec![
                "crates/durability/src/".to_string(),
                "crates/inum/src/persist.rs".to_string(),
                "crates/query/src/parser.rs".to_string(),
            ],
        }
    }
}

fn path_matches(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p.as_str()))
}

/// Analyze one source file: extract facts, run every rule, apply the
/// allow directives, and return the surviving diagnostics sorted by line.
pub fn analyze_source(path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let facts = extract(src);
    let mut raw: Vec<(u32, &'static str, String)> = Vec::new();
    cost_purity(path, &facts, cfg, &mut raw);
    panic_freedom(path, &facts, cfg, &mut raw);
    fp_determinism(&facts, &mut raw);
    unsafe_audit(&facts, &mut raw);
    lock_discipline(&facts, &mut raw);

    // Resolve each allow to the first code line at or below its comment.
    let sig_lines: Vec<u32> = facts.sig.iter().map(|&j| facts.tokens[j].line).collect();
    let target_of =
        |allow_line: u32| -> Option<u32> { sig_lines.iter().copied().find(|&l| l >= allow_line) };
    let mut valid_allows: Vec<(String, u32)> = Vec::new();
    let mut out: Vec<Diagnostic> = Vec::new();
    for a in &facts.allows {
        if !RULE_NAMES.contains(&a.rule.as_str()) {
            out.push(Diagnostic {
                path: path.to_string(),
                line: a.line,
                rule: "allow-syntax",
                msg: format!(
                    "unknown rule `{}` in analyzer:allow (known: {})",
                    a.rule,
                    RULE_NAMES.join(", ")
                ),
            });
            continue;
        }
        if !a.has_reason {
            out.push(Diagnostic {
                path: path.to_string(),
                line: a.line,
                rule: "allow-syntax",
                msg: format!(
                    "analyzer:allow({}) without a reason — write \
                     `// analyzer:allow({}): <why this site is sound>`",
                    a.rule, a.rule
                ),
            });
            continue;
        }
        if let Some(t) = target_of(a.line) {
            valid_allows.push((a.rule.clone(), t));
        }
    }

    raw.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    raw.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    for (line, rule, msg) in raw {
        let waived = valid_allows.iter().any(|(r, l)| r == rule && *l == line);
        if !waived {
            out.push(Diagnostic {
                path: path.to_string(),
                line,
                rule,
                msg,
            });
        }
    }
    out.sort_by_key(|d| d.line);
    out
}

/// **cost-purity** — advisors, interactive sessions, and snapshot readers
/// must price candidates from cost-*matrix lookups*, never by invoking
/// the what-if optimizer themselves. The whole economics of the design
/// (PRs 2–5 pin "zero `Inum::cost` calls" in advisor steady state with
/// runtime counters) rests on costing being a build-time event captured
/// in the matrix; a stray `.inum()`/`Inum::cost`/`inum_longlived` call on
/// a read path silently reintroduces per-question optimizer latency and
/// breaks the journaled-edit accounting that durability replays. Only
/// the matrix build internals, the colt probe path, and durable restore
/// are costed on purpose — everything else needs an explicit allow.
fn cost_purity(
    path: &str,
    facts: &Facts,
    cfg: &Config,
    out: &mut Vec<(u32, &'static str, String)>,
) {
    if path_matches(path, &cfg.cost_purity_allowed) {
        return;
    }
    let n = facts.sig.len();
    for i in 0..n {
        let Some(t) = facts.tok(i) else { break };
        if facts.in_test(t.line) {
            continue;
        }
        let hit = if t.is_punct(".")
            && facts.tok(i + 1).is_some_and(|u| u.is_ident("inum"))
            && facts.tok(i + 2).is_some_and(|u| u.is_punct("("))
        {
            Some((
                facts.tokens[facts.sig[i]].line,
                ".inum() grants raw optimizer access",
            ))
        } else if t.is_ident("inum_longlived")
            && facts.tok(i + 1).is_some_and(|u| u.is_punct("("))
            && !facts
                .tok(i.wrapping_sub(1))
                .is_some_and(|u| u.is_ident("fn"))
        {
            Some((t.line, "inum_longlived() costs via the optimizer"))
        } else if t.is_ident("Inum")
            && facts.tok(i + 1).is_some_and(|u| u.is_punct("::"))
            && facts.tok(i + 2).is_some_and(|u| u.is_ident("cost"))
        {
            Some((t.line, "Inum::cost invokes the what-if optimizer"))
        } else if t.is_ident("inum")
            && facts.tok(i + 1).is_some_and(|u| u.is_punct("."))
            && facts.tok(i + 2).is_some_and(|u| u.is_ident("cost"))
            && facts.tok(i + 3).is_some_and(|u| u.is_punct("("))
        {
            Some((t.line, "direct cost() call on an Inum handle"))
        } else {
            None
        };
        if let Some((line, what)) = hit {
            out.push((
                line,
                "cost-purity",
                format!(
                    "{what}; read paths must use cost-matrix lookups \
                     (allowed modules: matrix build, colt probe, durable restore)"
                ),
            ));
        }
    }
}

/// **panic-freedom** — the decode/replay surface (`crates/durability`,
/// `inum/src/persist.rs`) parses bytes that crashed mid-write, bit-rotted
/// on disk, or were produced by a different build. The recovery ladder's
/// contract (PR 7: "degrades gracefully, never wrongly") requires every
/// malformed input to surface as a `DecodeError`/cold-start, because a
/// panic during open takes down the session *before* it can fall back to
/// a cold build. `unwrap`/`expect`/`panic!`/`unreachable!` and unchecked
/// indexing are all panics waiting on the first corrupt byte.
fn panic_freedom(
    path: &str,
    facts: &Facts,
    cfg: &Config,
    out: &mut Vec<(u32, &'static str, String)>,
) {
    if !path_matches(path, &cfg.panic_freedom_scope) {
        return;
    }
    let n = facts.sig.len();
    for i in 0..n {
        let Some(t) = facts.tok(i) else { break };
        if facts.in_test(t.line) {
            continue;
        }
        if t.is_punct(".") && facts.tok(i + 2).is_some_and(|u| u.is_punct("(")) {
            if let Some(m) = facts.tok(i + 1) {
                if m.is_ident("unwrap") || m.is_ident("expect") {
                    out.push((
                        m.line,
                        "panic-freedom",
                        format!(
                            ".{}() panics on corrupt input; return a decode error instead",
                            m.text
                        ),
                    ));
                }
            }
        }
        if t.kind == Kind::Ident
            && facts.tok(i + 1).is_some_and(|u| u.is_punct("!"))
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
        {
            out.push((
                t.line,
                "panic-freedom",
                format!(
                    "{}! is unreachable only until the first corrupt snapshot",
                    t.text
                ),
            ));
        }
        if t.is_punct("[") {
            let prev = facts.tok(i.wrapping_sub(1));
            let is_index = prev.is_some_and(|p| {
                (p.kind == Kind::Ident && !NON_INDEX_KEYWORDS.contains(&p.text.as_str()))
                    || p.kind == Kind::Number
                    || p.is_punct("]")
                    || p.is_punct(")")
                    || p.is_punct("?")
            });
            if is_index {
                out.push((
                    t.line,
                    "panic-freedom",
                    "unchecked indexing panics out of range; use .get()/.get_mut() and map \
                     the None to a decode error"
                        .to_string(),
                ));
            }
        }
    }
}

/// **fp-determinism** — agreement proptests pin interactive-vs-offline
/// and restore-vs-rebuild totals to ≤1e-12, which only holds if f64
/// summation order is identical on every run. `HashMap`/`HashSet`
/// iteration order is randomised per-process (std `RandomState`), so any
/// f64 accumulation — or worse, MILP variable numbering — driven by hash
/// iteration makes results run-dependent. Cost-accumulating functions
/// must iterate `BTreeMap`/sorted vectors.
fn fp_determinism(facts: &Facts, out: &mut Vec<(u32, &'static str, String)>) {
    for f in &facts.fns {
        let Some((a, b)) = f.body else { continue };
        if !f.mentions_f64 || facts.in_test(f.line) {
            continue;
        }
        for l in &facts.for_loops {
            if l.at < a || l.at >= b || facts.in_test(l.line) {
                continue;
            }
            let hashy = l
                .iterand_idents
                .iter()
                .any(|id| id == "HashMap" || id == "HashSet" || facts.hashy_names.contains(id));
            if hashy {
                out.push((
                    l.line,
                    "fp-determinism",
                    format!(
                        "fn `{}` works with f64 costs but iterates a hash-ordered \
                         collection; summation order must be fixed — use BTreeMap or \
                         a sorted Vec",
                        f.name
                    ),
                ));
            }
        }
        for c in &facts.iter_calls {
            if c.at < a || c.at >= b || facts.in_test(c.line) {
                continue;
            }
            if facts.hashy_names.contains(&c.receiver) {
                out.push((
                    c.line,
                    "fp-determinism",
                    format!(
                        "fn `{}` works with f64 costs but `{}.{}()` yields hash order; \
                         use BTreeMap or a sorted Vec",
                        f.name, c.receiver, c.method
                    ),
                ));
            }
        }
    }
}

/// **unsafe-audit** — the workspace's unsafe surface is tiny (the
/// self-referential session core) and must stay explainable: every
/// `unsafe` block carries a `// SAFETY:` comment within the six lines
/// above it stating the invariant it relies on, so a reviewer can check
/// the argument instead of re-deriving it.
fn unsafe_audit(facts: &Facts, out: &mut Vec<(u32, &'static str, String)>) {
    for u in &facts.unsafe_blocks {
        if !u.has_safety {
            out.push((
                u.line,
                "unsafe-audit",
                "unsafe block without a `// SAFETY:` comment in the six lines above it".to_string(),
            ));
        }
    }
}

/// **lock-discipline** — `PublishSlot::publish` holds the slot's RwLock
/// write guard; every reader `refresh()` blocks on that guard. Costing
/// work (optimizer calls) or a nested `publish()` while the guard is
/// live turns a microsecond pointer swap into a reader-visible stall —
/// and a nested publish on the same slot self-deadlocks. Compute first,
/// then take the guard for the swap alone.
fn lock_discipline(facts: &Facts, out: &mut Vec<(u32, &'static str, String)>) {
    for g in &facts.guards {
        for i in g.start..g.end {
            let Some(t) = facts.tok(i) else { break };
            let hit = if t.is_ident("publish")
                && facts.tok(i + 1).is_some_and(|u| u.is_punct("("))
                && !facts
                    .tok(i.wrapping_sub(1))
                    .is_some_and(|u| u.is_ident("fn"))
            {
                Some("publish() while a write guard is live can self-deadlock")
            } else if t.is_punct(".")
                && facts.tok(i + 1).is_some_and(|u| u.is_ident("inum"))
                && facts.tok(i + 2).is_some_and(|u| u.is_punct("("))
            {
                Some("optimizer access while a write guard is live stalls every reader")
            } else if t.is_ident("inum_longlived")
                && facts.tok(i + 1).is_some_and(|u| u.is_punct("("))
                && !facts
                    .tok(i.wrapping_sub(1))
                    .is_some_and(|u| u.is_ident("fn"))
            {
                Some("costing while a write guard is live stalls every reader")
            } else if t.is_ident("Inum")
                && facts.tok(i + 1).is_some_and(|u| u.is_punct("::"))
                && facts.tok(i + 2).is_some_and(|u| u.is_ident("cost"))
            {
                Some("Inum::cost while a write guard is live stalls every reader")
            } else {
                None
            };
            if let Some(what) = hit {
                out.push((
                    t.line,
                    "lock-discipline",
                    format!("{what} (guard `{}` taken at line {})", g.name, g.line),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        analyze_source(path, src, &Config::workspace())
    }

    #[test]
    fn cost_purity_flags_and_allows() {
        let src = "fn advisor(m: &M) -> f64 { m.inum().cost(&q) }\n";
        let d = run("crates/cophy/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "cost-purity");
        assert_eq!(d[0].line, 1);
        // Same site inside an allowed module: clean.
        assert!(run("crates/inum/src/x.rs", src).is_empty());
        // Same site with a reasoned allow: clean.
        let allowed = "// analyzer:allow(cost-purity): counted probe path\n\
                       fn advisor(m: &M) -> f64 { m.inum().cost(&q) }\n";
        assert!(run("crates/cophy/src/x.rs", allowed).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_diagnostic() {
        let src = "// analyzer:allow(cost-purity)\n\
                   fn advisor(m: &M) -> f64 { m.inum().cost(&q) }\n";
        let d = run("crates/cophy/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == "allow-syntax"));
        // The bare allow does not waive the violation either.
        assert!(d.iter().any(|d| d.rule == "cost-purity"));
    }

    #[test]
    fn panic_freedom_scope_and_test_skip() {
        let src = "fn decode(b: &[u8]) -> u32 { b[0] as u32 }\n\
                   #[cfg(test)]\nmod tests { fn t(b: &[u8]) { b[0]; b.get(1).unwrap(); } }\n";
        let d = run("crates/durability/src/codec.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "panic-freedom");
        assert_eq!(d[0].line, 1);
        // Out of scope: clean.
        assert!(run("crates/cophy/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_freedom_ignores_types_attrs_and_macros() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\n\
                   fn f() -> Vec<u8> { vec![1, 2] }\n\
                   fn g(x: &mut [u8]) -> &[u8] { x }\n";
        assert!(run("crates/durability/src/x.rs", src).is_empty());
    }

    #[test]
    fn fp_determinism_flags_hash_iteration_in_f64_fns() {
        let src = "fn total(m: &HashMap<u32, f64>) -> f64 {\n\
                     let mut s = 0.0f64;\n\
                     for (_, v) in m.iter() { s += v; }\n\
                     s\n\
                   }\n\
                   fn count(m: &HashMap<u32, u32>) -> usize { m.len() }\n";
        let d = run("crates/cophy/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "fp-determinism");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn fp_determinism_accepts_btreemap() {
        let src = "fn total(m: &BTreeMap<u32, f64>) -> f64 {\n\
                     let mut s = 0.0f64;\n\
                     for (_, v) in m.iter() { s += v; }\n\
                     s\n\
                   }\n";
        assert!(run("crates/cophy/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_audit_wants_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let d = run("crates/core/src/x.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unsafe-audit");
        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: p is valid for reads.\n    unsafe { *p }\n}\n";
        assert!(run("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn lock_discipline_flags_costing_under_guard() {
        let src = "fn publish_new(&self) {\n\
                     let mut cur = self.current.write();\n\
                     let c = self.matrix.inum().cost(&q);\n\
                     *cur = c;\n\
                   }\n";
        let d = run("crates/inum/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "lock-discipline");
        assert_eq!(d[0].line, 3);
        let good = "fn publish_new(&self) {\n\
                      let c = self.matrix.inum().cost(&q);\n\
                      let mut cur = self.current.write();\n\
                      *cur = c;\n\
                    }\n";
        assert!(run("crates/inum/src/x.rs", good).is_empty());
    }
}
