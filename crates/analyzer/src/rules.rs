//! The rule set: architectural invariants evaluated as queries over the
//! fact base — per-file direct rules plus interprocedural rules derived
//! from the workspace call graph.
//!
//! Every rule documents *why* the invariant is load-bearing for the
//! design described in the paper reproduction (see each rule fn's
//! rustdoc). Violations can be waived with
//! `// analyzer:allow(<rule>): <reason>` on the preceding line (or
//! trailing on the same line); the reason is mandatory — an allow without
//! one is itself a diagnostic. Allows have *chain semantics* for the
//! interprocedural rules: an allow anywhere inside a function waives that
//! function for chain purposes, so every call chain through it is
//! suppressed — and an allow that suppresses nothing at all is reported
//! as a warning-level `dead-allow` finding so the escape-hatch inventory
//! cannot rot.

use crate::cache::{FileSummary, NO_FN};
use crate::facts::{Facts, NON_INDEX_KEYWORDS};
use crate::graph::Graph;
use crate::infer::{reach, Derived};
use crate::lexer::Kind;
use std::collections::{BTreeMap, BTreeSet};

/// The rule names recognised by `analyzer:allow(...)`.
pub const RULE_NAMES: &[&str] = &[
    "cost-purity",
    "panic-freedom",
    "fp-determinism",
    "unsafe-audit",
    "lock-discipline",
    "lock-order",
    "error-discipline",
];

/// Finding severity: errors gate the build, warnings only report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

/// One hop of an interprocedural diagnostic's call chain (the final hop
/// is the offending site itself, `func == "<site>"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLink {
    pub func: String,
    pub path: String,
    pub line: u32,
}

/// One finding, printed as `path:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
    pub severity: Severity,
    /// Call chain for interprocedural findings; empty for direct sites.
    pub chain: Vec<ChainLink>,
}

impl Diagnostic {
    fn new(path: &str, line: u32, rule: &'static str, msg: String) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line,
            rule,
            msg,
            severity: Severity::Error,
            chain: Vec::new(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// Per-run scoping: which modules a rule covers or exempts. Paths are
/// workspace-relative with `/` separators; a trailing `/` means "prefix".
pub struct Config {
    /// Modules allowed to call the costing entry points directly: the
    /// matrix build internals, the colt probe path, and durable restore.
    /// These are also the *sanctioned boundary* of the transitive rule —
    /// reachability does not propagate out of them, because calling their
    /// public API (e.g. `CostMatrix::add_candidate`) is the metered,
    /// journaled way to cost.
    pub cost_purity_allowed: Vec<String>,
    /// Modules held to panic-freedom: the decode/replay surface that must
    /// turn corrupt bytes into `DecodeError`, never a panic.
    pub panic_freedom_scope: Vec<String>,
    /// Modules held to error-discipline: the durability/health paths
    /// where a dropped `Result` is a log with a hole.
    pub error_discipline_scope: Vec<String>,
    /// The workspace lock order, outermost first; each group names one
    /// lock (a receiver identity may have aliases, e.g. the store mutex
    /// seen as `store`, `disk`, or through `SharedMemStore::lock`).
    /// Acquiring a lock of an earlier group — or re-acquiring the same
    /// lock — while holding a later one is a `lock-order` violation.
    pub lock_order: Vec<Vec<String>>,
}

impl Config {
    /// The scoping for this workspace (the defaults `make lint-arch`
    /// runs with).
    pub fn workspace() -> Self {
        Config {
            cost_purity_allowed: vec![
                "crates/inum/src/".to_string(),
                "crates/colt/src/".to_string(),
                "crates/core/src/durable.rs".to_string(),
            ],
            panic_freedom_scope: vec![
                "crates/durability/src/".to_string(),
                "crates/inum/src/persist.rs".to_string(),
                "crates/query/src/parser.rs".to_string(),
            ],
            error_discipline_scope: vec![
                "crates/durability/src/".to_string(),
                "crates/core/src/durable.rs".to_string(),
                "crates/core/src/health.rs".to_string(),
                "crates/inum/src/persist.rs".to_string(),
            ],
            lock_order: vec![
                vec![
                    "store".to_string(),
                    "disk".to_string(),
                    "mem".to_string(),
                    "SharedMemStore".to_string(),
                ],
                vec!["cache".to_string()],
                vec!["current".to_string()],
            ],
        }
    }
}

fn path_matches(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p.as_str()))
}

// ---- direct site extraction ---------------------------------------------

/// **cost-purity** sites — advisors, interactive sessions, and snapshot
/// readers must price candidates from cost-*matrix lookups*, never by
/// invoking the what-if optimizer themselves. The whole economics of the
/// design (PRs 2–5 pin "zero `Inum::cost` calls" in advisor steady state
/// with runtime counters) rests on costing being a build-time event
/// captured in the matrix; a stray `.inum()`/`Inum::cost`/`inum_longlived`
/// call on a read path silently reintroduces per-question optimizer
/// latency and breaks the journaled-edit accounting that durability
/// replays. Returns `(sig index, line, message)` for every match outside
/// test spans; path scoping is the caller's business.
pub(crate) fn cost_sites(facts: &Facts) -> Vec<(usize, u32, String)> {
    let mut out = Vec::new();
    let n = facts.sig.len();
    for i in 0..n {
        let Some(t) = facts.tok(i) else { break };
        if facts.in_test(t.line) {
            continue;
        }
        let hit = if t.is_punct(".")
            && facts.tok(i + 1).is_some_and(|u| u.is_ident("inum"))
            && facts.tok(i + 2).is_some_and(|u| u.is_punct("("))
        {
            Some((
                facts.tokens[facts.sig[i]].line,
                ".inum() grants raw optimizer access",
            ))
        } else if t.is_ident("inum_longlived")
            && facts.tok(i + 1).is_some_and(|u| u.is_punct("("))
            && !facts
                .tok(i.wrapping_sub(1))
                .is_some_and(|u| u.is_ident("fn"))
        {
            Some((t.line, "inum_longlived() costs via the optimizer"))
        } else if t.is_ident("Inum")
            && facts.tok(i + 1).is_some_and(|u| u.is_punct("::"))
            && facts.tok(i + 2).is_some_and(|u| u.is_ident("cost"))
        {
            Some((t.line, "Inum::cost invokes the what-if optimizer"))
        } else if t.is_ident("inum")
            && facts.tok(i + 1).is_some_and(|u| u.is_punct("."))
            && facts.tok(i + 2).is_some_and(|u| u.is_ident("cost"))
            && facts.tok(i + 3).is_some_and(|u| u.is_punct("("))
        {
            Some((t.line, "direct cost() call on an Inum handle"))
        } else {
            None
        };
        if let Some((line, what)) = hit {
            out.push((
                i,
                line,
                format!(
                    "{what}; read paths must use cost-matrix lookups \
                     (allowed modules: matrix build, colt probe, durable restore)"
                ),
            ));
        }
    }
    out
}

/// **panic-freedom** sites — the decode/replay surface parses bytes that
/// crashed mid-write, bit-rotted on disk, or were produced by a different
/// build. The recovery ladder's contract (PR 7: "degrades gracefully,
/// never wrongly") requires every malformed input to surface as a
/// `DecodeError`/cold-start, because a panic during open takes down the
/// session *before* it can fall back to a cold build.
/// `unwrap`/`expect`/`panic!`/`unreachable!` and unchecked indexing are
/// all panics waiting on the first corrupt byte.
pub(crate) fn panic_sites(facts: &Facts) -> Vec<(usize, u32, String)> {
    let mut out = Vec::new();
    let n = facts.sig.len();
    for i in 0..n {
        let Some(t) = facts.tok(i) else { break };
        if facts.in_test(t.line) {
            continue;
        }
        if t.is_punct(".") && facts.tok(i + 2).is_some_and(|u| u.is_punct("(")) {
            if let Some(m) = facts.tok(i + 1) {
                if m.is_ident("unwrap") || m.is_ident("expect") {
                    out.push((
                        i,
                        m.line,
                        format!(
                            ".{}() panics on corrupt input; return a decode error instead",
                            m.text
                        ),
                    ));
                }
            }
        }
        if t.kind == Kind::Ident
            && facts.tok(i + 1).is_some_and(|u| u.is_punct("!"))
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
        {
            out.push((
                i,
                t.line,
                format!(
                    "{}! is unreachable only until the first corrupt snapshot",
                    t.text
                ),
            ));
        }
        if t.is_punct("[") {
            let prev = facts.tok(i.wrapping_sub(1));
            let is_index = prev.is_some_and(|p| {
                (p.kind == Kind::Ident && !NON_INDEX_KEYWORDS.contains(&p.text.as_str()))
                    || p.kind == Kind::Number
                    || p.is_punct("]")
                    || p.is_punct(")")
                    || p.is_punct("?")
            });
            if is_index {
                out.push((
                    i,
                    t.line,
                    "unchecked indexing panics out of range; use .get()/.get_mut() and map \
                     the None to a decode error"
                        .to_string(),
                ));
            }
        }
    }
    out
}

/// The purely file-local rules: fp-determinism, unsafe-audit, and
/// lock-discipline — computed once at extraction and cached with the
/// fact module.
pub(crate) fn local_diags(facts: &Facts) -> Vec<(u32, &'static str, String)> {
    let mut out = Vec::new();
    fp_determinism(facts, &mut out);
    unsafe_audit(facts, &mut out);
    lock_discipline(facts, &mut out);
    out
}

/// **fp-determinism** — agreement proptests pin interactive-vs-offline
/// and restore-vs-rebuild totals to ≤1e-12, which only holds if f64
/// summation order is identical on every run. `HashMap`/`HashSet`
/// iteration order is randomised per-process (std `RandomState`), so any
/// f64 accumulation — or worse, MILP variable numbering — driven by hash
/// iteration makes results run-dependent. Cost-accumulating functions
/// must iterate `BTreeMap`/sorted vectors.
fn fp_determinism(facts: &Facts, out: &mut Vec<(u32, &'static str, String)>) {
    for f in &facts.fns {
        let Some((a, b)) = f.body else { continue };
        if !f.mentions_f64 || facts.in_test(f.line) {
            continue;
        }
        for l in &facts.for_loops {
            if l.at < a || l.at >= b || facts.in_test(l.line) {
                continue;
            }
            let hashy = l
                .iterand_idents
                .iter()
                .any(|id| id == "HashMap" || id == "HashSet" || facts.hashy_names.contains(id));
            if hashy {
                out.push((
                    l.line,
                    "fp-determinism",
                    format!(
                        "fn `{}` works with f64 costs but iterates a hash-ordered \
                         collection; summation order must be fixed — use BTreeMap or \
                         a sorted Vec",
                        f.name
                    ),
                ));
            }
        }
        for c in &facts.iter_calls {
            if c.at < a || c.at >= b || facts.in_test(c.line) {
                continue;
            }
            if facts.hashy_names.contains(&c.receiver) {
                out.push((
                    c.line,
                    "fp-determinism",
                    format!(
                        "fn `{}` works with f64 costs but `{}.{}()` yields hash order; \
                         use BTreeMap or a sorted Vec",
                        f.name, c.receiver, c.method
                    ),
                ));
            }
        }
    }
}

/// **unsafe-audit** — the workspace's unsafe surface is tiny (the
/// self-referential session core) and must stay explainable: every
/// `unsafe` block carries a `// SAFETY:` comment within the six lines
/// above it stating the invariant it relies on, so a reviewer can check
/// the argument instead of re-deriving it.
fn unsafe_audit(facts: &Facts, out: &mut Vec<(u32, &'static str, String)>) {
    for u in &facts.unsafe_blocks {
        if !u.has_safety {
            out.push((
                u.line,
                "unsafe-audit",
                "unsafe block without a `// SAFETY:` comment in the six lines above it".to_string(),
            ));
        }
    }
}

/// **lock-discipline** — `PublishSlot::publish` holds the slot's RwLock
/// write guard; every reader `refresh()` blocks on that guard. Costing
/// work (optimizer calls) or a nested `publish()` while the guard is
/// live turns a microsecond pointer swap into a reader-visible stall —
/// and a nested publish on the same slot self-deadlocks. Compute first,
/// then take the guard for the swap alone.
fn lock_discipline(facts: &Facts, out: &mut Vec<(u32, &'static str, String)>) {
    for g in &facts.guards {
        for i in g.start..g.end {
            let Some(t) = facts.tok(i) else { break };
            let hit = if t.is_ident("publish")
                && facts.tok(i + 1).is_some_and(|u| u.is_punct("("))
                && !facts
                    .tok(i.wrapping_sub(1))
                    .is_some_and(|u| u.is_ident("fn"))
            {
                Some("publish() while a write guard is live can self-deadlock")
            } else if t.is_punct(".")
                && facts.tok(i + 1).is_some_and(|u| u.is_ident("inum"))
                && facts.tok(i + 2).is_some_and(|u| u.is_punct("("))
            {
                Some("optimizer access while a write guard is live stalls every reader")
            } else if t.is_ident("inum_longlived")
                && facts.tok(i + 1).is_some_and(|u| u.is_punct("("))
                && !facts
                    .tok(i.wrapping_sub(1))
                    .is_some_and(|u| u.is_ident("fn"))
            {
                Some("costing while a write guard is live stalls every reader")
            } else if t.is_ident("Inum")
                && facts.tok(i + 1).is_some_and(|u| u.is_punct("::"))
                && facts.tok(i + 2).is_some_and(|u| u.is_ident("cost"))
            {
                Some("Inum::cost while a write guard is live stalls every reader")
            } else {
                None
            };
            if let Some(what) = hit {
                out.push((
                    t.line,
                    "lock-discipline",
                    format!("{what} (guard `{}` taken at line {})", g.name, g.line),
                ));
            }
        }
    }
}

// ---- per-file analysis ---------------------------------------------------

/// Direct (non-interprocedural) raw findings for one file summary, path
/// scoping applied, deduplicated by `(line, rule)`.
fn direct_raw(s: &FileSummary, cfg: &Config) -> Vec<(u32, &'static str, String)> {
    let mut raw: Vec<(u32, &'static str, String)> = Vec::new();
    if !path_matches(&s.path, &cfg.cost_purity_allowed) {
        for x in &s.cost_sites {
            raw.push((x.line, "cost-purity", x.msg.clone()));
        }
    }
    if path_matches(&s.path, &cfg.panic_freedom_scope) && !s.harness {
        for x in &s.panic_sites {
            raw.push((x.line, "panic-freedom", x.msg.clone()));
        }
    }
    for d in &s.local_diags {
        let rule = RULE_NAMES
            .iter()
            .copied()
            .find(|r| *r == d.rule)
            .unwrap_or("fp-determinism");
        raw.push((d.line, rule, d.msg.clone()));
    }
    raw.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    raw.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    raw
}

/// Allow-syntax findings plus the file's valid allows (known rule, with
/// reason, resolved to a target line).
fn file_allows(s: &FileSummary, out: &mut Vec<Diagnostic>) -> Vec<(usize, bool)> {
    let mut valid = Vec::new();
    for (i, a) in s.allows.iter().enumerate() {
        if !RULE_NAMES.contains(&a.rule.as_str()) {
            out.push(Diagnostic::new(
                &s.path,
                a.line,
                "allow-syntax",
                format!(
                    "unknown rule `{}` in analyzer:allow (known: {})",
                    a.rule,
                    RULE_NAMES.join(", ")
                ),
            ));
            continue;
        }
        if !a.has_reason {
            out.push(Diagnostic::new(
                &s.path,
                a.line,
                "allow-syntax",
                format!(
                    "analyzer:allow({}) without a reason — write \
                     `// analyzer:allow({}): <why this site is sound>`",
                    a.rule, a.rule
                ),
            ));
            continue;
        }
        if a.target_line != 0 {
            valid.push((i, false));
        }
    }
    valid
}

/// Analyze one source file in isolation: direct rules only, line-exact
/// allows, no call-graph context (the single-file entry point the golden
/// fixtures and unit tests exercise; `make lint-arch` runs
/// [`analyze_summaries`] over the whole workspace instead).
pub fn analyze_source(path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let s = crate::cache::summarize(path, src);
    let mut out: Vec<Diagnostic> = Vec::new();
    let valid = file_allows(&s, &mut out);
    let raw = direct_raw(&s, cfg);
    for (line, rule, msg) in raw {
        let waived = valid
            .iter()
            .any(|&(i, _)| s.allows[i].rule == rule && s.allows[i].target_line == line);
        if !waived {
            out.push(Diagnostic::new(path, line, rule, msg));
        }
    }
    out.sort_by_key(|d| d.line);
    out
}

// ---- interprocedural analysis -------------------------------------------

/// Fn/method names whose return value is a `Result` by std contract —
/// the error-discipline rule's knowledge of I/O surfaces the call graph
/// cannot see into.
const KNOWN_RESULT_FNS: &[&str] = &[
    "sync_all",
    "sync_data",
    "flush",
    "write_all",
    "read_exact",
    "set_len",
    "create_dir",
    "create_dir_all",
    "remove_file",
    "remove_dir_all",
    "rename",
    "persist",
    "checkpoint",
];

/// Fixpoint accounting for the stats line.
#[derive(Debug, Default, Clone, Copy)]
pub struct InferStats {
    /// Total semi-naive rounds across all derived relations.
    pub rounds: u32,
    /// Nodes in the workspace call graph.
    pub fns: usize,
    /// Resolved call edges.
    pub edges: usize,
}

/// A global allow record with usage tracking for dead-allow detection.
struct AllowRec {
    file: usize,
    rule: String,
    line: u32,
    target_line: u32,
    /// Graph node the allow covers (an allow anywhere inside a fn covers
    /// the fn for chain semantics).
    node: Option<u32>,
    used: bool,
}

/// Analyze the whole workspace from per-file fact modules: direct rules,
/// the derived transitive relations, and dead-allow accounting.
/// `summaries` must be sorted by path.
pub fn analyze_summaries(summaries: &[FileSummary], cfg: &Config) -> (Vec<Diagnostic>, InferStats) {
    let g = Graph::build(summaries);
    let mut out: Vec<Diagnostic> = Vec::new();

    // Allows, globally, with graph nodes attached.
    let mut allows: Vec<AllowRec> = Vec::new();
    for (fi, s) in summaries.iter().enumerate() {
        for (ai, _) in file_allows(s, &mut out) {
            let a = &s.allows[ai];
            allows.push(AllowRec {
                file: fi,
                rule: a.rule.clone(),
                line: a.line,
                target_line: a.target_line,
                node: g.node_of(fi as u32, a.fn_idx),
                used: false,
            });
        }
    }
    let covered = |allows: &[AllowRec], rule: &str, node: u32| -> Option<usize> {
        allows
            .iter()
            .position(|a| a.rule == rule && a.node == Some(node))
    };

    // Direct findings with line-exact allow application.
    for (fi, s) in summaries.iter().enumerate() {
        for (line, rule, msg) in direct_raw(s, cfg) {
            let waiver = allows
                .iter()
                .position(|a| a.file == fi && a.rule == rule && a.target_line == line);
            match waiver {
                Some(i) => allows[i].used = true,
                None => out.push(Diagnostic::new(&s.path, line, rule, msg)),
            }
        }
    }

    let mut stats = InferStats {
        rounds: 0,
        fns: g.nodes.len(),
        edges: g.edges.iter().map(|e| e.len()).sum(),
    };

    // Seeds and per-fn first-site tables for the two site relations.
    let site_table = |pick: fn(&FileSummary) -> &Vec<crate::cache::SiteSum>| {
        let mut first: BTreeMap<u32, u32> = BTreeMap::new();
        for (fi, s) in summaries.iter().enumerate() {
            for x in pick(s) {
                if let Some(node) = g.node_of(fi as u32, x.fn_idx) {
                    if g.nodes[node as usize].is_test {
                        continue;
                    }
                    first.entry(node).or_insert(x.line);
                }
            }
        }
        first
    };
    let cost_seed_sites = site_table(|s| &s.cost_sites);
    let panic_seed_sites = site_table(|s| &s.panic_sites);

    // reaches_cost: blocked at the sanctioned boundary (cost-allowed
    // modules), at tests, and at allow-covered fns (chain semantics).
    {
        let seeds: Vec<u32> = cost_seed_sites.keys().copied().collect();
        let mut blocked: BTreeSet<u32> = BTreeSet::new();
        for (id, n) in g.nodes.iter().enumerate() {
            if n.is_test || path_matches(&n.path, &cfg.cost_purity_allowed) {
                blocked.insert(id as u32);
            }
        }
        for a in &allows {
            if a.rule == "cost-purity" {
                if let Some(n) = a.node {
                    blocked.insert(n);
                }
            }
        }
        let derived = reach(&seeds, &blocked, &g.redges);
        stats.rounds += derived.rounds;
        // An allow that cuts a live chain is in use.
        for a in &mut allows {
            if a.rule == "cost-purity" && a.node.is_some_and(|n| derived.holds(n)) {
                a.used = true;
            }
        }
        for (&node, via) in &derived.facts {
            if via.is_none() {
                continue; // seeds carry their own direct diagnostics
            }
            let n = &g.nodes[node as usize];
            if n.is_test || path_matches(&n.path, &cfg.cost_purity_allowed) {
                continue;
            }
            if let Some(i) = covered(&allows, "cost-purity", node) {
                allows[i].used = true;
                continue;
            }
            let (chain, text) = render_chain(&g, &derived, node, &cost_seed_sites);
            let mut d = Diagnostic::new(
                &n.path,
                n.line,
                "cost-purity",
                format!(
                    "fn `{}` transitively reaches the optimizer ({text}); \
                     read paths must use cost-matrix lookups",
                    n.qualified()
                ),
            );
            d.chain = chain;
            out.push(d);
        }
    }

    // may_panic: seeds everywhere, flagged only on the decode/replay
    // surface — a scope fn that can reach a panic through any number of
    // helpers (in any crate) is a recovery hole.
    {
        let seeds: Vec<u32> = panic_seed_sites.keys().copied().collect();
        let mut blocked: BTreeSet<u32> = BTreeSet::new();
        for (id, n) in g.nodes.iter().enumerate() {
            if n.is_test {
                blocked.insert(id as u32);
            }
        }
        for a in &allows {
            if a.rule == "panic-freedom" {
                if let Some(n) = a.node {
                    blocked.insert(n);
                }
            }
        }
        let derived = reach(&seeds, &blocked, &g.redges);
        stats.rounds += derived.rounds;
        for a in &mut allows {
            if a.rule == "panic-freedom" && a.node.is_some_and(|n| derived.holds(n)) {
                a.used = true;
            }
        }
        for (&node, via) in &derived.facts {
            if via.is_none() {
                continue;
            }
            let n = &g.nodes[node as usize];
            let fi = n.file as usize;
            if n.is_test
                || summaries[fi].harness
                || !path_matches(&n.path, &cfg.panic_freedom_scope)
            {
                continue;
            }
            if let Some(i) = covered(&allows, "panic-freedom", node) {
                allows[i].used = true;
                continue;
            }
            let (chain, text) = render_chain(&g, &derived, node, &panic_seed_sites);
            let mut d = Diagnostic::new(
                &n.path,
                n.line,
                "panic-freedom",
                format!(
                    "fn `{}` can transitively reach a panic ({text}); \
                     the decode/replay surface must return decode errors instead",
                    n.qualified()
                ),
            );
            d.chain = chain;
            out.push(d);
        }
    }

    // holds_lock_then_acquires: a total order over the workspace's locks.
    lock_order_rule(summaries, cfg, &g, &mut allows, &mut stats, &mut out);

    // drops_result: `let _ = …;` / bare-statement drops on durability
    // paths.
    error_discipline_rule(summaries, cfg, &g, &mut allows, &mut out);

    // Dead allows: a reasoned, well-formed allow that suppressed nothing.
    for a in &allows {
        if !a.used {
            let mut d = Diagnostic::new(
                &summaries[a.file].path,
                a.line,
                "dead-allow",
                format!(
                    "analyzer:allow({}) no longer suppresses anything — remove it, \
                     or re-point it at the offending line",
                    a.rule
                ),
            );
            d.severity = Severity::Warning;
            out.push(d);
        }
    }

    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    (out, stats)
}

/// Render the witness chain from `head` to its seed's first site as both
/// structured links and display text.
fn render_chain(
    g: &Graph,
    derived: &Derived,
    head: u32,
    seed_sites: &BTreeMap<u32, u32>,
) -> (Vec<ChainLink>, String) {
    let mut links = Vec::new();
    let n = &g.nodes[head as usize];
    links.push(ChainLink {
        func: n.qualified(),
        path: n.path.clone(),
        line: n.line,
    });
    let hops = derived.chain(head);
    let mut last = head;
    for &(next, call_line) in &hops {
        let m = &g.nodes[next as usize];
        links.push(ChainLink {
            func: m.qualified(),
            path: g.nodes[last as usize].path.clone(),
            line: call_line,
        });
        last = next;
    }
    let seed = last;
    let site_line = seed_sites
        .get(&seed)
        .copied()
        .unwrap_or(g.nodes[seed as usize].line);
    links.push(ChainLink {
        func: "<site>".to_string(),
        path: g.nodes[seed as usize].path.clone(),
        line: site_line,
    });
    let text = links
        .iter()
        .map(|l| {
            if l.func == "<site>" {
                format!("site at {}:{}", l.path, l.line)
            } else {
                format!("{} [{}:{}]", l.func, l.path, l.line)
            }
        })
        .collect::<Vec<_>>()
        .join(" -> ");
    (links, format!("call chain: {text}"))
}

/// **lock-order** — the PR 6 reader/writer split holds because every
/// thread acquires the workspace's locks in one global order (store
/// mutex, then the Inum probe cache, then a snapshot slot's RwLock).
/// A function whose *derived* lock set acquires out of that order — even
/// through a chain of calls — can deadlock against the publish path.
fn lock_order_rule(
    summaries: &[FileSummary],
    cfg: &Config,
    g: &Graph,
    allows: &mut [AllowRec],
    stats: &mut InferStats,
    out: &mut Vec<Diagnostic>,
) {
    let rank = |lock: &str| -> Option<usize> {
        cfg.lock_order
            .iter()
            .position(|group| group.iter().any(|l| l == lock))
    };
    let order_text = cfg
        .lock_order
        .iter()
        .map(|group| group[0].clone())
        .collect::<Vec<_>>()
        .join(" then ");

    // Per-rank seeds and first-acquire sites.
    let nranks = cfg.lock_order.len();
    let mut seeds: Vec<Vec<u32>> = vec![Vec::new(); nranks];
    let mut sites: Vec<BTreeMap<u32, u32>> = vec![BTreeMap::new(); nranks];
    for (fi, s) in summaries.iter().enumerate() {
        for a in &s.acquires {
            let Some(r) = rank(&a.lock) else { continue };
            let Some(node) = g.node_of(fi as u32, a.fn_idx) else {
                continue;
            };
            if g.nodes[node as usize].is_test {
                continue;
            }
            seeds[r].push(node);
            sites[r].entry(node).or_insert(a.line);
        }
    }
    let mut blocked: BTreeSet<u32> = BTreeSet::new();
    for (id, n) in g.nodes.iter().enumerate() {
        if n.is_test {
            blocked.insert(id as u32);
        }
    }
    for a in allows.iter() {
        if a.rule == "lock-order" {
            if let Some(n) = a.node {
                blocked.insert(n);
            }
        }
    }
    let derived: Vec<Derived> = (0..nranks)
        .map(|r| {
            let d = reach(&seeds[r], &blocked, &g.redges);
            stats.rounds += d.rounds;
            d
        })
        .collect();
    for a in allows.iter_mut() {
        if a.rule == "lock-order" && a.node.is_some_and(|n| derived.iter().any(|d| d.holds(n))) {
            a.used = true;
        }
    }

    let mut seen: BTreeSet<(String, u32, String, String)> = BTreeSet::new();
    let mut push = |out: &mut Vec<Diagnostic>,
                    allows: &mut [AllowRec],
                    path: &str,
                    line: u32,
                    held: &str,
                    acq: &str,
                    node: u32,
                    chain: Option<(Vec<ChainLink>, String)>| {
        if !seen.insert((path.to_string(), line, held.to_string(), acq.to_string())) {
            return;
        }
        if let Some(i) = allows
            .iter()
            .position(|a| a.rule == "lock-order" && a.node == Some(node))
        {
            allows[i].used = true;
            return;
        }
        let same = held == acq || (rank(held) == rank(acq) && rank(held).is_some());
        let what = if same {
            format!("re-acquires `{acq}` while already holding it (self-deadlock)")
        } else {
            format!("acquires `{acq}` while holding `{held}`")
        };
        let detail = match &chain {
            Some((_, text)) => format!(" via {text}"),
            None => String::new(),
        };
        let mut d = Diagnostic::new(
            path,
            line,
            "lock-order",
            format!("{what}{detail}; the workspace lock order is {order_text}"),
        );
        if let Some((links, _)) = chain {
            d.chain = links;
        }
        out.push(d);
    };

    for (fi, s) in summaries.iter().enumerate() {
        // Direct out-of-order acquisition.
        for a in &s.acquires {
            let Some(node) = g.node_of(fi as u32, a.fn_idx) else {
                continue;
            };
            if g.nodes[node as usize].is_test || a.held.is_empty() {
                continue;
            }
            let Some(ra) = rank(&a.lock) else { continue };
            for held in &a.held {
                let Some(rh) = rank(held) else { continue };
                // Outer-rank (or same-lock re-entrant) acquisition while
                // a later-rank lock is held.
                if ra < rh || (ra == rh && *held == a.lock) {
                    push(out, allows, &s.path, a.line, held, &a.lock, node, None);
                }
            }
        }
        // A call made while holding a lock, into a fn whose derived lock
        // set acquires out of order.
        for c in &s.calls {
            if c.held.is_empty() {
                continue;
            }
            let Some(caller) = g.node_of(fi as u32, c.fn_idx) else {
                continue;
            };
            if g.nodes[caller as usize].is_test {
                continue;
            }
            let Some(&(callee, _)) = g.edges[caller as usize]
                .iter()
                .find(|&&(cal, line)| line == c.line && g.nodes[cal as usize].name == c.name)
                .or_else(|| {
                    g.edges[caller as usize]
                        .iter()
                        .find(|&&(cal, _)| g.nodes[cal as usize].name == c.name)
                })
            else {
                continue;
            };
            for held in &c.held {
                let Some(rh) = rank(held) else { continue };
                for (ra, d) in derived.iter().enumerate() {
                    if ra > rh || !d.holds(callee) {
                        continue;
                    }
                    let acq_name = &cfg.lock_order[ra][0];
                    if ra == rh && acq_name != held {
                        continue;
                    }
                    let (links, text) = render_chain(g, d, callee, &sites[ra]);
                    push(
                        out,
                        allows,
                        &s.path,
                        c.line,
                        held,
                        acq_name,
                        caller,
                        Some((links, text)),
                    );
                }
            }
        }
    }
}

/// **error-discipline** — PR 7/9's recovery contract is "never a log
/// with a hole": on the durability and health paths every fallible step
/// either succeeds or surfaces its error to the degradation ladder. A
/// `Result` silently discarded with `let _ = …` (or a bare expression
/// statement) is a write that can fail without anyone noticing until
/// replay.
fn error_discipline_rule(
    summaries: &[FileSummary],
    cfg: &Config,
    g: &Graph,
    allows: &mut [AllowRec],
    out: &mut Vec<Diagnostic>,
) {
    // A callee name is Result-returning if std says so or every
    // workspace fn of that name says so.
    let returns_result = |name: &str| -> bool {
        if KNOWN_RESULT_FNS.contains(&name) {
            return true;
        }
        let mut any = false;
        for n in g.by_name(name) {
            any = true;
            if !n.returns_result {
                return false;
            }
        }
        any
    };
    for (fi, s) in summaries.iter().enumerate() {
        if !path_matches(&s.path, &cfg.error_discipline_scope) {
            continue;
        }
        let is_test_fn = |fn_idx: u32| -> bool {
            fn_idx == NO_FN || s.fns.get(fn_idx as usize).is_none_or(|f| f.is_test)
        };
        let mut hits: Vec<(u32, String)> = Vec::new();
        for d in &s.drops {
            if is_test_fn(d.fn_idx) {
                continue;
            }
            if let Some(callee) = d.callees.iter().find(|c| returns_result(c)) {
                hits.push((
                    d.line,
                    format!(
                        "`let _ =` discards the `Result` of `{callee}()` — on the \
                         durability path every error feeds the degradation ladder \
                         (\"never a log with a hole\"); handle or propagate it"
                    ),
                ));
            }
        }
        for c in &s.calls {
            if !c.stmt_dropped || is_test_fn(c.fn_idx) {
                continue;
            }
            let typed = g.node_of(fi as u32, c.fn_idx).and_then(|caller| {
                g.edges[caller as usize]
                    .iter()
                    .find(|&&(callee, line)| {
                        line == c.line && g.nodes[callee as usize].name == c.name
                    })
                    .map(|&(callee, _)| g.nodes[callee as usize].returns_result)
            });
            let drops_result = match typed {
                Some(flag) => flag,
                None => KNOWN_RESULT_FNS.contains(&c.name.as_str()),
            };
            if drops_result {
                hits.push((
                    c.line,
                    format!(
                        "the `Result` of `{}()` is dropped by this statement — \
                         handle or propagate it (\"never a log with a hole\")",
                        c.name
                    ),
                ));
            }
        }
        hits.sort();
        hits.dedup();
        for (line, msg) in hits {
            if let Some(i) = allows
                .iter()
                .position(|a| a.file == fi && a.rule == "error-discipline" && a.target_line == line)
            {
                allows[i].used = true;
                continue;
            }
            out.push(Diagnostic::new(&s.path, line, "error-discipline", msg));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        analyze_source(path, src, &Config::workspace())
    }

    fn run_workspace(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut sums: Vec<FileSummary> = files
            .iter()
            .map(|(p, s)| crate::cache::summarize(p, s))
            .collect();
        sums.sort_by(|a, b| a.path.cmp(&b.path));
        analyze_summaries(&sums, &Config::workspace()).0
    }

    #[test]
    fn cost_purity_flags_and_allows() {
        let src = "fn advisor(m: &M) -> f64 { m.inum().cost(&q) }\n";
        let d = run("crates/cophy/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "cost-purity");
        assert_eq!(d[0].line, 1);
        // Same site inside an allowed module: clean.
        assert!(run("crates/inum/src/x.rs", src).is_empty());
        // Same site with a reasoned allow: clean.
        let allowed = "// analyzer:allow(cost-purity): counted probe path\n\
                       fn advisor(m: &M) -> f64 { m.inum().cost(&q) }\n";
        assert!(run("crates/cophy/src/x.rs", allowed).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_diagnostic() {
        let src = "// analyzer:allow(cost-purity)\n\
                   fn advisor(m: &M) -> f64 { m.inum().cost(&q) }\n";
        let d = run("crates/cophy/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == "allow-syntax"));
        // The bare allow does not waive the violation either.
        assert!(d.iter().any(|d| d.rule == "cost-purity"));
    }

    #[test]
    fn panic_freedom_scope_and_test_skip() {
        let src = "fn decode(b: &[u8]) -> u32 { b[0] as u32 }\n\
                   #[cfg(test)]\nmod tests { fn t(b: &[u8]) { b[0]; b.get(1).unwrap(); } }\n";
        let d = run("crates/durability/src/codec.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "panic-freedom");
        assert_eq!(d[0].line, 1);
        // Out of scope: clean.
        assert!(run("crates/cophy/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_freedom_ignores_types_attrs_and_macros() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\n\
                   fn f() -> Vec<u8> { vec![1, 2] }\n\
                   fn g(x: &mut [u8]) -> &[u8] { x }\n";
        assert!(run("crates/durability/src/x.rs", src).is_empty());
    }

    #[test]
    fn fp_determinism_flags_hash_iteration_in_f64_fns() {
        let src = "fn total(m: &HashMap<u32, f64>) -> f64 {\n\
                     let mut s = 0.0f64;\n\
                     for (_, v) in m.iter() { s += v; }\n\
                     s\n\
                   }\n\
                   fn count(m: &HashMap<u32, u32>) -> usize { m.len() }\n";
        let d = run("crates/cophy/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "fp-determinism");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn fp_determinism_accepts_btreemap() {
        let src = "fn total(m: &BTreeMap<u32, f64>) -> f64 {\n\
                     let mut s = 0.0f64;\n\
                     for (_, v) in m.iter() { s += v; }\n\
                     s\n\
                   }\n";
        assert!(run("crates/cophy/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_audit_wants_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let d = run("crates/core/src/x.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unsafe-audit");
        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: p is valid for reads.\n    unsafe { *p }\n}\n";
        assert!(run("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn lock_discipline_flags_costing_under_guard() {
        let src = "fn publish_new(&self) {\n\
                     let mut cur = self.current.write();\n\
                     let c = self.matrix.inum().cost(&q);\n\
                     *cur = c;\n\
                   }\n";
        let d = run("crates/inum/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "lock-discipline");
        assert_eq!(d[0].line, 3);
        let good = "fn publish_new(&self) {\n\
                      let c = self.matrix.inum().cost(&q);\n\
                      let mut cur = self.current.write();\n\
                      *cur = c;\n\
                    }\n";
        assert!(run("crates/inum/src/x.rs", good).is_empty());
    }

    #[test]
    fn transitive_cost_purity_flags_the_caller_with_a_chain() {
        let d = run_workspace(&[
            (
                "crates/cophy/src/advisor.rs",
                "pub fn pick(h: &Probe) -> f64 {\n    refine(h)\n}\n\
                 fn refine(h: &Probe) -> f64 {\n    h.raw_cost()\n}\n",
            ),
            (
                "crates/core/src/probe.rs",
                "pub struct Probe;\nimpl Probe {\n    pub fn raw_cost(&self) -> f64 {\n        self.inum().cost(&q)\n    }\n}\n",
            ),
        ]);
        // raw_cost has the direct site; pick and refine are flagged
        // transitively with chains ending at it.
        assert!(d.iter().any(|x| x.rule == "cost-purity"
            && x.path.ends_with("probe.rs")
            && x.chain.is_empty()));
        let pick = d
            .iter()
            .find(|x| x.msg.contains("`pick`"))
            .expect("pick flagged");
        assert_eq!(pick.rule, "cost-purity");
        assert!(pick.chain.len() >= 3, "chain: {:?}", pick.chain);
        assert!(pick.msg.contains("call chain"));
    }

    #[test]
    fn allow_on_an_intermediate_fn_suppresses_the_chain() {
        let d = run_workspace(&[
            (
                "crates/cophy/src/advisor.rs",
                "pub fn pick(h: &Probe) -> f64 {\n    refine(h)\n}\n\
                 // analyzer:allow(cost-purity): counted probe path, metered upstream\n\
                 fn refine(h: &Probe) -> f64 {\n    h.raw_cost()\n}\n",
            ),
            (
                "crates/core/src/probe.rs",
                "pub struct Probe;\nimpl Probe {\n    pub fn raw_cost(&self) -> f64 {\n        self.inum().cost(&q)\n    }\n}\n",
            ),
        ]);
        // The direct site is still an error; the allow on the chain's
        // intermediate fn suppresses everything above the site — neither
        // `refine` (covered) nor `pick` (chain cut) is flagged.
        assert_eq!(
            d.iter().filter(|x| x.rule == "cost-purity").count(),
            1,
            "{d:?}"
        );
        assert!(d
            .iter()
            .all(|x| !x.msg.contains("`pick`") && !x.msg.contains("`refine`")));
        // And the allow is live — no dead-allow warning.
        assert!(!d.iter().any(|x| x.rule == "dead-allow"), "{d:?}");
    }

    #[test]
    fn allow_on_the_seed_statement_blocks_all_propagation() {
        let d = run_workspace(&[
            (
                "crates/cophy/src/advisor.rs",
                "pub fn pick(h: &Probe) -> f64 {\n    h.raw_cost()\n}\n",
            ),
            (
                "crates/core/src/probe.rs",
                "pub struct Probe;\n\
                 impl Probe {\n\
                     pub fn raw_cost(&self) -> f64 {\n\
                         // analyzer:allow(cost-purity): the probe is the sanctioned entry\n\
                         self.inum().cost(&q)\n    }\n}\n",
            ),
        ]);
        assert!(
            !d.iter().any(|x| x.rule == "cost-purity"),
            "statement allow waives the site and cuts every chain: {d:?}"
        );
        assert!(!d.iter().any(|x| x.rule == "dead-allow"), "{d:?}");
    }

    #[test]
    fn lock_order_direct_and_transitive() {
        let d = run_workspace(&[(
            "crates/inum/src/slot.rs",
            "impl Slot {\n\
                 fn bad(&self) {\n\
                     let g = self.current.write();\n\
                     self.cache.write().clear();\n\
                 }\n\
                 fn indirect(&self) {\n\
                     let g = self.current.write();\n\
                     self.touch_cache();\n\
                 }\n\
                 fn touch_cache(&self) {\n\
                     self.cache.write().clear();\n\
                 }\n\
             }\n",
        )]);
        let direct = d
            .iter()
            .find(|x| x.rule == "lock-order" && x.line == 4)
            .expect("direct violation");
        assert!(direct.msg.contains("`cache`") && direct.msg.contains("`current`"));
        let transitive = d
            .iter()
            .find(|x| x.rule == "lock-order" && x.line == 8)
            .expect("transitive violation");
        assert!(transitive.msg.contains("call chain"));
    }

    #[test]
    fn error_discipline_flags_dropped_results_in_scope() {
        let d = run_workspace(&[(
            "crates/durability/src/store.rs",
            "fn sync_dir(d: &Dir) {\n    let _ = d.sync_all();\n}\n\
             fn fine(d: &Dir) -> io::Result<()> {\n    d.sync_all()\n}\n",
        )]);
        assert_eq!(d.iter().filter(|x| x.rule == "error-discipline").count(), 1);
        assert_eq!(d[0].line, 2);
        // Out of scope: clean.
        let d2 = run_workspace(&[(
            "crates/cophy/src/x.rs",
            "fn f(d: &Dir) {\n    let _ = d.sync_all();\n}\n",
        )]);
        assert!(d2.iter().all(|x| x.rule != "error-discipline"));
    }

    #[test]
    fn dead_allow_is_a_warning() {
        let d = run_workspace(&[(
            "crates/cophy/src/x.rs",
            "// analyzer:allow(cost-purity): nothing here costs any more\nfn f() {}\n",
        )]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "dead-allow");
        assert_eq!(d[0].severity, Severity::Warning);
    }
}
