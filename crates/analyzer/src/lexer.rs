//! A hand-rolled Rust lexer — the same idiom as the SQL lexer in
//! `pgdesign-query` (`parser.rs`), scaled up to Rust's token grammar.
//!
//! The analyzer needs a *token* view of every source file, not a parse
//! tree: rules match on token shapes (an identifier followed by `(` is a
//! call site, a `[` after an expression is an index), and comments are
//! kept as first-class tokens because two rules read them (`// SAFETY:`
//! for unsafe-audit, `// analyzer:allow(...)` for the escape hatch).
//! Crucially, string literals lex as single opaque tokens, so a pattern
//! like `".unwrap("` appearing *inside a string* (as it does in this very
//! crate) can never be mistaken for a call site.
//!
//! Handled Rust surface: line + nested block comments, doc comments,
//! string/char/byte/raw-string literals (any `#` depth), lifetimes vs
//! char literals, raw identifiers, numeric literals with suffixes, and
//! maximal-munch compound operators.

/// Token classes the rule engine distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `unsafe`, `for` are idents here;
    /// keyword-ness is decided by the fact extractor where it matters).
    Ident,
    /// `'a` — distinguished from char literals.
    Lifetime,
    /// Any numeric literal.
    Number,
    /// Any string, char, byte, or raw-string literal, as one opaque token.
    Str,
    /// Line or block comment, including doc comments. Text excludes the
    /// delimiters.
    Comment,
    /// One operator or delimiter, compound ops pre-joined (`::`, `+=`).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
}

impl Token {
    pub fn is(&self, kind: Kind, text: &str) -> bool {
        self.kind == kind && self.text == text
    }

    pub fn is_punct(&self, text: &str) -> bool {
        self.is(Kind::Punct, text)
    }

    pub fn is_ident(&self, text: &str) -> bool {
        self.is(Kind::Ident, text)
    }
}

/// Compound operators, longest first so maximal munch wins.
const COMPOUND_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "|=", "&=", "..",
];

/// Tokenize `src`. The lexer is total: bytes it cannot classify become
/// single-character `Punct` tokens, so analysis degrades instead of
/// failing on exotic input.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let line = self.line;
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'"' => self.string_literal(line),
                b'\'' => self.quote(line),
                b'b' | b'r' if self.starts_literal_prefix() => self.prefixed_literal(line),
                _ if c == b'_' || c.is_ascii_alphabetic() => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => self.punct(line),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: Kind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn bump_lines(&mut self, from: usize, to: usize) {
        for &b in self.src.get(from..to).unwrap_or(&[]) {
            if b == b'\n' {
                self.line += 1;
            }
        }
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.pos + 2;
        let mut end = start;
        while end < self.src.len() && self.src[end] != b'\n' {
            end += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.push(Kind::Comment, text, line);
        self.pos = end;
    }

    fn block_comment(&mut self, line: u32) {
        // Rust block comments nest.
        let start = self.pos + 2;
        let mut depth = 1usize;
        let mut i = start;
        while i < self.src.len() && depth > 0 {
            if self.src[i] == b'/' && self.src.get(i + 1) == Some(&b'*') {
                depth += 1;
                i += 2;
            } else if self.src[i] == b'*' && self.src.get(i + 1) == Some(&b'/') {
                depth -= 1;
                i += 2;
            } else {
                i += 1;
            }
        }
        let body_end = i.saturating_sub(2).max(start);
        let text = String::from_utf8_lossy(&self.src[start..body_end]).into_owned();
        self.bump_lines(self.pos, i);
        self.push(Kind::Comment, text, line);
        self.pos = i;
    }

    /// `"..."` with escapes.
    fn string_literal(&mut self, line: u32) {
        let mut i = self.pos + 1;
        while i < self.src.len() {
            match self.src[i] {
                b'\\' => i += 2,
                b'"' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        self.bump_lines(self.pos, i);
        self.push(Kind::Str, String::new(), line);
        self.pos = i;
    }

    /// `'a` lifetime, `'x'` / `'\n'` char literal.
    fn quote(&mut self, line: u32) {
        let next = self.peek(1);
        if next == Some(b'\\') {
            // Escaped char literal: skip to closing quote.
            let mut i = self.pos + 2;
            if i < self.src.len() {
                i += 1; // the escaped char
            }
            while i < self.src.len() && self.src[i] != b'\'' {
                i += 1;
            }
            self.pos = (i + 1).min(self.src.len());
            self.push(Kind::Str, String::new(), line);
            return;
        }
        // `'ident` — lifetime unless a closing quote follows immediately
        // after a single char (then it is a char literal like 'a').
        if next.is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric()) {
            let mut i = self.pos + 1;
            while i < self.src.len() && (self.src[i] == b'_' || self.src[i].is_ascii_alphanumeric())
            {
                i += 1;
            }
            if self.src.get(i) == Some(&b'\'') {
                self.pos = i + 1;
                self.push(Kind::Str, String::new(), line);
            } else {
                let text = String::from_utf8_lossy(&self.src[self.pos..i]).into_owned();
                self.pos = i;
                self.push(Kind::Lifetime, text, line);
            }
            return;
        }
        // Non-alphanumeric char literal like '(' or unrecognized quote.
        let mut i = self.pos + 1;
        while i < self.src.len() && self.src[i] != b'\'' && self.src[i] != b'\n' {
            i += 1;
        }
        self.pos = (i + 1).min(self.src.len());
        self.push(Kind::Str, String::new(), line);
    }

    /// Does `b` / `r` / `br` / `rb` at `pos` start a literal (string or
    /// raw string/identifier) rather than a plain identifier?
    fn starts_literal_prefix(&self) -> bool {
        let c0 = self.src[self.pos];
        match (c0, self.peek(1)) {
            (b'b', Some(b'"')) | (b'b', Some(b'\'')) => true,
            (b'r', Some(b'"')) | (b'r', Some(b'#')) => true,
            (b'b', Some(b'r')) if matches!(self.peek(2), Some(b'"') | Some(b'#')) => true,
            _ => false,
        }
    }

    /// `b"..."`, `r"..."`, `r#"..."#`, `br#"..."#`, `b'x'`, `r#ident`.
    fn prefixed_literal(&mut self, line: u32) {
        let mut i = self.pos;
        while i < self.src.len() && (self.src[i] == b'b' || self.src[i] == b'r') {
            i += 1;
        }
        let mut hashes = 0usize;
        while self.src.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        match self.src.get(i) {
            Some(b'"') => {
                // Raw or plain string: find closing `"` + `hashes` hashes.
                i += 1;
                loop {
                    match self.src.get(i) {
                        None => break,
                        Some(b'\\') if hashes == 0 => i += 2,
                        Some(b'"') => {
                            let mut j = i + 1;
                            let mut seen = 0usize;
                            while seen < hashes && self.src.get(j) == Some(&b'#') {
                                seen += 1;
                                j += 1;
                            }
                            if seen == hashes {
                                i = j;
                                break;
                            }
                            i += 1;
                        }
                        Some(_) => i += 1,
                    }
                }
                self.bump_lines(self.pos, i);
                self.push(Kind::Str, String::new(), line);
                self.pos = i;
            }
            Some(b'\'') => {
                // b'x' byte literal.
                i += 1;
                while i < self.src.len() && self.src[i] != b'\'' {
                    if self.src[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                self.pos = (i + 1).min(self.src.len());
                self.push(Kind::Str, String::new(), line);
            }
            _ if hashes > 0 => {
                // r#ident raw identifier.
                let start = i;
                while i < self.src.len()
                    && (self.src[i] == b'_' || self.src[i].is_ascii_alphanumeric())
                {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&self.src[start..i]).into_owned();
                self.push(Kind::Ident, text, line);
                self.pos = i;
            }
            _ => {
                // Plain identifier starting with b/r after all.
                self.ident(line);
            }
        }
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        let mut i = start;
        while i < self.src.len() && (self.src[i] == b'_' || self.src[i].is_ascii_alphanumeric()) {
            i += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..i]).into_owned();
        self.push(Kind::Ident, text, line);
        self.pos = i;
    }

    fn number(&mut self, line: u32) {
        let start = self.pos;
        let mut i = start;
        // Digits, underscores, hex/bin/oct prefixes, float parts, type
        // suffixes — one greedy run is enough for token boundaries.
        while i < self.src.len() {
            let b = self.src[i];
            let in_number = b == b'_'
                || b.is_ascii_alphanumeric()
                || (b == b'.' && self.src.get(i + 1).is_some_and(|d| d.is_ascii_digit()));
            if !in_number {
                break;
            }
            i += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..i]).into_owned();
        self.push(Kind::Number, text, line);
        self.pos = i;
    }

    fn punct(&mut self, line: u32) {
        let rest = &self.src[self.pos..];
        for op in COMPOUND_OPS {
            if rest.starts_with(op.as_bytes()) {
                self.push(Kind::Punct, (*op).to_string(), line);
                self.pos += op.len();
                return;
            }
        }
        let c = self.src[self.pos] as char;
        self.push(Kind::Punct, c.to_string(), line);
        self.pos += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_are_opaque() {
        let toks = kinds(r#"let s = ".unwrap(";"#);
        assert!(toks.iter().any(|(k, _)| *k == Kind::Str));
        assert!(!toks.iter().any(|(_, t)| t == "unwrap"));
    }

    #[test]
    fn raw_strings_and_bytes() {
        let toks = kinds(r###"let s = r#"x[i].unwrap()"#; let b = b"idx[0]";"###);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Str).count(), 2);
        assert!(!toks.iter().any(|(_, t)| t == "unwrap" || t == "idx"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Str).count(), 2);
    }

    #[test]
    fn nested_block_comments_and_doc_comments() {
        let toks = kinds("/* a /* b */ c */ fn x() {} // tail\n/// doc\nfn y() {}");
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Comment).count(), 3);
        assert_eq!(toks.iter().filter(|(_, t)| t == "fn").count(), 2);
    }

    #[test]
    fn compound_ops_munch_maximally() {
        let toks = kinds("a += b; c..=d; e::f; g -> h;");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"..="));
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"->"));
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let toks = lex("fn a() {}\n/* x\ny */\nfn b() {}");
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 4);
    }
}
