//! Fact extraction: from a token stream to a queryable fact base.
//!
//! Rules never look at raw source — they query the [`Facts`] produced
//! here, in the Datalog spirit of lint-as-query-over-facts: the
//! extractor materialises base relations (fn spans, call shapes, unsafe
//! blocks, lock-guard live ranges, hash-ordered bindings) once per file,
//! and each rule is a cheap scan over them. Extraction is deliberately
//! heuristic — it runs on tokens, not a parse tree — and every heuristic
//! is tuned to over-approximate (flag too much, never too little),
//! because the `analyzer:allow` escape hatch makes a rare false positive
//! cheap and a false negative silently erodes the invariant.

use crate::lexer::{lex, Kind, Token};
use std::collections::BTreeSet;

/// Identifiers that are Rust keywords which may directly precede a `[`
/// without the `[` being an index expression (`&mut [T]`, `let [a, b]`,
/// `return [x]`...). An index site requires a value expression on the
/// left, and these never end one.
pub const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "ref", "in", "as", "return", "break", "continue", "else", "match", "if", "while",
    "loop", "move", "dyn", "impl", "box", "const", "static", "where", "let", "fn", "pub", "use",
    "mod", "enum", "struct", "trait", "type", "unsafe", "async", "await", "for", "yield",
];

/// Iterator-producing methods whose traversal order is the receiver's
/// intrinsic order — the fp-determinism rule flags them on hash-ordered
/// receivers.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// One function item: where it is and what the rules need to know about
/// its body.
#[derive(Debug)]
pub struct FnFact {
    pub name: String,
    pub line: u32,
    /// Half-open range over *significant* token indices covering the
    /// body, braces included. `None` for bodyless trait-method decls.
    pub body: Option<(usize, usize)>,
    /// Whether any token between `fn` and the body's closing brace is the
    /// identifier `f64` — the gate for the fp-determinism rule.
    pub mentions_f64: bool,
    /// Significant index of the `fn` keyword.
    pub at: usize,
    /// Last source line of the body (the decl line for bodyless fns).
    pub end_line: u32,
    /// The innermost enclosing `impl` block's receiver type, when the fn
    /// is a method — the `T` of `impl T` / `impl Trait for T`.
    pub receiver: Option<String>,
    /// Whether the signature's return type mentions `Result`.
    pub returns_result: bool,
}

/// An `impl` block: receiver type name and significant-token span of its
/// braces (inclusive of both braces).
#[derive(Debug)]
pub struct ImplSpan {
    pub type_name: String,
    pub start: usize,
    pub end: usize,
}

/// The shape of a call site, as far as tokens can tell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallShape {
    /// `name(...)` — a free fn (or tuple-struct constructor).
    Free,
    /// `recv.name(...)` — `recv` is the receiver token's text when it is
    /// a plain identifier (`self`, a local, or the last field of a
    /// `self.field` chain); `None` for computed receivers.
    Method { recv: Option<String> },
    /// `Qual::name(...)` — `qual` is the path segment before the `::`.
    Qualified { qual: String },
}

/// One call site `name(` (macros `name!(` are excluded by tokenization).
#[derive(Debug)]
pub struct CallFact {
    /// Significant index of the callee name token.
    pub at: usize,
    pub line: u32,
    pub name: String,
    pub shape: CallShape,
    /// The call is a whole expression statement (`foo();` /
    /// `a.b().foo();`) whose value — possibly a `Result` — is dropped.
    pub stmt_dropped: bool,
}

/// A zero-argument `.write()` / `.read()` / `.lock()` acquisition site.
#[derive(Debug)]
pub struct AcquireFact {
    pub at: usize,
    pub line: u32,
    /// Lock identity: the receiver identifier (`current`, `cache`, a
    /// local), or `"<self>"` when the receiver is `self`/a tuple field —
    /// canonicalised to the enclosing impl type by the summariser.
    pub lock: String,
    /// `write` | `read` | `lock`.
    pub kind: String,
}

/// A `let`-bound lock guard of any kind and its live range — like
/// [`GuardFact`] but carrying the lock identity and acquire kind, for the
/// lock-ordering rule.
#[derive(Debug)]
pub struct LockGuard {
    pub name: String,
    pub line: u32,
    pub lock: String,
    pub kind: String,
    pub start: usize,
    pub end: usize,
}

/// A `let _ = <expr>;` statement whose initialiser contains at least one
/// call — the error-discipline rule's raw material.
#[derive(Debug)]
pub struct DropLet {
    pub line: u32,
    /// Call names appearing in the initialiser, in token order.
    pub callees: Vec<String>,
}

/// One `// analyzer:allow(<rule>): <reason>` directive.
#[derive(Debug)]
pub struct AllowFact {
    pub rule: String,
    /// Source line of the comment itself.
    pub line: u32,
    pub has_reason: bool,
}

/// One `unsafe { ... }` block.
#[derive(Debug)]
pub struct UnsafeFact {
    pub line: u32,
    /// A `// SAFETY:` comment within the six lines above the block.
    pub has_safety: bool,
}

/// A `let`-bound lock write guard (`let g = slot.write();`) and the
/// significant-token range over which it is live.
#[derive(Debug)]
pub struct GuardFact {
    pub name: String,
    pub line: u32,
    /// First significant index after the binding statement.
    pub start: usize,
    /// Exclusive end: the enclosing block's `}` or a `drop(g)` call.
    pub end: usize,
}

/// A `for <pat> in <iterand> { ... }` loop.
#[derive(Debug)]
pub struct ForLoop {
    pub line: u32,
    /// Significant index of the `for` keyword.
    pub at: usize,
    /// Identifier tokens appearing in the iterand expression.
    pub iterand_idents: Vec<String>,
}

/// A `recv.method(` chain link where `method` produces an iterator.
#[derive(Debug)]
pub struct IterCall {
    pub line: u32,
    /// Significant index of the method identifier.
    pub at: usize,
    pub receiver: String,
    pub method: String,
}

/// The per-file fact base.
pub struct Facts {
    /// The full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of significant (non-comment) tokens. Rules
    /// index token positions through this view.
    pub sig: Vec<usize>,
    /// Brace depth of the context each significant token sits in.
    pub depth: Vec<u32>,
    /// Inclusive line spans of test-only code: `#[cfg(test)]` mods and
    /// `#[test]` fns.
    pub test_spans: Vec<(u32, u32)>,
    pub fns: Vec<FnFact>,
    pub allows: Vec<AllowFact>,
    /// Names bound (anywhere in the file: fields, params, lets) to a
    /// `HashMap`/`HashSet`-typed value.
    pub hashy_names: BTreeSet<String>,
    pub unsafe_blocks: Vec<UnsafeFact>,
    pub guards: Vec<GuardFact>,
    pub for_loops: Vec<ForLoop>,
    pub iter_calls: Vec<IterCall>,
    pub impls: Vec<ImplSpan>,
    pub calls: Vec<CallFact>,
    pub acquires: Vec<AcquireFact>,
    pub lock_guards: Vec<LockGuard>,
    pub drop_lets: Vec<DropLet>,
    /// `name: Type` ascriptions and `let name = Type::...` initialisers,
    /// in token order (later bindings shadow earlier ones).
    pub bindings: Vec<(String, String)>,
}

impl Facts {
    /// The significant token at view index `i`.
    pub fn tok(&self, i: usize) -> Option<&Token> {
        self.sig.get(i).map(|&j| &self.tokens[j])
    }

    /// Is line `line` inside any test span?
    pub fn in_test(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// The innermost fn whose body contains significant index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnFact> {
        self.fns
            .iter()
            .rfind(|f| f.body.is_some_and(|(a, b)| a <= i && i < b))
    }

    /// Index into `fns` of the innermost fn whose body contains `i`.
    pub fn enclosing_fn_idx(&self, i: usize) -> Option<usize> {
        self.fns
            .iter()
            .rposition(|f| f.body.is_some_and(|(a, b)| a <= i && i < b))
    }

    /// The innermost `impl` block containing significant index `i`.
    pub fn enclosing_impl(&self, i: usize) -> Option<&ImplSpan> {
        self.impls.iter().rfind(|s| s.start <= i && i <= s.end)
    }
}

/// Extract the full fact base from one source file.
pub fn extract(src: &str) -> Facts {
    let tokens = lex(src);
    let mut sig = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Comment {
            sig.push(i);
        }
    }
    let depth = depths(&tokens, &sig);
    let mut facts = Facts {
        test_spans: Vec::new(),
        fns: Vec::new(),
        allows: Vec::new(),
        hashy_names: BTreeSet::new(),
        unsafe_blocks: Vec::new(),
        guards: Vec::new(),
        for_loops: Vec::new(),
        iter_calls: Vec::new(),
        impls: Vec::new(),
        calls: Vec::new(),
        acquires: Vec::new(),
        lock_guards: Vec::new(),
        drop_lets: Vec::new(),
        bindings: Vec::new(),
        tokens,
        sig,
        depth,
    };
    extract_allows(&mut facts);
    extract_test_spans(&mut facts);
    extract_impls(&mut facts);
    extract_fns(&mut facts);
    extract_hashy_names(&mut facts);
    extract_unsafe(&mut facts);
    extract_guards(&mut facts);
    extract_loops_and_iter_calls(&mut facts);
    extract_calls(&mut facts);
    extract_acquires(&mut facts);
    extract_lock_guards(&mut facts);
    extract_drop_lets(&mut facts);
    extract_bindings(&mut facts);
    facts
}

/// Context brace depth per significant token: a `{` is recorded at the
/// depth of the block *containing* it, and its matching `}` comes back at
/// that same depth.
fn depths(tokens: &[Token], sig: &[usize]) -> Vec<u32> {
    let mut out = Vec::with_capacity(sig.len());
    let mut d: u32 = 0;
    for &j in sig {
        let t = &tokens[j];
        if t.is_punct("}") {
            d = d.saturating_sub(1);
        }
        out.push(d);
        if t.is_punct("{") {
            d += 1;
        }
    }
    out
}

fn extract_allows(facts: &mut Facts) {
    for t in &facts.tokens {
        if t.kind != Kind::Comment {
            continue;
        }
        let body = t.text.trim();
        let Some(rest) = body.strip_prefix("analyzer:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            facts.allows.push(AllowFact {
                rule: String::new(),
                line: t.line,
                has_reason: false,
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let tail = rest[close + 1..].trim_start();
        let has_reason = tail.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
        facts.allows.push(AllowFact {
            rule,
            line: t.line,
            has_reason,
        });
    }
}

/// Find `#[...]` attributes containing the bare identifier `test` (and
/// not `not`, so `#[cfg(not(test))]` stays live code) and record the line
/// span of the `mod`/`fn` item they annotate.
fn extract_test_spans(facts: &mut Facts) {
    let n = facts.sig.len();
    let mut i = 0;
    while i < n {
        if !(facts.tok(i).is_some_and(|t| t.is_punct("#"))
            && facts.tok(i + 1).is_some_and(|t| t.is_punct("[")))
        {
            i += 1;
            continue;
        }
        // Scan the attribute body to its closing `]`.
        let mut j = i + 2;
        let mut brackets = 1u32;
        let mut saw_test = false;
        let mut saw_not = false;
        while j < n && brackets > 0 {
            let t = facts.tok(j).expect("in range");
            if t.is_punct("[") {
                brackets += 1;
            } else if t.is_punct("]") {
                brackets -= 1;
            } else if t.is_ident("test") {
                saw_test = true;
            } else if t.is_ident("not") {
                saw_not = true;
            }
            j += 1;
        }
        if !saw_test || saw_not {
            i = j;
            continue;
        }
        // Skip further attributes and item qualifiers to the item keyword.
        let mut k = j;
        loop {
            match facts.tok(k) {
                Some(t) if t.is_punct("#") => {
                    // Another attribute: skip it wholesale.
                    k += 2;
                    let mut b = 1u32;
                    while k < n && b > 0 {
                        let t = facts.tok(k).expect("in range");
                        if t.is_punct("[") {
                            b += 1;
                        } else if t.is_punct("]") {
                            b -= 1;
                        }
                        k += 1;
                    }
                }
                Some(t)
                    if t.is_ident("pub")
                        || t.is_ident("crate")
                        || t.is_ident("async")
                        || t.is_ident("unsafe")
                        || t.is_ident("const")
                        || t.is_ident("extern")
                        || t.is_punct("(")
                        || t.is_punct(")")
                        || t.is_ident("in")
                        || t.is_ident("super")
                        || t.is_ident("self")
                        || t.kind == Kind::Str =>
                {
                    k += 1;
                }
                _ => break,
            }
        }
        let item_is_testable = facts
            .tok(k)
            .is_some_and(|t| t.is_ident("mod") || t.is_ident("fn"));
        if !item_is_testable {
            i = j;
            continue;
        }
        // Find the item's body braces and record its line span.
        let mut open = k;
        while open < n {
            let t = facts.tok(open).expect("in range");
            if t.is_punct("{") {
                break;
            }
            if t.is_punct(";") {
                // `#[cfg(test)] mod tests;` — no inline body.
                open = n;
                break;
            }
            open += 1;
        }
        if open < n {
            let close = matching_brace(facts, open);
            let start = facts.tok(i).map(|t| t.line).unwrap_or(1);
            let end = facts
                .tok(close)
                .or_else(|| facts.tok(n - 1))
                .map(|t| t.line)
                .unwrap_or(start);
            facts.test_spans.push((start, end));
            i = close.max(j);
        } else {
            i = j;
        }
    }
}

/// Significant index of the `}` matching the `{` at significant index
/// `open` (returns the last index if unbalanced).
fn matching_brace(facts: &Facts, open: usize) -> usize {
    let mut d = 0u32;
    let mut i = open;
    while let Some(t) = facts.tok(i) {
        if t.is_punct("{") {
            d += 1;
        } else if t.is_punct("}") {
            d -= 1;
            if d == 0 {
                return i;
            }
        }
        i += 1;
    }
    facts.sig.len().saturating_sub(1)
}

fn extract_fns(facts: &mut Facts) {
    let n = facts.sig.len();
    for i in 0..n {
        if !facts.tok(i).is_some_and(|t| t.is_ident("fn")) {
            continue;
        }
        // `fn` in a fn-pointer type (`fn(u32) -> u32`) has no name.
        let Some(name_tok) = facts.tok(i + 1) else {
            continue;
        };
        if name_tok.kind != Kind::Ident {
            continue;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        // Scan the signature for the body `{` (or `;` for decls),
        // ignoring braces nested in parens (closure defaults etc.).
        let mut j = i + 2;
        let mut parens = 0u32;
        let mut body = None;
        while j < n {
            let t = facts.tok(j).expect("in range");
            if t.is_punct("(") {
                parens += 1;
            } else if t.is_punct(")") {
                parens = parens.saturating_sub(1);
            } else if parens == 0 && t.is_punct(";") {
                break;
            } else if parens == 0 && t.is_punct("{") {
                let close = matching_brace(facts, j);
                body = Some((j, close + 1));
                break;
            }
            j += 1;
        }
        let scan_end = body.map(|(_, e)| e).unwrap_or(j);
        let mentions_f64 = (i..scan_end).any(|k| facts.tok(k).is_some_and(|t| t.is_ident("f64")));
        // Return type: anything mentioning `Result` between a `->` and the
        // body/`;` counts (covers `io::Result<T>` and aliases named so).
        let mut returns_result = false;
        let mut saw_arrow = false;
        for k in i + 2..scan_end.min(body.map(|(b, _)| b).unwrap_or(scan_end)) {
            let Some(t) = facts.tok(k) else { break };
            if t.is_punct("->") {
                saw_arrow = true;
            } else if saw_arrow && t.is_ident("Result") {
                returns_result = true;
                break;
            }
        }
        let end_line = body
            .and_then(|(_, e)| facts.tok(e.saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(line);
        let receiver = facts.enclosing_impl(i).map(|s| s.type_name.clone());
        facts.fns.push(FnFact {
            name,
            line,
            body,
            mentions_f64,
            at: i,
            end_line,
            receiver,
            returns_result,
        });
    }
}

/// `impl [<..>] [Trait for] Type [<..>] { ... }` — record the receiver
/// type (the last path segment before the body, after any `for`) and the
/// brace span. Generic params are skipped by angle counting.
fn extract_impls(facts: &mut Facts) {
    let n = facts.sig.len();
    for i in 0..n {
        if !facts.tok(i).is_some_and(|t| t.is_ident("impl")) {
            continue;
        }
        // `impl` in `impl Trait` return/arg position has no body `{` at
        // angle depth 0 before a terminator; the scan below just won't
        // find one worth recording.
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut last_ident: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        let mut open = None;
        while j < n {
            let t = facts.tok(j).expect("in range");
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "->" => {}
                "for" if angle <= 0 && t.kind == Kind::Ident => saw_for = true,
                "{" if angle <= 0 => {
                    open = Some(j);
                    break;
                }
                ";" | "}" if angle <= 0 => break,
                _ => {
                    if t.kind == Kind::Ident && angle <= 0 {
                        if saw_for {
                            after_for = Some(t.text.clone());
                        } else {
                            last_ident = Some(t.text.clone());
                        }
                    }
                }
            }
            j += 1;
        }
        let (Some(open), Some(type_name)) = (open, after_for.or(last_ident)) else {
            continue;
        };
        let close = matching_brace(facts, open);
        facts.impls.push(ImplSpan {
            type_name,
            start: open,
            end: close,
        });
    }
}

/// Keywords that can directly precede a `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "return", "for", "in", "as", "move", "ref", "mut", "box", "unsafe",
    "async", "await", "let", "else", "fn", "impl", "pub", "use", "mod", "struct", "enum", "trait",
    "type", "where", "dyn", "const", "static", "crate", "super", "self", "Self", "loop", "break",
    "continue", "yield",
];

/// Every `name(` call site, classified by shape. `name!(` macro calls
/// never match because the `!` sits between the name and the paren.
fn extract_calls(facts: &mut Facts) {
    let n = facts.sig.len();
    for i in 0..n {
        let Some(t) = facts.tok(i) else { break };
        if t.kind != Kind::Ident
            || NON_CALL_KEYWORDS.contains(&t.text.as_str())
            || !facts.tok(i + 1).is_some_and(|u| u.is_punct("("))
        {
            continue;
        }
        if facts
            .tok(i.wrapping_sub(1))
            .is_some_and(|u| u.is_ident("fn"))
        {
            continue;
        }
        let (name, line) = (t.text.clone(), t.line);
        let prev = facts.tok(i.wrapping_sub(1));
        let shape = if prev.is_some_and(|u| u.is_punct(".")) {
            let recv = match facts.tok(i.wrapping_sub(2)) {
                Some(r) if r.kind == Kind::Ident => Some(r.text.clone()),
                Some(r) if r.kind == Kind::Number => Some("<self>".to_string()),
                _ => None,
            };
            CallShape::Method { recv }
        } else if prev.is_some_and(|u| u.is_punct("::")) {
            match facts.tok(i.wrapping_sub(2)) {
                Some(q) if q.kind == Kind::Ident => CallShape::Qualified {
                    qual: q.text.clone(),
                },
                _ => CallShape::Free,
            }
        } else {
            CallShape::Free
        };
        let stmt_dropped = is_dropped_stmt(facts, i);
        facts.calls.push(CallFact {
            at: i,
            line,
            name,
            shape,
            stmt_dropped,
        });
    }
}

/// Is the call at significant index `i` (callee name token) the last call
/// of a whole expression statement whose value is discarded — i.e. the
/// matching `)` is immediately followed by `;`, and walking the receiver
/// chain backwards lands on a statement boundary?
fn is_dropped_stmt(facts: &Facts, i: usize) -> bool {
    // Forward: the call's closing paren must be directly followed by `;`.
    let mut j = i + 1;
    let mut parens = 0i32;
    let n = facts.sig.len();
    while j < n {
        let t = facts.tok(j).expect("in range");
        if t.is_punct("(") {
            parens += 1;
        } else if t.is_punct(")") {
            parens -= 1;
            if parens == 0 {
                break;
            }
        }
        j += 1;
    }
    if !facts.tok(j + 1).is_some_and(|t| t.is_punct(";")) {
        return false;
    }
    // Backward: hop over a `recv.`/`Qual::`/`a.b().` chain to the
    // statement start. Anything else (`=`, `return`, an operator…) means
    // the value is consumed.
    let mut k = i;
    loop {
        let Some(p) = facts.tok(k.wrapping_sub(1)) else {
            return true; // start of file
        };
        if p.is_punct(".") || p.is_punct("::") {
            // Skip the segment before the separator; a `)` closes a
            // chained call whose arguments we hop over wholesale.
            let Some(q) = facts.tok(k.wrapping_sub(2)) else {
                return false;
            };
            if q.kind == Kind::Ident || q.kind == Kind::Number {
                k -= 2;
            } else if q.is_punct(")") {
                let mut d = 0i32;
                let mut m = k - 2;
                loop {
                    let t = facts.tok(m).expect("in range");
                    if t.is_punct(")") {
                        d += 1;
                    } else if t.is_punct("(") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    if m == 0 {
                        return false;
                    }
                    m -= 1;
                }
                // Token before the `(` should be the chained call's name.
                if m == 0 || !facts.tok(m - 1).is_some_and(|t| t.kind == Kind::Ident) {
                    return false;
                }
                k = m - 1;
            } else {
                return false;
            }
        } else {
            return p.is_punct(";") || p.is_punct("{") || p.is_punct("}");
        }
    }
}

/// Zero-argument `.write()` / `.read()` / `.lock()` sites with a lock
/// identity taken from the receiver token.
fn extract_acquires(facts: &mut Facts) {
    let n = facts.sig.len();
    for i in 0..n {
        let Some(t) = facts.tok(i) else { break };
        if !t.is_punct(".") {
            continue;
        }
        let Some(m) = facts.tok(i + 1) else { continue };
        if !(m.is_ident("write") || m.is_ident("read") || m.is_ident("lock"))
            || !facts.tok(i + 2).is_some_and(|u| u.is_punct("("))
            || !facts.tok(i + 3).is_some_and(|u| u.is_punct(")"))
        {
            continue;
        }
        let lock = match facts.tok(i.wrapping_sub(1)) {
            Some(r) if r.kind == Kind::Ident && r.text != "self" => r.text.clone(),
            Some(r) if r.kind == Kind::Number || r.is_ident("self") => "<self>".to_string(),
            _ => continue, // computed receiver: no stable identity
        };
        facts.acquires.push(AcquireFact {
            at: i + 1,
            line: m.line,
            lock,
            kind: m.text.clone(),
        });
    }
}

/// `let [mut] g = <init ending in .write()/.read()/.lock()>;` — like
/// [`extract_guards`] but for every acquire kind, carrying the lock
/// identity of the *last* acquire in the initialiser.
fn extract_lock_guards(facts: &mut Facts) {
    let n = facts.sig.len();
    for i in 0..n {
        if !facts.tok(i).is_some_and(|t| t.is_ident("let")) {
            continue;
        }
        let mut j = i + 1;
        if facts.tok(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = facts.tok(j) else {
            continue;
        };
        if name_tok.kind != Kind::Ident {
            continue;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        if !facts.tok(j + 1).is_some_and(|t| t.is_punct("=")) {
            continue;
        }
        let mut k = j + 2;
        let mut hit: Option<(String, String)> = None;
        while k < n {
            let t = facts.tok(k).expect("in range");
            if t.is_punct(";") {
                break;
            }
            if t.is_punct(".")
                && facts.tok(k + 2).is_some_and(|u| u.is_punct("("))
                && facts.tok(k + 3).is_some_and(|u| u.is_punct(")"))
            {
                if let Some(m) = facts.tok(k + 1) {
                    if m.is_ident("write") || m.is_ident("read") || m.is_ident("lock") {
                        let lock = match facts.tok(k.wrapping_sub(1)) {
                            Some(r) if r.kind == Kind::Ident && r.text != "self" => r.text.clone(),
                            _ => "<self>".to_string(),
                        };
                        hit = Some((lock, m.text.clone()));
                    }
                }
            }
            k += 1;
        }
        let Some((lock, kind)) = hit else { continue };
        let stmt_end = k;
        let let_depth = facts.depth[i];
        let mut end = n;
        let mut m = stmt_end + 1;
        while m < n {
            let t = facts.tok(m).expect("in range");
            if t.is_punct("}") && facts.depth[m] < let_depth {
                end = m;
                break;
            }
            if t.is_ident("drop")
                && facts.tok(m + 1).is_some_and(|u| u.is_punct("("))
                && facts.tok(m + 2).is_some_and(|u| u.is_ident(&name))
            {
                end = m;
                break;
            }
            m += 1;
        }
        facts.lock_guards.push(LockGuard {
            name,
            line,
            lock,
            kind,
            start: stmt_end + 1,
            end,
        });
    }
}

/// `let _ = <init>;` statements whose initialiser contains a call.
fn extract_drop_lets(facts: &mut Facts) {
    let n = facts.sig.len();
    for i in 0..n {
        if !(facts.tok(i).is_some_and(|t| t.is_ident("let"))
            && facts.tok(i + 1).is_some_and(|t| t.is_ident("_"))
            && facts.tok(i + 2).is_some_and(|t| t.is_punct("=")))
        {
            continue;
        }
        let line = facts.tok(i).map(|t| t.line).unwrap_or(1);
        let mut callees = Vec::new();
        let mut j = i + 3;
        while j < n {
            let t = facts.tok(j).expect("in range");
            if t.is_punct(";") {
                break;
            }
            if t.kind == Kind::Ident
                && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
                && facts.tok(j + 1).is_some_and(|u| u.is_punct("("))
            {
                callees.push(t.text.clone());
            }
            j += 1;
        }
        if !callees.is_empty() {
            facts.drop_lets.push(DropLet { line, callees });
        }
    }
}

/// Name→type bindings: `name: [& mut]* Type` ascriptions (first
/// uppercase-initial type ident wins) and `let name = Type::…`
/// initialisers.
fn extract_bindings(facts: &mut Facts) {
    let n = facts.sig.len();
    for i in 0..n {
        let Some(t) = facts.tok(i) else { break };
        if t.kind != Kind::Ident || NON_INDEX_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let name = t.text.clone();
        if facts.tok(i + 1).is_some_and(|p| p.is_punct(":"))
            && !facts.tok(i + 2).is_some_and(|p| p.is_punct(":"))
        {
            let mut j = i + 2;
            while j < n && j < i + 6 {
                let u = facts.tok(j).expect("in range");
                if u.is_punct("&") || u.is_ident("mut") || u.kind == Kind::Lifetime {
                    j += 1;
                    continue;
                }
                if u.kind == Kind::Ident && u.text.starts_with(|c: char| c.is_ascii_uppercase()) {
                    facts.bindings.push((name.clone(), u.text.clone()));
                }
                break;
            }
        }
        let is_let = facts
            .tok(i.wrapping_sub(1))
            .is_some_and(|p| p.is_ident("let"))
            || (facts
                .tok(i.wrapping_sub(1))
                .is_some_and(|p| p.is_ident("mut"))
                && facts
                    .tok(i.wrapping_sub(2))
                    .is_some_and(|p| p.is_ident("let")));
        if is_let
            && facts.tok(i + 1).is_some_and(|p| p.is_punct("="))
            && facts.tok(i + 3).is_some_and(|p| p.is_punct("::"))
        {
            if let Some(ty) = facts.tok(i + 2) {
                if ty.kind == Kind::Ident && ty.text.starts_with(|c: char| c.is_ascii_uppercase()) {
                    facts.bindings.push((name, ty.text.clone()));
                }
            }
        }
    }
}

/// Two binding shapes make a name hash-ordered: an ascription whose type
/// mentions `HashMap`/`HashSet` (covers struct fields, params, and typed
/// lets), and an untyped `let` whose initialiser mentions them.
fn extract_hashy_names(facts: &mut Facts) {
    let n = facts.sig.len();
    for i in 0..n {
        let name = match facts.tok(i) {
            Some(t) if t.kind == Kind::Ident => t.text.clone(),
            Some(_) => continue,
            None => break,
        };
        if NON_INDEX_KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        // `name : <type>` — scan the type to a depth-0 terminator.
        if facts.tok(i + 1).is_some_and(|p| p.is_punct(":")) {
            let mut j = i + 2;
            let mut angle = 0i32;
            let mut paren = 0i32;
            let mut hashy = false;
            while j < n {
                let u = facts.tok(j).expect("in range");
                match u.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    // Nested generic closers lex as shift tokens.
                    ">>" => angle -= 2,
                    "(" | "[" => paren += 1,
                    ")" | "]" if paren > 0 => paren -= 1,
                    "," | "=" | ";" | "{" | "}" | ")" | "]" if angle <= 0 && paren == 0 => break,
                    "HashMap" | "HashSet" if u.kind == Kind::Ident => hashy = true,
                    _ => {}
                }
                j += 1;
            }
            if hashy {
                facts.hashy_names.insert(name.clone());
            }
        }
        // `let [mut] name = <init>;` with a hash-typed initialiser.
        let is_let = facts
            .tok(i.wrapping_sub(1))
            .is_some_and(|p| p.is_ident("let"))
            || (facts
                .tok(i.wrapping_sub(1))
                .is_some_and(|p| p.is_ident("mut"))
                && facts
                    .tok(i.wrapping_sub(2))
                    .is_some_and(|p| p.is_ident("let")));
        if is_let && facts.tok(i + 1).is_some_and(|p| p.is_punct("=")) {
            let mut j = i + 2;
            let mut hashy = false;
            while j < n {
                let u = facts.tok(j).expect("in range");
                if u.is_punct(";") {
                    break;
                }
                if u.is_ident("HashMap") || u.is_ident("HashSet") {
                    hashy = true;
                    break;
                }
                j += 1;
            }
            if hashy {
                facts.hashy_names.insert(name);
            }
        }
    }
}

fn extract_unsafe(facts: &mut Facts) {
    for i in 0..facts.sig.len() {
        if !facts.tok(i).is_some_and(|t| t.is_ident("unsafe")) {
            continue;
        }
        // Blocks only: `unsafe fn` / `unsafe impl` declare, not perform.
        if !facts.tok(i + 1).is_some_and(|t| t.is_punct("{")) {
            continue;
        }
        let line = facts.tok(i).map(|t| t.line).unwrap_or(1);
        // Look back through the raw stream for a SAFETY comment within
        // six lines above the block (trailing-on-same-line also counts).
        let raw_idx = facts.sig[i];
        let floor = line.saturating_sub(6);
        let has_safety = facts.tokens[..raw_idx]
            .iter()
            .rev()
            .take_while(|t| t.line >= floor)
            .any(|t| t.kind == Kind::Comment && t.text.contains("SAFETY"));
        facts.unsafe_blocks.push(UnsafeFact { line, has_safety });
    }
}

/// `let [mut] g = <expr containing .write()>;` — the RwLock write-guard
/// idiom ([`PublishSlot::publish`] is the only workspace writer). The
/// guard is live to the end of its block or an explicit `drop(g)`.
fn extract_guards(facts: &mut Facts) {
    let n = facts.sig.len();
    for i in 0..n {
        if !facts.tok(i).is_some_and(|t| t.is_ident("let")) {
            continue;
        }
        let mut j = i + 1;
        if facts.tok(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = facts.tok(j) else {
            continue;
        };
        if name_tok.kind != Kind::Ident {
            continue;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        if !facts.tok(j + 1).is_some_and(|t| t.is_punct("=")) {
            continue;
        }
        // Scan the initialiser to `;` looking for `.write()`.
        let mut k = j + 2;
        let mut is_guard = false;
        while k < n {
            let t = facts.tok(k).expect("in range");
            if t.is_punct(";") {
                break;
            }
            if t.is_punct(".")
                && facts.tok(k + 1).is_some_and(|u| u.is_ident("write"))
                && facts.tok(k + 2).is_some_and(|u| u.is_punct("("))
                && facts.tok(k + 3).is_some_and(|u| u.is_punct(")"))
            {
                is_guard = true;
            }
            k += 1;
        }
        if !is_guard {
            continue;
        }
        let stmt_end = k; // the `;`
        let let_depth = facts.depth[i];
        // Live until the enclosing block closes or `drop(name)`.
        let mut end = n;
        let mut m = stmt_end + 1;
        while m < n {
            let t = facts.tok(m).expect("in range");
            if t.is_punct("}") && facts.depth[m] < let_depth {
                end = m;
                break;
            }
            if t.is_ident("drop")
                && facts.tok(m + 1).is_some_and(|u| u.is_punct("("))
                && facts.tok(m + 2).is_some_and(|u| u.is_ident(&name))
            {
                end = m;
                break;
            }
            m += 1;
        }
        facts.guards.push(GuardFact {
            name,
            line,
            start: stmt_end + 1,
            end,
        });
    }
}

fn extract_loops_and_iter_calls(facts: &mut Facts) {
    let n = facts.sig.len();
    for i in 0..n {
        let (t_text, t_kind, t_line) = match facts.tok(i) {
            Some(t) => (t.text.clone(), t.kind, t.line),
            None => break,
        };
        // `for <pat> in <iterand> {` — `impl T for U` and `for<'a>` have
        // no depth-0 `in` before the `{`.
        if t_kind == Kind::Ident
            && t_text == "for"
            && !facts.tok(i + 1).is_some_and(|u| u.is_punct("<"))
        {
            let line = t_line;
            let mut j = i + 1;
            let mut nest = 0i32;
            let mut in_at = None;
            while j < n {
                let u = facts.tok(j).expect("in range");
                match u.text.as_str() {
                    "(" | "[" => nest += 1,
                    ")" | "]" => nest -= 1,
                    "{" if nest == 0 => break,
                    ";" if nest == 0 => break,
                    "in" if nest == 0 && u.kind == Kind::Ident => {
                        in_at = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(start) = in_at {
                let mut idents = Vec::new();
                let mut k = start + 1;
                let mut nest2 = 0i32;
                while k < n {
                    let u = facts.tok(k).expect("in range");
                    match u.text.as_str() {
                        "(" | "[" => nest2 += 1,
                        ")" | "]" => nest2 -= 1,
                        "{" if nest2 == 0 => break,
                        _ => {
                            if u.kind == Kind::Ident {
                                idents.push(u.text.clone());
                            }
                        }
                    }
                    k += 1;
                }
                facts.for_loops.push(ForLoop {
                    line,
                    at: i,
                    iterand_idents: idents,
                });
            }
        }
        // `recv.method(` with an iterator-producing method.
        if t_kind == Kind::Ident
            && facts.tok(i + 1).is_some_and(|u| u.is_punct("."))
            && facts.tok(i + 3).is_some_and(|u| u.is_punct("("))
        {
            let method = match facts.tok(i + 2) {
                Some(m) if m.kind == Kind::Ident && ITER_METHODS.contains(&m.text.as_str()) => {
                    Some((m.text.clone(), m.line))
                }
                _ => None,
            };
            if let Some((method, line)) = method {
                facts.iter_calls.push(IterCall {
                    line,
                    at: i + 2,
                    receiver: t_text,
                    method,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_spans_and_f64_flag() {
        let f = extract("fn a(x: f64) -> f64 { x }\nfn b() {}\n");
        assert_eq!(f.fns.len(), 2);
        assert!(f.fns[0].mentions_f64);
        assert!(!f.fns[1].mentions_f64);
        assert!(f.fns[0].body.is_some());
    }

    #[test]
    fn cfg_test_mod_and_test_fn_spans() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() {}\n}\n#[test]\nfn tt() {}\n";
        let f = extract(src);
        assert_eq!(f.test_spans.len(), 2);
        assert!(!f.in_test(1));
        assert!(f.in_test(4));
        assert!(f.in_test(7));
    }

    #[test]
    fn cfg_not_test_is_live() {
        let f = extract("#[cfg(not(test))]\nfn live() {}\n");
        assert!(f.test_spans.is_empty());
    }

    #[test]
    fn allow_directives_parse() {
        let src = "// analyzer:allow(cost-purity): advisors go through the counted path\n\
                   fn a() {}\n\
                   // analyzer:allow(panic-freedom)\n\
                   fn b() {}\n";
        let f = extract(src);
        assert_eq!(f.allows.len(), 2);
        assert!(f.allows[0].has_reason);
        assert_eq!(f.allows[0].rule, "cost-purity");
        assert!(!f.allows[1].has_reason);
    }

    #[test]
    fn hashy_names_from_field_param_and_let() {
        let src = "struct S { m: HashMap<u32, f64> }\n\
                   fn f(n: &HashSet<u32>) { let q = HashMap::new(); let v = Vec::new(); }\n";
        let f = extract(src);
        assert!(f.hashy_names.contains("m"));
        assert!(f.hashy_names.contains("n"));
        assert!(f.hashy_names.contains("q"));
        assert!(!f.hashy_names.contains("v"));
    }

    #[test]
    fn guard_live_span_ends_at_block_or_drop() {
        let src = "fn f() {\n let g = slot.write();\n touch();\n}\n\
                   fn h() {\n let g = slot.write();\n drop(g);\n after();\n}\n";
        let f = extract(src);
        assert_eq!(f.guards.len(), 2);
        let touch_at = (0..f.sig.len())
            .find(|&i| f.tok(i).is_some_and(|t| t.is_ident("touch")))
            .unwrap();
        assert!(f.guards[0].start <= touch_at && touch_at < f.guards[0].end);
        let after_at = (0..f.sig.len())
            .find(|&i| f.tok(i).is_some_and(|t| t.is_ident("after")))
            .unwrap();
        assert!(after_at >= f.guards[1].end);
    }

    #[test]
    fn for_loops_vs_impl_for() {
        let src = "impl Display for Foo { fn f(&self) { for x in self.items.iter() {} } }\n";
        let f = extract(src);
        assert_eq!(f.for_loops.len(), 1);
        assert!(f.for_loops[0].iterand_idents.contains(&"items".to_string()));
        assert_eq!(f.iter_calls.len(), 1);
        assert_eq!(f.iter_calls[0].receiver, "items");
    }
}
