//! Per-file fact modules and their on-disk cache.
//!
//! A [`FileSummary`] is the analyzer's EDB for one source file: every
//! base relation the interprocedural rules need (fns, calls, direct
//! cost/panic sites, lock acquisitions, dropped results, allows, and the
//! purely-local diagnostics), distilled from the token-level [`crate::facts`]
//! extraction. It is deliberately *position-free* — only lines and
//! fn-indices survive — so it can be serialised to
//! `target/analyzer-facts/` keyed by an FNV-64 content hash and reloaded
//! on the next run without re-lexing, in the spirit of modular Datalog
//! materialisation: extraction is paid per *changed* file, the (cheap,
//! deterministic) global inference is re-derived every run.

use crate::facts::{extract, CallShape};
use crate::rules;
use std::fs;
use std::path::Path;

/// Bump when `FileSummary` or any extraction heuristic changes shape —
/// stale cache entries from older analyzer builds must miss, not decode.
pub const CACHE_VERSION: u32 = 1;

/// Sentinel for "no enclosing fn" in `fn_idx` fields.
pub const NO_FN: u32 = u32::MAX;

/// One fn item, as the graph layer sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSum {
    pub name: String,
    /// Receiver type of the enclosing `impl`, empty for free fns.
    pub receiver: String,
    pub line: u32,
    pub end_line: u32,
    pub is_test: bool,
    pub returns_result: bool,
}

/// One call site, attributed to its enclosing fn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSum {
    pub fn_idx: u32,
    pub line: u32,
    pub name: String,
    /// 0 = free, 1 = method, 2 = qualified.
    pub shape: u8,
    /// The receiver/qualifier token text (may be empty).
    pub arg: String,
    /// Receiver *type*, when bindings or the enclosing impl resolve it.
    pub recv_ty: String,
    /// Ranked-lock identities held (live guards) at this call.
    pub held: Vec<String>,
    /// The call is a value-discarding expression statement (`f();`).
    pub stmt_dropped: bool,
}

/// A direct rule site (cost-purity or panic-freedom pattern match),
/// carrying the exact human message the per-file linter would print.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteSum {
    pub fn_idx: u32,
    pub line: u32,
    pub msg: String,
}

/// A `.write()`/`.read()`/`.lock()` acquisition site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcquireSum {
    pub fn_idx: u32,
    pub line: u32,
    pub lock: String,
    pub held: Vec<String>,
}

/// A `let _ = …;` discarding at least one call result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropSum {
    pub fn_idx: u32,
    pub line: u32,
    pub callees: Vec<String>,
}

/// An `analyzer:allow` directive with its resolved target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowSum {
    pub rule: String,
    pub line: u32,
    pub has_reason: bool,
    /// First significant source line at or below the comment (0 = none).
    pub target_line: u32,
    /// Innermost fn whose line span contains the target ([`NO_FN`] = none).
    pub fn_idx: u32,
}

/// A purely file-local diagnostic (fp-determinism, unsafe-audit,
/// lock-discipline) computed at extraction time so warm runs never re-lex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalDiag {
    pub line: u32,
    pub rule: String,
    pub msg: String,
}

/// The complete per-file fact module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileSummary {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// FNV-64 of the source bytes this summary was extracted from.
    pub hash: u64,
    /// Repo-root `examples/`/`tests/` harness file: panic-freedom is
    /// relaxed wholesale (test-adjacent code), other rules still apply.
    pub harness: bool,
    pub fns: Vec<FnSum>,
    pub calls: Vec<CallSum>,
    pub cost_sites: Vec<SiteSum>,
    pub panic_sites: Vec<SiteSum>,
    pub acquires: Vec<AcquireSum>,
    pub drops: Vec<DropSum>,
    pub allows: Vec<AllowSum>,
    pub local_diags: Vec<LocalDiag>,
}

/// FNV-1a, 64-bit — stable, dependency-free content hash.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn is_harness_path(path: &str) -> bool {
    path.starts_with("examples/") || path.starts_with("tests/")
}

/// Extract the full fact module for one file.
pub fn summarize(path: &str, src: &str) -> FileSummary {
    let facts = extract(src);
    let hash = fnv64(src.as_bytes());

    let fns: Vec<FnSum> = facts
        .fns
        .iter()
        .map(|f| FnSum {
            name: f.name.clone(),
            receiver: f.receiver.clone().unwrap_or_default(),
            line: f.line,
            end_line: f.end_line,
            is_test: facts.in_test(f.line),
            returns_result: f.returns_result,
        })
        .collect();

    let fn_idx_of = |at: usize| {
        facts
            .enclosing_fn_idx(at)
            .map(|i| i as u32)
            .unwrap_or(NO_FN)
    };
    // Canonicalise `<self>` lock identities to the enclosing impl type.
    let canon_lock = |lock: &str, at: usize| -> String {
        if lock == "<self>" {
            facts
                .enclosing_impl(at)
                .map(|s| s.type_name.clone())
                .unwrap_or_else(|| "<self>".to_string())
        } else {
            lock.to_string()
        }
    };
    let held_at = |at: usize| -> Vec<String> {
        let mut held: Vec<String> = facts
            .lock_guards
            .iter()
            .filter(|g| g.start <= at && at < g.end)
            .map(|g| canon_lock(&g.lock, g.start))
            .collect();
        held.sort();
        held.dedup();
        held
    };
    // Last binding for a name wins (token order approximates scope).
    let bind_ty = |name: &str| -> String {
        facts
            .bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.clone())
            .unwrap_or_default()
    };
    let impl_ty_at = |at: usize| -> String {
        facts
            .enclosing_impl(at)
            .map(|s| s.type_name.clone())
            .unwrap_or_default()
    };

    let calls: Vec<CallSum> = facts
        .calls
        .iter()
        .map(|c| {
            let (shape, arg, recv_ty) = match &c.shape {
                CallShape::Free => (0u8, String::new(), String::new()),
                CallShape::Method { recv } => {
                    let arg = recv.clone().unwrap_or_default();
                    let ty = match arg.as_str() {
                        "self" | "<self>" => impl_ty_at(c.at),
                        "" => String::new(),
                        other => bind_ty(other),
                    };
                    (1u8, arg, ty)
                }
                CallShape::Qualified { qual } => {
                    let ty = if qual == "Self" {
                        impl_ty_at(c.at)
                    } else {
                        qual.clone()
                    };
                    (2u8, qual.clone(), ty)
                }
            };
            CallSum {
                fn_idx: fn_idx_of(c.at),
                line: c.line,
                name: c.name.clone(),
                shape,
                arg,
                recv_ty,
                held: held_at(c.at),
                stmt_dropped: c.stmt_dropped,
            }
        })
        .collect();

    let site = |(at, line, msg): (usize, u32, String)| SiteSum {
        fn_idx: fn_idx_of(at),
        line,
        msg,
    };
    let cost_sites = rules::cost_sites(&facts).into_iter().map(site).collect();
    let panic_sites = rules::panic_sites(&facts).into_iter().map(site).collect();

    let acquires: Vec<AcquireSum> = facts
        .acquires
        .iter()
        .map(|a| AcquireSum {
            fn_idx: fn_idx_of(a.at),
            line: a.line,
            lock: canon_lock(&a.lock, a.at),
            held: held_at(a.at.saturating_sub(1)),
        })
        .collect();

    let drops: Vec<DropSum> = facts
        .drop_lets
        .iter()
        .map(|d| {
            // Attribute by line: the innermost fn whose span contains it.
            let fn_idx = fns
                .iter()
                .rposition(|f| f.line <= d.line && d.line <= f.end_line)
                .map(|i| i as u32)
                .unwrap_or(NO_FN);
            DropSum {
                fn_idx,
                line: d.line,
                callees: d.callees.clone(),
            }
        })
        .collect();

    let sig_lines: Vec<u32> = facts.sig.iter().map(|&j| facts.tokens[j].line).collect();
    let allows: Vec<AllowSum> = facts
        .allows
        .iter()
        .map(|a| {
            let target_line = sig_lines
                .iter()
                .copied()
                .find(|&l| l >= a.line)
                .unwrap_or(0);
            let fn_idx = if target_line == 0 {
                NO_FN
            } else {
                fns.iter()
                    .rposition(|f| f.line <= target_line && target_line <= f.end_line)
                    .map(|i| i as u32)
                    .unwrap_or(NO_FN)
            };
            AllowSum {
                rule: a.rule.clone(),
                line: a.line,
                has_reason: a.has_reason,
                target_line,
                fn_idx,
            }
        })
        .collect();

    let local_diags = rules::local_diags(&facts)
        .into_iter()
        .map(|(line, rule, msg)| LocalDiag {
            line,
            rule: rule.to_string(),
            msg,
        })
        .collect();

    FileSummary {
        path: path.to_string(),
        hash,
        harness: is_harness_path(path),
        fns,
        calls,
        cost_sites,
        panic_sites,
        acquires,
        drops,
        allows,
        local_diags,
    }
}

/// Cache hit/miss accounting for the summary line.
#[derive(Debug, Default, Clone, Copy)]
pub struct CacheStats {
    pub files: usize,
    pub hits: usize,
    pub extracted: usize,
}

/// Load the summary for `path` from the cache if the content hash
/// matches, else extract and (best-effort) persist it.
pub fn load_or_summarize(
    cache_dir: Option<&Path>,
    path: &str,
    src: &str,
    stats: &mut CacheStats,
) -> FileSummary {
    stats.files += 1;
    let hash = fnv64(src.as_bytes());
    let entry = cache_dir.map(|d| d.join(format!("{}.facts", path.replace('/', "__"))));
    if let Some(entry) = &entry {
        if let Ok(text) = fs::read_to_string(entry) {
            if let Some(sum) = decode(&text) {
                if sum.hash == hash && sum.path == path {
                    stats.hits += 1;
                    return sum;
                }
            }
        }
    }
    stats.extracted += 1;
    let sum = summarize(path, src);
    if let Some(entry) = &entry {
        if let Some(dir) = entry.parent() {
            let _ = fs::create_dir_all(dir);
        }
        let _ = fs::write(entry, encode(&sum));
    }
    sum
}

// ---- codec ---------------------------------------------------------------
//
// Line-oriented, tab-separated records with `\`-escaping; first line is a
// version + hash header. Hand-rolled because the workspace is offline and
// the analyzer must stay dependency-free.

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

fn join(list: &[String]) -> String {
    list.iter().map(|s| esc(s)).collect::<Vec<_>>().join(",")
}

fn split_list(s: &str) -> Vec<String> {
    if s.is_empty() {
        Vec::new()
    } else {
        s.split(',').map(unesc).collect()
    }
}

/// Serialise a summary to the cache text format.
pub fn encode(s: &FileSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "v{CACHE_VERSION}\t{:016x}\t{}\t{}\n",
        s.hash,
        esc(&s.path),
        s.harness as u8
    ));
    for f in &s.fns {
        out.push_str(&format!(
            "fn\t{}\t{}\t{}\t{}\t{}\t{}\n",
            esc(&f.name),
            esc(&f.receiver),
            f.line,
            f.end_line,
            f.is_test as u8,
            f.returns_result as u8
        ));
    }
    for c in &s.calls {
        out.push_str(&format!(
            "call\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            c.fn_idx,
            c.line,
            esc(&c.name),
            c.shape,
            esc(&c.arg),
            esc(&c.recv_ty),
            join(&c.held),
            c.stmt_dropped as u8
        ));
    }
    for (tag, sites) in [("cost", &s.cost_sites), ("panic", &s.panic_sites)] {
        for x in sites.iter() {
            out.push_str(&format!(
                "{tag}\t{}\t{}\t{}\n",
                x.fn_idx,
                x.line,
                esc(&x.msg)
            ));
        }
    }
    for a in &s.acquires {
        out.push_str(&format!(
            "acq\t{}\t{}\t{}\t{}\n",
            a.fn_idx,
            a.line,
            esc(&a.lock),
            join(&a.held)
        ));
    }
    for d in &s.drops {
        out.push_str(&format!(
            "drop\t{}\t{}\t{}\n",
            d.fn_idx,
            d.line,
            join(&d.callees)
        ));
    }
    for a in &s.allows {
        out.push_str(&format!(
            "allow\t{}\t{}\t{}\t{}\t{}\n",
            esc(&a.rule),
            a.line,
            a.has_reason as u8,
            a.target_line,
            a.fn_idx
        ));
    }
    for d in &s.local_diags {
        out.push_str(&format!(
            "diag\t{}\t{}\t{}\n",
            d.line,
            esc(&d.rule),
            esc(&d.msg)
        ));
    }
    out
}

/// Parse the cache text format; `None` on any malformed input (the
/// caller falls back to re-extraction — a cache can never panic a run).
pub fn decode(text: &str) -> Option<FileSummary> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let mut h = header.split('\t');
    let ver = h.next()?;
    if ver != format!("v{CACHE_VERSION}") {
        return None;
    }
    let hash = u64::from_str_radix(h.next()?, 16).ok()?;
    let path = unesc(h.next()?);
    let harness = h.next()? == "1";
    let mut s = FileSummary {
        path,
        hash,
        harness,
        fns: Vec::new(),
        calls: Vec::new(),
        cost_sites: Vec::new(),
        panic_sites: Vec::new(),
        acquires: Vec::new(),
        drops: Vec::new(),
        allows: Vec::new(),
        local_diags: Vec::new(),
    };
    for line in lines {
        let mut f = line.split('\t');
        match f.next()? {
            "fn" => s.fns.push(FnSum {
                name: unesc(f.next()?),
                receiver: unesc(f.next()?),
                line: f.next()?.parse().ok()?,
                end_line: f.next()?.parse().ok()?,
                is_test: f.next()? == "1",
                returns_result: f.next()? == "1",
            }),
            "call" => s.calls.push(CallSum {
                fn_idx: f.next()?.parse().ok()?,
                line: f.next()?.parse().ok()?,
                name: unesc(f.next()?),
                shape: f.next()?.parse().ok()?,
                arg: unesc(f.next()?),
                recv_ty: unesc(f.next()?),
                held: split_list(f.next()?),
                stmt_dropped: f.next()? == "1",
            }),
            tag @ ("cost" | "panic") => {
                let x = SiteSum {
                    fn_idx: f.next()?.parse().ok()?,
                    line: f.next()?.parse().ok()?,
                    msg: unesc(f.next()?),
                };
                if tag == "cost" {
                    s.cost_sites.push(x);
                } else {
                    s.panic_sites.push(x);
                }
            }
            "acq" => s.acquires.push(AcquireSum {
                fn_idx: f.next()?.parse().ok()?,
                line: f.next()?.parse().ok()?,
                lock: unesc(f.next()?),
                held: split_list(f.next()?),
            }),
            "drop" => s.drops.push(DropSum {
                fn_idx: f.next()?.parse().ok()?,
                line: f.next()?.parse().ok()?,
                callees: split_list(f.next()?),
            }),
            "allow" => s.allows.push(AllowSum {
                rule: unesc(f.next()?),
                line: f.next()?.parse().ok()?,
                has_reason: f.next()? == "1",
                target_line: f.next()?.parse().ok()?,
                fn_idx: f.next()?.parse().ok()?,
            }),
            "diag" => s.local_diags.push(LocalDiag {
                line: f.next()?.parse().ok()?,
                rule: unesc(f.next()?),
                msg: unesc(f.next()?),
            }),
            _ => return None,
        }
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips() {
        let src = "impl Advisor {\n    fn step(&self, s: &TuningSession) -> Result<(), E> {\n        let _ = s.sync_all();\n        helper(1);\n        Ok(())\n    }\n}\n";
        let sum = summarize("crates/core/src/x.rs", src);
        let back = decode(&encode(&sum)).expect("decode");
        assert_eq!(sum, back);
    }

    #[test]
    fn hash_keyed_cache_hits_and_misses() {
        let dir = std::env::temp_dir().join(format!("analyzer-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut stats = CacheStats::default();
        let a = load_or_summarize(Some(&dir), "crates/x/src/a.rs", "fn a() {}\n", &mut stats);
        assert_eq!((stats.hits, stats.extracted), (0, 1));
        let b = load_or_summarize(Some(&dir), "crates/x/src/a.rs", "fn a() {}\n", &mut stats);
        assert_eq!((stats.hits, stats.extracted), (1, 1));
        assert_eq!(a, b);
        // Changed content: the hash misses and the entry is rewritten.
        let c = load_or_summarize(Some(&dir), "crates/x/src/a.rs", "fn b() {}\n", &mut stats);
        assert_eq!((stats.hits, stats.extracted), (1, 2));
        assert_eq!(c.fns[0].name, "b");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_attributes_calls_and_locks() {
        let src = "impl Slot {\n    fn publish(&self) {\n        let mut g = self.current.write();\n        self.swap(g);\n    }\n}\n";
        let sum = summarize("crates/inum/src/x.rs", src);
        assert_eq!(sum.fns.len(), 1);
        let call = sum
            .calls
            .iter()
            .find(|c| c.name == "swap")
            .expect("swap call");
        assert_eq!(call.recv_ty, "Slot");
        assert_eq!(call.held, vec!["current".to_string()]);
        let acq = sum.acquires.first().expect("acquire");
        assert_eq!(acq.lock, "current");
    }
}
