//! CLI entry point:
//! `pgdesign-analyzer [workspace-root] [--format human|json] [--no-cache] [--cache-dir DIR]`.
//!
//! Analyzes every covered `.rs` file (see the crate rustdoc for the
//! walk and scoping table) and prints one `path:line: rule: message`
//! diagnostic per violation; interprocedural findings include the full
//! call chain. `--format json` emits a machine-readable array of
//! `{rule, path, line, severity, chain, msg}` for CI diffing. Exits 0
//! when no error-severity diagnostic remains (warnings such as
//! `dead-allow` print but do not gate), 1 on any error, 2 on I/O or
//! usage failure.

#![forbid(unsafe_code)]

use pgdesign_analyzer::{analyze_workspace_cached, Config, Diagnostic, Severity, RULE_NAMES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    cache_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut no_cache = false;
    let mut cache_dir: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().as_deref() {
                Some("json") => json = true,
                Some("human") => json = false,
                other => return Err(format!("--format wants human|json, got {other:?}")),
            },
            "--no-cache" => no_cache = true,
            "--cache-dir" => {
                let d = it.next().ok_or("--cache-dir wants a path")?;
                cache_dir = Some(PathBuf::from(d));
            }
            _ if a.starts_with('-') => return Err(format!("unknown flag {a}")),
            _ => root = PathBuf::from(a),
        }
    }
    let cache_dir = if no_cache {
        None
    } else {
        Some(cache_dir.unwrap_or_else(|| root.join("target/analyzer-facts")))
    };
    Ok(Args {
        root,
        json,
        cache_dir,
    })
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn emit_json(diags: &[Diagnostic]) {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let sev = match d.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        out.push_str(&format!(
            "\n  {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"severity\": \"{}\", \"chain\": [",
            json_escape(d.rule),
            json_escape(&d.path),
            d.line,
            sev
        ));
        for (j, l) in d.chain.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"fn\": \"{}\", \"path\": \"{}\", \"line\": {}}}",
                json_escape(&l.func),
                json_escape(&l.path),
                l.line
            ));
        }
        out.push_str(&format!("], \"msg\": \"{}\"}}", json_escape(&d.msg)));
    }
    out.push_str("\n]");
    println!("{out}");
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pgdesign-analyzer: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = Config::workspace();
    let report = match analyze_workspace_cached(&args.root, &cfg, args.cache_dir.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "pgdesign-analyzer: cannot read workspace at {}: {e}",
                args.root.display()
            );
            return ExitCode::from(2);
        }
    };
    let errors = report
        .diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = report.diags.len() - errors;

    if args.json {
        emit_json(&report.diags);
        return if errors == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for d in &report.diags {
        match d.severity {
            Severity::Error => println!("{d}"),
            Severity::Warning => println!("warning: {d}"),
        }
    }
    let s = report.stats;
    eprintln!(
        "pgdesign-analyzer: {} files in {} ms (cache: {} hit / {} extracted), \
         graph {} fns / {} edges, {} fixpoint rounds in {} ms",
        s.files, s.extract_ms, s.cache_hits, s.extracted, s.fns, s.edges, s.rounds, s.infer_ms
    );
    if errors == 0 {
        if warnings > 0 {
            eprintln!("pgdesign-analyzer: clean with {warnings} warning(s)");
        } else {
            eprintln!(
                "pgdesign-analyzer: workspace clean ({} files, {} rules)",
                s.files,
                RULE_NAMES.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("pgdesign-analyzer: {errors} violation(s)");
        ExitCode::FAILURE
    }
}
