//! CLI entry point: `pgdesign-analyzer [workspace-root]`.
//!
//! Analyzes every `crates/*/src/**.rs` file and prints one
//! `path:line: rule: message` diagnostic per violation. Exits 0 on a
//! clean workspace, 1 on any violation (including an `analyzer:allow`
//! without a written reason), 2 on I/O failure.

#![forbid(unsafe_code)]

use pgdesign_analyzer::{analyze_workspace, workspace_file_count, Config, RULE_NAMES};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let cfg = Config::workspace();
    let diags = match analyze_workspace(&root, &cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!(
                "pgdesign-analyzer: cannot read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    if diags.is_empty() {
        let files = workspace_file_count(&root).unwrap_or(0);
        println!(
            "pgdesign-analyzer: workspace clean ({files} files, {} rules)",
            RULE_NAMES.len()
        );
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    eprintln!("pgdesign-analyzer: {} violation(s)", diags.len());
    ExitCode::FAILURE
}
