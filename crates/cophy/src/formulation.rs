//! The CoPhy binary integer program.
//!
//! Variables:
//! * `x_i ∈ {0,1}` — candidate index `i` is materialized;
//! * `y_{q,k} ∈ [0,1]` — query `q` executes under atomic configuration
//!   `k`. Given integral `x`, the optimal `y` is automatically integral
//!   (each query picks its cheapest feasible configuration), so only the
//!   `x` variables branch — the key to tractability.
//!
//! Constraints:
//! * `Σ_k y_{q,k} = 1` for every query (exactly one configuration);
//! * `y_{q,k} ≤ x_i` for every index `i` in configuration `k` (can't use
//!   what isn't built);
//! * `Σ_i size_i · x_i ≤ B` (storage budget).
//!
//! Objective: `min Σ_q w_q Σ_k cost(q,k) · y_{q,k}`.

use crate::atomic::QueryConfigs;
use pgdesign_solver::lp::Relation;
use pgdesign_solver::Milp;
use std::collections::BTreeMap;

/// Mapping from ILP variables back to the design space.
#[derive(Debug, Clone)]
pub struct IlpModel {
    /// The MILP instance.
    pub milp: Milp,
    /// `x` variable id per candidate id.
    pub x_vars: BTreeMap<usize, usize>,
    /// `y` variable ids: `y_vars[q][k]` for workload query `q`,
    /// configuration `k`.
    pub y_vars: Vec<Vec<usize>>,
}

/// Build the CoPhy ILP.
///
/// `weights[i]` is the workload weight of `configs[i]`'s query (aligned
/// with the `configs` list, which may cover an arbitrary subset of matrix
/// query slots). `maintenance` gives the per-index upkeep cost under the
/// workload's write profile (zero for read-only workloads); it becomes the
/// objective coefficient of the corresponding `x` variable, so an index
/// must earn back its maintenance before the solver picks it.
pub fn build_ilp(
    weights: &[f64],
    configs: &[QueryConfigs],
    sizes: &BTreeMap<usize, f64>,
    maintenance: &BTreeMap<usize, f64>,
    storage_budget: f64,
) -> IlpModel {
    assert_eq!(weights.len(), configs.len(), "one weight per query");
    let mut milp = Milp::new();

    // x variables (binary); the objective coefficient is the index's
    // maintenance cost — storage stays a constraint, not an objective term.
    let mut x_vars: BTreeMap<usize, usize> = BTreeMap::new();
    for &cand in sizes.keys() {
        let v = milp.add_binary(maintenance.get(&cand).copied().unwrap_or(0.0));
        x_vars.insert(cand, v);
    }

    // y variables (continuous in [0,1] via the Σ=1 rows + x-coupling).
    let mut y_vars: Vec<Vec<usize>> = Vec::with_capacity(configs.len());
    for (q_idx, qc) in configs.iter().enumerate() {
        let weight = weights[q_idx];
        let mut row = Vec::with_capacity(qc.configs.len());
        for cfg in &qc.configs {
            let y = milp.add_continuous(weight * cfg.cost);
            row.push(y);
        }
        y_vars.push(row);
    }

    // Σ_k y_{q,k} = 1.
    for row in &y_vars {
        milp.lp
            .add_constraint(row.iter().map(|&y| (y, 1.0)).collect(), Relation::Eq, 1.0);
    }

    // y ≤ x couplings.
    for (qc, row) in configs.iter().zip(&y_vars) {
        for (cfg, &y) in qc.configs.iter().zip(row) {
            for &cand in &cfg.candidate_ids {
                let x = x_vars[&cand];
                milp.lp
                    .add_constraint(vec![(y, 1.0), (x, -1.0)], Relation::Le, 0.0);
            }
        }
    }

    // Storage budget.
    let knapsack: Vec<(usize, f64)> = sizes
        .iter()
        .map(|(&cand, &size)| (x_vars[&cand], size))
        .collect();
    if !knapsack.is_empty() {
        milp.lp
            .add_constraint(knapsack, Relation::Le, storage_budget);
    }

    IlpModel {
        milp,
        x_vars,
        y_vars,
    }
}

/// Construct a warm-start assignment from a set of chosen candidate ids:
/// each query greedily takes its cheapest configuration supported by the
/// chosen indexes.
pub fn warm_start_assignment(
    model: &IlpModel,
    configs: &[QueryConfigs],
    chosen: &[usize],
) -> Vec<f64> {
    let n = model.milp.lp.num_vars();
    let mut x = vec![0.0; n];
    for (&cand, &var) in &model.x_vars {
        if chosen.contains(&cand) {
            x[var] = 1.0;
        }
    }
    for (qc, row) in configs.iter().zip(&model.y_vars) {
        let mut best: Option<(usize, f64)> = None;
        for (k, cfg) in qc.configs.iter().enumerate() {
            if cfg.candidate_ids.iter().all(|c| chosen.contains(c))
                && best.is_none_or(|(_, c)| cfg.cost < c)
            {
                best = Some((k, cfg.cost));
            }
        }
        // Config 0 (empty) is always supported.
        let (k, _) = best.unwrap_or((0, qc.configs[0].cost));
        x[row[k]] = 1.0;
    }
    x
}

/// Decode a MILP solution into chosen candidate ids.
pub fn decode_solution(model: &IlpModel, x: &[f64]) -> Vec<usize> {
    let mut chosen: Vec<usize> = model
        .x_vars
        .iter()
        .filter(|(_, &var)| x.get(var).copied().unwrap_or(0.0) > 0.5)
        .map(|(&cand, _)| cand)
        .collect();
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicConfig;
    use pgdesign_solver::{MilpOptions, MilpStatus};

    /// A tiny hand-built instance: 2 queries, 2 candidate indexes.
    /// Query 0: empty=100, {A}=10. Query 1: empty=100, {B}=20, {A,B}=5.
    fn tiny() -> (Vec<f64>, Vec<QueryConfigs>, BTreeMap<usize, f64>) {
        let weights = vec![1.0, 1.0];
        let configs = vec![
            QueryConfigs {
                query_id: 0,
                configs: vec![
                    AtomicConfig {
                        candidate_ids: vec![],
                        cost: 100.0,
                    },
                    AtomicConfig {
                        candidate_ids: vec![0],
                        cost: 10.0,
                    },
                ],
            },
            QueryConfigs {
                query_id: 1,
                configs: vec![
                    AtomicConfig {
                        candidate_ids: vec![],
                        cost: 100.0,
                    },
                    AtomicConfig {
                        candidate_ids: vec![1],
                        cost: 20.0,
                    },
                    AtomicConfig {
                        candidate_ids: vec![0, 1],
                        cost: 5.0,
                    },
                ],
            },
        ];
        let mut sizes = BTreeMap::new();
        sizes.insert(0usize, 10.0);
        sizes.insert(1usize, 10.0);
        (weights, configs, sizes)
    }

    #[test]
    fn picks_both_indexes_when_budget_allows() {
        let (w, configs, sizes) = tiny();
        let model = build_ilp(&w, &configs, &sizes, &BTreeMap::new(), 100.0);
        let r = model.milp.solve(&MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        let chosen = decode_solution(&model, &r.x);
        assert_eq!(chosen, vec![0, 1]);
        assert!((r.objective - 15.0).abs() < 1e-6, "{}", r.objective);
    }

    #[test]
    fn respects_tight_budget() {
        let (w, configs, sizes) = tiny();
        // Budget for one index only. A: 10+100=110; B: 100+20=120 → pick A.
        let model = build_ilp(&w, &configs, &sizes, &BTreeMap::new(), 10.0);
        let r = model.milp.solve(&MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        let chosen = decode_solution(&model, &r.x);
        assert_eq!(chosen, vec![0]);
        assert!((r.objective - 110.0).abs() < 1e-6, "{}", r.objective);
    }

    #[test]
    fn zero_budget_forces_empty_configs() {
        let (w, configs, sizes) = tiny();
        let model = build_ilp(&w, &configs, &sizes, &BTreeMap::new(), 0.0);
        let r = model.milp.solve(&MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!(decode_solution(&model, &r.x).is_empty());
        assert!((r.objective - 200.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_is_feasible_and_decodes() {
        let (w, configs, sizes) = tiny();
        let model = build_ilp(&w, &configs, &sizes, &BTreeMap::new(), 100.0);
        let warm = warm_start_assignment(&model, &configs, &[0]);
        // Feasible: solve with warm start at zero nodes.
        let r = model.milp.solve_with_warm_start(
            &MilpOptions {
                node_limit: 0,
                ..Default::default()
            },
            Some(&warm),
        );
        // Objective: q0 picks {A}=10, q1 must pick empty=100 → 110.
        assert!((r.objective - 110.0).abs() < 1e-6, "{}", r.objective);
        assert_eq!(decode_solution(&model, &r.x), vec![0]);
    }

    #[test]
    fn maintenance_cost_repels_marginal_indexes() {
        let (w, configs, sizes) = tiny();
        // Index B saves q1 80 (100→20) but costs 90 to maintain → skip it;
        // A+B would save q1 95 but pay 90+0 maintenance: still worth it?
        // {A,B}: obj = 10 + 5 + 90 = 105 vs {A}: 10 + 100 = 110 → A,B wins.
        let mut maint = BTreeMap::new();
        maint.insert(1usize, 90.0);
        let model = build_ilp(&w, &configs, &sizes, &maint, 100.0);
        let r = model.milp.solve(&MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_eq!(decode_solution(&model, &r.x), vec![0, 1]);
        assert!((r.objective - 105.0).abs() < 1e-6, "{}", r.objective);
        // Raise maintenance to 100: now {A} alone (110) beats {A,B} (115).
        let mut maint = BTreeMap::new();
        maint.insert(1usize, 100.0);
        let model = build_ilp(&w, &configs, &sizes, &maint, 100.0);
        let r = model.milp.solve(&MilpOptions::default());
        assert_eq!(decode_solution(&model, &r.x), vec![0]);
    }

    #[test]
    fn weights_scale_objective() {
        let (mut w, configs, sizes) = tiny();
        w[0] = 10.0;
        let model = build_ilp(&w, &configs, &sizes, &BTreeMap::new(), 100.0);
        let r = model.milp.solve(&MilpOptions::default());
        // q0 cost 10 × weight 10 + q1 cost 5 = 105.
        assert!((r.objective - 105.0).abs() < 1e-6, "{}", r.objective);
    }
}
