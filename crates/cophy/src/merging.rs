//! Index merging — the candidate-set transformation of Chaudhuri &
//! Narasayya's advisor line, added here as the natural companion to
//! CoPhy's exact selection.
//!
//! Two candidates on the same table can be *merged* into one index whose
//! key is the first candidate's columns followed by the second's remaining
//! columns. The merged index serves (possibly less efficiently) the
//! queries of both parents while paying one storage bill — exactly the
//! trade a tight storage budget wants to consider. Merged candidates are
//! *added* to the pool (never replacing parents); the ILP decides.

use pgdesign_catalog::design::Index;
use pgdesign_catalog::Catalog;
use pgdesign_optimizer::candidates::CandidateSet;

/// Merge two indexes on the same table: `a`'s key, then `b`'s columns not
/// already present. Returns `None` for different tables or identical keys.
pub fn merge_pair(a: &Index, b: &Index) -> Option<Index> {
    if a.table != b.table {
        return None;
    }
    let mut columns = a.columns.clone();
    for &c in &b.columns {
        if !columns.contains(&c) {
            columns.push(c);
        }
    }
    if columns == a.columns {
        return None; // b ⊆ a: nothing new
    }
    Some(Index::new(a.table, columns))
}

/// Augment a candidate set with pairwise merges.
///
/// `max_width` caps merged key widths (wide B-tree keys stop paying);
/// `max_added` bounds the growth of the pool. Relevance lists are extended:
/// a merged candidate is relevant to every query either parent served.
pub fn augment_with_merges(
    catalog: &Catalog,
    set: &CandidateSet,
    max_width: usize,
    max_added: usize,
) -> CandidateSet {
    let mut indexes = set.indexes.clone();
    let mut relevant = set.relevant.clone();
    let n = set.indexes.len();
    let mut added = 0usize;

    // Queries each parent is relevant to (inverted from `relevant`).
    let mut queries_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (q, rel) in set.relevant.iter().enumerate() {
        for &cand in rel {
            queries_of[cand].push(q);
        }
    }

    for i in 0..n {
        for j in 0..n {
            if i == j || added >= max_added {
                continue;
            }
            let Some(merged) = merge_pair(&set.indexes[i], &set.indexes[j]) else {
                continue;
            };
            if merged.columns.len() > max_width || indexes.contains(&merged) {
                continue;
            }
            // Sanity: the merged index must be well-formed for the table.
            let width = catalog.schema.table(merged.table).width();
            if merged.columns.iter().any(|&c| c >= width) {
                continue;
            }
            let id = indexes.len();
            indexes.push(merged);
            added += 1;
            for &q in queries_of[i].iter().chain(queries_of[j].iter()) {
                if !relevant[q].contains(&id) {
                    relevant[q].push(id);
                }
            }
        }
    }
    CandidateSet { indexes, relevant }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_catalog::schema::TableId;
    use pgdesign_optimizer::candidates::{workload_candidates, CandidateConfig};
    use pgdesign_query::generators::sdss_workload;

    #[test]
    fn merge_concatenates_and_dedupes() {
        let a = Index::new(TableId(0), vec![1, 2]);
        let b = Index::new(TableId(0), vec![2, 3]);
        let m = merge_pair(&a, &b).unwrap();
        assert_eq!(m.columns, vec![1, 2, 3]);
    }

    #[test]
    fn merge_rejects_cross_table_and_subsets() {
        let a = Index::new(TableId(0), vec![1, 2]);
        let b = Index::new(TableId(1), vec![3]);
        assert!(merge_pair(&a, &b).is_none());
        let sub = Index::new(TableId(0), vec![2]);
        assert!(merge_pair(&a, &sub).is_none());
    }

    #[test]
    fn merge_order_matters() {
        let a = Index::new(TableId(0), vec![1]);
        let b = Index::new(TableId(0), vec![2]);
        assert_eq!(merge_pair(&a, &b).unwrap().columns, vec![1, 2]);
        assert_eq!(merge_pair(&b, &a).unwrap().columns, vec![2, 1]);
    }

    #[test]
    fn augmentation_grows_pool_and_relevance() {
        let c = sdss_catalog(0.01);
        let w = sdss_workload(&c, 9, 8);
        let base = workload_candidates(&c, &w, &CandidateConfig::default());
        let augmented = augment_with_merges(&c, &base, 4, 50);
        assert!(augmented.indexes.len() > base.indexes.len());
        assert!(augmented.indexes.len() <= base.indexes.len() + 50);
        // No duplicates.
        for (i, a) in augmented.indexes.iter().enumerate() {
            for b in &augmented.indexes[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Every *added* (merged) candidate respects the width cap; base
        // candidates may already be wider (covering candidates).
        assert!(augmented.indexes[base.indexes.len()..]
            .iter()
            .all(|i| i.columns.len() <= 4));
        // Relevance ids stay in range.
        assert!(augmented
            .relevant
            .iter()
            .flatten()
            .all(|&id| id < augmented.indexes.len()));
    }

    #[test]
    fn merged_candidate_can_replace_two_parents_under_tight_budget() {
        use crate::greedy_select;
        use pgdesign_inum::{CostMatrix, Inum};
        use pgdesign_optimizer::Optimizer;

        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 12);
        let base = workload_candidates(&c, &w, &CandidateConfig::default());
        let augmented = augment_with_merges(&c, &base, 4, 50);
        // A budget that fits ~one index: the merged pool can only help.
        let budget = c.data_bytes() / 40;
        let plain = greedy_select(&CostMatrix::build(&inum, &w, &base.indexes), budget);
        let merged = greedy_select(&CostMatrix::build(&inum, &w, &augmented.indexes), budget);
        assert!(
            merged.cost <= plain.cost + 1e-6,
            "merged pool must not lose: {} vs {}",
            merged.cost,
            plain.cost
        );
    }
}
