//! # pgdesign-cophy
//!
//! CoPhy — automated physical design with quality guarantees (Dash,
//! Polyzotis, Ailamaki; the paper's automatic index suggestion component,
//! §3.2.1).
//!
//! CoPhy replaces the greedy search of commercial advisors with an exact
//! combinatorial formulation:
//!
//! * enumerate candidate indexes from the workload ([`pgdesign_optimizer::candidates`]);
//! * per query, build *atomic configurations* — small index sets a single
//!   plan can exploit jointly (at most one index per table slot), costed
//!   through the INUM cache ([`atomic`]);
//! * encode index selection as a binary integer program: pick one atomic
//!   configuration per query, pay each index's storage once, respect the
//!   storage budget, minimise total weighted workload cost
//!   ([`formulation`]);
//! * solve with branch-and-bound over the LP relaxation; the solver's
//!   bound certifies an optimality gap at any time budget — the paper's
//!   "trade off execution time against the quality of the suggested
//!   solutions" ([`advisor`]).
//!
//! A classic greedy advisor ([`greedy`]) doubles as the comparison baseline
//! (experiments E2/E6) and as the MILP warm start. [`merging`] augments
//! the candidate pool with pairwise index merges, the classic trick for
//! tight storage budgets.

#![forbid(unsafe_code)]

pub mod advisor;
pub mod atomic;
pub mod formulation;
pub mod greedy;
pub mod merging;

pub use advisor::{CophyAdvisor, CophyConfig, JointRecommendation, Recommendation};
pub use atomic::{AtomicConfig, QueryConfigs};
pub use greedy::greedy_select;
