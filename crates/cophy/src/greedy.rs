//! Greedy index selection — the baseline the paper's introduction argues
//! against ("greedy heuristics ... often suggest locally optimal solutions
//! instead of the globally optimal one"), reproduced here both as the
//! comparison point for experiments E2/E6 and as CoPhy's warm start.
//!
//! Selection runs entirely on the precomputed [`CostMatrix`]: every trial
//! index is evaluated as a delta against the current configuration
//! ([`CostMatrix::workload_cost_plus`]), so one greedy round is pure
//! lookups — no design construction, no access-path re-enumeration.

use pgdesign_inum::CostMatrix;

/// Result of the greedy search.
#[derive(Debug, Clone)]
pub struct GreedyResult {
    /// Chosen candidate ids (into the matrix's candidate list).
    pub chosen: Vec<usize>,
    /// Workload cost under the chosen design (INUM estimate).
    pub cost: f64,
    /// Number of configuration cost evaluations performed.
    pub evaluations: usize,
}

/// Classic greedy: repeatedly add the candidate with the best
/// benefit-per-byte until the budget is exhausted or nothing improves.
pub fn greedy_select(matrix: &CostMatrix<'_>, storage_budget_bytes: u64) -> GreedyResult {
    let catalog = matrix.catalog();
    // Sizes per candidate id; removed ids get `u64::MAX` so the budget
    // check below skips them.
    let sizes: Vec<u64> = (0..matrix.n_candidates())
        .map(|id| {
            matrix.candidate(id).map_or(u64::MAX, |i| {
                i.size_bytes(&catalog.schema, catalog.table_stats(i.table))
            })
        })
        .collect();

    let mut chosen: Vec<usize> = Vec::new();
    let mut config = matrix.empty_config();
    let mut current = matrix.workload_cost(&config);
    let mut budget_left = storage_budget_bytes as i128;
    let mut evaluations = 1usize;

    loop {
        let mut best: Option<(usize, f64, f64)> = None; // (id, new_cost, score)
        for id in 0..matrix.n_candidates() {
            if config.contains(id) || sizes[id] as i128 > budget_left {
                continue;
            }
            let cost = matrix.workload_cost_plus(&config, id);
            evaluations += 1;
            let benefit = current - cost;
            if benefit <= 1e-9 {
                continue;
            }
            let score = benefit / sizes[id] as f64;
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((id, cost, score));
            }
        }
        match best {
            Some((id, cost, _)) => {
                config.insert(id);
                chosen.push(id);
                budget_left -= sizes[id] as i128;
                current = cost;
            }
            None => break,
        }
    }
    chosen.sort_unstable();
    GreedyResult {
        chosen,
        cost: current,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::design::PhysicalDesign;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_inum::Inum;
    use pgdesign_optimizer::candidates::{workload_candidates, CandidateConfig};
    use pgdesign_optimizer::Optimizer;
    use pgdesign_query::generators::sdss_workload;

    #[test]
    fn greedy_improves_over_empty_design() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 7);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        let base = inum.workload_cost(&PhysicalDesign::empty(), &w);
        let r = greedy_select(&matrix, c.data_bytes());
        assert!(!r.chosen.is_empty());
        assert!(r.cost < base, "{} vs {}", r.cost, base);
        assert!(r.evaluations > cands.indexes.len());
        // The matrix's estimate agrees with the slow-path oracle.
        let design =
            PhysicalDesign::with_indexes(r.chosen.iter().map(|&id| cands.indexes[id].clone()));
        let oracle = inum.workload_cost(&design, &w);
        assert!((r.cost - oracle).abs() < 1e-6, "{} vs {oracle}", r.cost);
    }

    #[test]
    fn greedy_respects_budget() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 8);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        let budget = c.data_bytes() / 20;
        let r = greedy_select(&matrix, budget);
        let used: u64 = r
            .chosen
            .iter()
            .map(|&id| {
                let i = &cands.indexes[id];
                i.size_bytes(&c.schema, c.table_stats(i.table))
            })
            .sum();
        assert!(used <= budget, "{used} > {budget}");
    }

    #[test]
    fn zero_budget_chooses_nothing() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 9);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        let r = greedy_select(&matrix, 0);
        assert!(r.chosen.is_empty());
    }

    #[test]
    fn larger_budget_never_hurts() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 10);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        let small = greedy_select(&matrix, c.data_bytes() / 50);
        let large = greedy_select(&matrix, c.data_bytes());
        assert!(large.cost <= small.cost + 1e-6);
    }
}
