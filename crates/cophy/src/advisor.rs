//! The CoPhy advisor: candidates → atomic configurations → ILP → solution.

use crate::atomic::enumerate_atomic_configs;
use crate::formulation::{build_ilp, decode_solution, warm_start_assignment};
use crate::greedy::greedy_select;
use pgdesign_autopart::{AutoPartAdvisor, AutoPartConfig};
use pgdesign_catalog::design::{Index, PhysicalDesign};
use pgdesign_inum::{CostMatrix, Inum};
use pgdesign_optimizer::candidates::{workload_candidates, CandidateConfig};
use pgdesign_optimizer::maintenance::{index_maintenance_cost, WriteProfile};
use pgdesign_query::Workload;
use pgdesign_solver::{MilpOptions, MilpStatus};
use std::collections::BTreeMap;
use std::time::Duration;

/// Advisor configuration.
#[derive(Debug, Clone)]
pub struct CophyConfig {
    /// Storage budget for new indexes, in bytes.
    pub storage_budget_bytes: u64,
    /// Cap on atomic configurations per query.
    pub max_configs_per_query: usize,
    /// Candidate enumeration knobs.
    pub candidates: CandidateConfig,
    /// Cap on `merging`-generated candidates added to the pool (0 disables
    /// merging). Merged candidates are fed into the already-built cost
    /// matrix via [`CostMatrix::add_candidate`] — only their own cells are
    /// computed, no rebuild.
    pub merged_candidates: usize,
    /// Key-width cap for merged candidates (wide B-tree keys stop paying).
    pub merge_max_width: usize,
    /// Write activity per workload period; indexes pay their upkeep in the
    /// objective. `None` means read-only.
    pub write_profile: Option<WriteProfile>,
    /// Solver budgets — the time/quality trade-off knob.
    pub solver: MilpOptions,
}

impl Default for CophyConfig {
    fn default() -> Self {
        CophyConfig {
            storage_budget_bytes: u64::MAX / 2,
            max_configs_per_query: 12,
            candidates: CandidateConfig::default(),
            merged_candidates: 16,
            merge_max_width: 4,
            write_profile: None,
            solver: MilpOptions {
                time_limit: Duration::from_secs(5),
                ..Default::default()
            },
        }
    }
}

/// A finished recommendation.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The suggested indexes.
    pub indexes: Vec<Index>,
    /// The suggested design (same indexes, as a design value).
    pub design: PhysicalDesign,
    /// Workload cost under the empty design.
    pub base_cost: f64,
    /// Workload cost under the recommendation (INUM estimate).
    pub cost: f64,
    /// Certified relative optimality gap from the solver.
    pub gap: f64,
    /// Solver status.
    pub status: MilpStatus,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Number of candidate indexes considered.
    pub candidates_considered: usize,
    /// Per-query costs (base, recommended), aligned with the workload.
    pub per_query: Vec<(f64, f64)>,
    /// Total size of the suggested indexes in bytes.
    pub total_index_bytes: u64,
}

impl Recommendation {
    /// Average workload benefit as a fraction of the base cost.
    pub fn average_benefit(&self) -> f64 {
        if self.base_cost <= 0.0 {
            return 0.0;
        }
        ((self.base_cost - self.cost) / self.base_cost).max(0.0)
    }
}

/// A finished joint index + partition recommendation: one partition-aware
/// cost matrix served both searches under a single storage budget.
#[derive(Debug, Clone)]
pub struct JointRecommendation {
    /// The suggested indexes.
    pub indexes: Vec<Index>,
    /// The suggested design (indexes + vertical/horizontal partitions).
    pub design: PhysicalDesign,
    /// Workload cost under the empty design.
    pub base_cost: f64,
    /// Workload cost under the indexes alone (before partitioning).
    pub index_cost: f64,
    /// Workload cost under the joint recommendation.
    pub cost: f64,
    /// Per-query `(base, joint)` costs, aligned with the workload.
    pub per_query: Vec<(f64, f64)>,
    /// Bytes of the suggested indexes.
    pub total_index_bytes: u64,
    /// Bytes of replicated storage the partitioning uses.
    pub replication_bytes: u64,
    /// Greedy merge iterations of the partition search.
    pub partition_iterations: usize,
}

impl JointRecommendation {
    /// Average workload benefit as a fraction of the base cost.
    pub fn average_benefit(&self) -> f64 {
        if self.base_cost <= 0.0 {
            return 0.0;
        }
        (self.base_cost - self.cost) / self.base_cost
    }
}

/// The CoPhy advisor bound to an INUM instance.
pub struct CophyAdvisor<'a> {
    inum: &'a Inum<'a>,
    config: CophyConfig,
}

impl<'a> CophyAdvisor<'a> {
    /// New advisor.
    pub fn new(inum: &'a Inum<'a>, config: CophyConfig) -> Self {
        CophyAdvisor { inum, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CophyConfig {
        &self.config
    }

    /// Produce an index recommendation for the workload (builds a private
    /// matrix; see [`Self::recommend_on`] for the session-matrix entry).
    pub fn recommend(&self, workload: &Workload) -> Recommendation {
        // Cold path: bulk-build the matrix over the enumerated base pool
        // so cell computation fans out over all cores; registration of the
        // same pool below dedupes into no-ops.
        let base = workload_candidates(self.inum.catalog(), workload, &self.config.candidates);
        let mut matrix = CostMatrix::build(self.inum, workload, &base.indexes);
        self.recommend_with_pool(&mut matrix, base)
    }

    /// Produce an index recommendation against an *existing* matrix — the
    /// session-scoped entry point. The advisor enumerates candidates from
    /// the matrix's active queries and registers them with
    /// [`CostMatrix::add_candidate`]: candidates already resident (e.g.
    /// registered by an on-line tuner sharing the same session matrix)
    /// reuse their cells instead of recomputing them, and candidates the
    /// matrix holds beyond this enumeration compete on equal footing. The
    /// matrix is extended, never rebuilt, and registered candidates stay
    /// resident for later advisors on the same session.
    pub fn recommend_on(&self, matrix: &mut CostMatrix<'_>) -> Recommendation {
        let base = workload_candidates(
            self.inum.catalog(),
            &matrix.active_workload(),
            &self.config.candidates,
        );
        let rec = self.recommend_with_pool(matrix, base);
        // Session-scoped entry: everything this search registered becomes
        // visible to concurrent snapshot readers as the next generation.
        matrix.publish();
        rec
    }

    /// Shared body of [`Self::recommend`]/[`Self::recommend_on`]: `base`
    /// is the pre-enumerated candidate pool for the matrix's active
    /// workload (enumerated exactly once by either caller).
    fn recommend_with_pool(
        &self,
        matrix: &mut CostMatrix<'_>,
        base: pgdesign_optimizer::candidates::CandidateSet,
    ) -> Recommendation {
        let catalog = self.inum.catalog();
        let qids: Vec<usize> = matrix.active_query_ids().collect();

        // Register the candidate pool. Merged candidates ride on the same
        // matrix: each is registered incrementally (only its own cells are
        // computed — or reused, if already resident).
        let enumerated = if self.config.merged_candidates > 0 {
            crate::merging::augment_with_merges(
                catalog,
                &base,
                self.config.merge_max_width,
                self.config.merged_candidates,
            )
        } else {
            base
        };
        // Bulk registration: new candidates' cells are computed in one
        // parallel fan-out; resident ones reuse their cells.
        matrix.add_candidates(&enumerated.indexes);
        let matrix: &CostMatrix<'_> = matrix;

        // Sizes over every live candidate of the matrix, filtering out
        // candidates that alone exceed the budget.
        let mut sizes: BTreeMap<usize, f64> = BTreeMap::new();
        for (id, idx) in matrix.candidates() {
            let bytes = idx.size_bytes(&catalog.schema, catalog.table_stats(idx.table));
            if bytes <= self.config.storage_budget_bytes {
                sizes.insert(id, bytes as f64);
            }
        }

        let configs = enumerate_atomic_configs(matrix, self.config.max_configs_per_query);
        // Restrict configs to within-budget candidates.
        let configs: Vec<_> = configs
            .into_iter()
            .map(|mut qc| {
                qc.configs
                    .retain(|cfg| cfg.candidate_ids.iter().all(|c| sizes.contains_key(c)));
                qc
            })
            .collect();

        // Per-candidate maintenance under the write profile.
        let maintenance: BTreeMap<usize, f64> = match &self.config.write_profile {
            Some(profile) => sizes
                .keys()
                .map(|&id| {
                    (
                        id,
                        index_maintenance_cost(
                            &self.inum.optimizer().params,
                            catalog,
                            matrix.candidate(id).expect("sized candidates are live"),
                            profile,
                        ),
                    )
                })
                .collect(),
            None => BTreeMap::new(),
        };

        let weights: Vec<f64> = configs
            .iter()
            .map(|qc| matrix.query_weight(qc.query_id))
            .collect();
        let model = build_ilp(
            &weights,
            &configs,
            &sizes,
            &maintenance,
            self.config.storage_budget_bytes as f64,
        );

        // Greedy warm start (delta evaluation on the shared matrix).
        let warm_greedy = greedy_select(matrix, self.config.storage_budget_bytes);
        let warm = warm_start_assignment(&model, &configs, &warm_greedy.chosen);

        let result = model
            .milp
            .solve_with_warm_start(&self.config.solver, Some(&warm));

        let ilp_ids = if result.x.is_empty() {
            warm_greedy.chosen.clone()
        } else {
            decode_solution(&model, &result.x)
        };
        // The ILP optimizes within the atomic-configuration space; validate
        // both the ILP pick and the greedy pick under the full INUM model
        // and keep the better one (so the recommendation never regresses
        // below the greedy baseline).
        let maint_of = |ids: &[usize]| -> f64 {
            ids.iter()
                .map(|id| maintenance.get(id).copied().unwrap_or(0.0))
                .sum()
        };
        let ilp_cost =
            matrix.workload_cost(&matrix.config_of(ilp_ids.iter().copied())) + maint_of(&ilp_ids);
        let greedy_total = warm_greedy.cost + maint_of(&warm_greedy.chosen);
        let chosen_ids = if ilp_cost <= greedy_total {
            ilp_ids
        } else {
            warm_greedy.chosen.clone()
        };
        let indexes: Vec<Index> = chosen_ids
            .iter()
            .map(|&id| matrix.candidate(id).expect("chosen ids are live").clone())
            .collect();
        let design = PhysicalDesign::with_indexes(indexes.iter().cloned());

        let empty_config = matrix.empty_config();
        let chosen_config = matrix.config_of(chosen_ids.iter().copied());
        let base_cost = matrix.workload_cost(&empty_config);
        let cost = matrix.workload_cost(&chosen_config) + maint_of(&chosen_ids);
        let per_query = qids
            .iter()
            .map(|&qi| {
                (
                    matrix.cost(qi, &empty_config),
                    matrix.cost(qi, &chosen_config),
                )
            })
            .collect();
        let total_index_bytes = design.index_bytes(&catalog.schema, &catalog.stats);

        Recommendation {
            indexes,
            design,
            base_cost,
            cost,
            gap: result.gap,
            status: result.status,
            nodes: result.nodes,
            candidates_considered: matrix.candidates().count(),
            per_query,
            total_index_bytes,
        }
    }

    /// Joint index + partition mode: one partition-aware [`CostMatrix`]
    /// serves the greedy index selection *and* AutoPart's merge search, so
    /// both run on pure lookups, and the two structures share a single
    /// storage budget — the partition search may replicate columns only
    /// into the bytes the chosen indexes left over. The partition trials
    /// run with the chosen indexes selected in the configuration, so every
    /// merge decision sees the index accesses it must coexist with.
    pub fn recommend_joint(
        &self,
        workload: &Workload,
        partition_config: AutoPartConfig,
    ) -> JointRecommendation {
        // Same cold-path bulk build as `recommend` (parallel over queries).
        let base = workload_candidates(self.inum.catalog(), workload, &self.config.candidates);
        let mut matrix = CostMatrix::build(self.inum, workload, &base.indexes);
        self.recommend_joint_with_pool(&mut matrix, base, partition_config)
    }

    /// [`Self::recommend_joint`] against an *existing* matrix — the
    /// session-scoped entry point: candidates are registered incrementally
    /// (resident ones reuse their cells), the partition search runs on the
    /// same matrix, and everything registered stays resident for later
    /// advisors on the same session.
    pub fn recommend_joint_on(
        &self,
        matrix: &mut CostMatrix<'_>,
        partition_config: AutoPartConfig,
    ) -> JointRecommendation {
        let candidates = workload_candidates(
            self.inum.catalog(),
            &matrix.active_workload(),
            &self.config.candidates,
        );
        let rec = self.recommend_joint_with_pool(matrix, candidates, partition_config);
        // Session-scoped entry: publish for concurrent snapshot readers.
        matrix.publish();
        rec
    }

    /// Shared body of [`Self::recommend_joint`]/[`Self::recommend_joint_on`]
    /// (`candidates` pre-enumerated exactly once by either caller).
    fn recommend_joint_with_pool(
        &self,
        matrix: &mut CostMatrix<'_>,
        candidates: pgdesign_optimizer::candidates::CandidateSet,
        partition_config: AutoPartConfig,
    ) -> JointRecommendation {
        let catalog = self.inum.catalog();
        let qids: Vec<usize> = matrix.active_query_ids().collect();
        matrix.add_candidates(&candidates.indexes);
        let budget = self.config.storage_budget_bytes;

        // Index half: greedy benefit-per-byte on the shared matrix.
        let greedy = greedy_select(matrix, budget);
        let total_index_bytes: u64 = greedy
            .chosen
            .iter()
            .map(|&id| {
                let idx = matrix.candidate(id).expect("chosen ids are live");
                idx.size_bytes(&catalog.schema, catalog.table_stats(idx.table))
            })
            .sum();
        let index_cost = greedy.cost;

        let mut cfg = matrix.empty_joint();
        for &id in &greedy.chosen {
            cfg.indexes.insert(id);
        }

        // Partition half on the same matrix and configuration, replication
        // capped to the budget the indexes left unspent.
        let autopart = AutoPartAdvisor::new(
            self.inum,
            AutoPartConfig {
                replication_budget_bytes: partition_config
                    .replication_budget_bytes
                    .min(budget.saturating_sub(total_index_bytes)),
                ..partition_config
            },
        );
        let partition_iterations = autopart.search_on(matrix, &mut cfg);

        let empty = matrix.empty_joint();
        let base_cost = matrix.joint_workload_cost(&empty);
        let mut cost = matrix.joint_workload_cost(&cfg);
        if cost > index_cost {
            // The partition search accepts only improving steps, but never
            // hand back a joint design worse than the indexes alone.
            cfg.fragments.clear();
            cfg.splits.clear();
            cost = matrix.joint_workload_cost(&cfg);
        }

        let design = matrix.joint_design_of(&cfg);
        let per_query = qids
            .iter()
            .map(|&qi| (matrix.joint_cost(qi, &empty), matrix.joint_cost(qi, &cfg)))
            .collect();
        let replication_bytes = design.replication_bytes(&catalog.schema, &catalog.stats);
        JointRecommendation {
            indexes: greedy
                .chosen
                .iter()
                .map(|&id| matrix.candidate(id).expect("chosen ids are live").clone())
                .collect(),
            design,
            base_cost,
            index_cost,
            cost,
            per_query,
            total_index_bytes,
            replication_bytes,
            partition_iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_optimizer::Optimizer;
    use pgdesign_query::generators::sdss_workload;

    fn advise(budget_frac: f64, n_queries: usize, seed: u64) -> (Recommendation, f64) {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, n_queries, seed);
        let budget = (c.data_bytes() as f64 * budget_frac) as u64;
        let advisor = CophyAdvisor::new(
            &inum,
            CophyConfig {
                storage_budget_bytes: budget,
                ..Default::default()
            },
        );
        let rec = advisor.recommend(&w);
        let greedy = {
            let cands = pgdesign_optimizer::candidates::workload_candidates(
                &c,
                &w,
                &CandidateConfig::default(),
            );
            let matrix = CostMatrix::build(&inum, &w, &cands.indexes);
            greedy_select(&matrix, budget).cost
        };
        (rec, greedy)
    }

    #[test]
    fn recommendation_improves_workload() {
        let (rec, _) = advise(1.0, 9, 21);
        assert!(!rec.indexes.is_empty());
        assert!(rec.cost < rec.base_cost);
        assert!(rec.average_benefit() > 0.1, "{}", rec.average_benefit());
        assert!(rec.total_index_bytes > 0);
    }

    #[test]
    fn cophy_at_least_matches_greedy() {
        let (rec, greedy_cost) = advise(0.3, 9, 22);
        assert!(
            rec.cost <= greedy_cost * 1.0001,
            "CoPhy {} must be ≤ greedy {}",
            rec.cost,
            greedy_cost
        );
    }

    #[test]
    fn budget_is_respected() {
        let (rec, _) = advise(0.1, 9, 23);
        let c = sdss_catalog(0.01);
        let budget = (c.data_bytes() as f64 * 0.1) as u64;
        assert!(
            rec.total_index_bytes <= budget,
            "{} > {}",
            rec.total_index_bytes,
            budget
        );
    }

    #[test]
    fn per_query_costs_are_reported() {
        let (rec, _) = advise(1.0, 9, 24);
        assert_eq!(rec.per_query.len(), 9);
        for (base, tuned) in &rec.per_query {
            assert!(tuned <= base, "no query may regress: {tuned} vs {base}");
        }
    }

    #[test]
    fn write_heavy_tables_repel_indexes() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 26);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let read_only = CophyAdvisor::new(&inum, CophyConfig::default()).recommend(&w);
        // A write-hammered photoobj should carry fewer (or equal) indexes.
        let writes = pgdesign_optimizer::maintenance::WriteProfile::read_only()
            .with_inserts(photo, 5_000_000.0);
        let write_heavy = CophyAdvisor::new(
            &inum,
            CophyConfig {
                write_profile: Some(writes),
                ..Default::default()
            },
        )
        .recommend(&w);
        let ro_photo = read_only
            .indexes
            .iter()
            .filter(|i| i.table == photo)
            .count();
        let wh_photo = write_heavy
            .indexes
            .iter()
            .filter(|i| i.table == photo)
            .count();
        assert!(
            wh_photo <= ro_photo,
            "write-heavy {wh_photo} vs read-only {ro_photo}"
        );
        assert!(wh_photo < ro_photo, "5M inserts should drop some index");
    }

    #[test]
    fn joint_mode_shares_one_matrix_and_never_regresses() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 31);
        let budget = c.data_bytes() / 2;
        let advisor = CophyAdvisor::new(
            &inum,
            CophyConfig {
                storage_budget_bytes: budget,
                ..Default::default()
            },
        );
        let builds_before = inum.matrix_stats().builds;
        let cost_calls_before = inum.stats().cost_calls;
        let rec = advisor.recommend_joint(
            &w,
            pgdesign_autopart::AutoPartConfig {
                replication_budget_bytes: budget / 10,
                ..Default::default()
            },
        );
        assert_eq!(
            inum.matrix_stats().builds,
            builds_before + 1,
            "index and partition searches must share one matrix"
        );
        assert_eq!(
            inum.stats().cost_calls,
            cost_calls_before,
            "the joint mode runs on matrix lookups only"
        );
        assert!(rec.cost <= rec.index_cost + 1e-6, "partitions may not hurt");
        assert!(rec.cost <= rec.base_cost + 1e-6);
        assert!(rec.total_index_bytes <= budget);
        assert!(
            rec.total_index_bytes + rec.replication_bytes <= budget,
            "one budget covers indexes and replicated partition storage"
        );
        assert_eq!(rec.per_query.len(), 9);
        // The matrix's joint estimate agrees with the slow-path oracle on
        // the finished design.
        let oracle = inum.workload_cost(&rec.design, &w);
        assert!(
            (rec.cost - oracle).abs() <= 1e-6 * oracle.abs().max(1.0),
            "joint {} vs oracle {oracle}",
            rec.cost
        );
    }

    #[test]
    fn joint_mode_partitions_narrow_workloads() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        // Thin column slices: vertical partitioning should survive even
        // with indexes present.
        let sqls = [
            "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 100 AND 140",
            "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 10 AND 60",
            "SELECT ra, dec FROM photoobj WHERE ra < 50",
        ];
        let w = Workload::from_queries(
            sqls.iter()
                .map(|s| pgdesign_query::parse_query(&c.schema, s).unwrap()),
        );
        let advisor = CophyAdvisor::new(
            &inum,
            CophyConfig {
                // A tiny index budget forces the benefit to come from
                // partitioning instead.
                storage_budget_bytes: 1,
                ..Default::default()
            },
        );
        let rec = advisor.recommend_joint(&w, pgdesign_autopart::AutoPartConfig::default());
        assert!(rec.indexes.is_empty());
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        assert!(
            rec.design.vertical(photo).is_some(),
            "partitioning must carry the benefit under a zero index budget"
        );
        assert!(rec.cost < rec.base_cost);
        assert!(rec.average_benefit() > 0.3, "{}", rec.average_benefit());
    }

    #[test]
    fn merged_candidates_extend_the_matrix_without_a_rebuild() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 27);
        let builds_before = inum.matrix_stats().builds;
        let rec = CophyAdvisor::new(
            &inum,
            CophyConfig {
                merged_candidates: 24,
                ..Default::default()
            },
        )
        .recommend(&w);
        assert_eq!(
            inum.matrix_stats().builds,
            builds_before + 1,
            "merging must feed candidates into the existing matrix, not rebuild it"
        );
        // The pool actually grew beyond the base enumeration.
        let base = workload_candidates(&c, &w, &CandidateConfig::default());
        assert!(rec.candidates_considered > base.indexes.len());
        assert!(rec.cost <= rec.base_cost);
    }

    #[test]
    fn gap_is_certified() {
        let (rec, _) = advise(0.5, 9, 25);
        assert!(rec.gap.is_finite());
        assert!(rec.gap >= 0.0);
        assert!(matches!(
            rec.status,
            MilpStatus::Optimal | MilpStatus::Feasible
        ));
    }
}
