//! Atomic configuration enumeration and costing.
//!
//! An *atomic configuration* for a query is a set of candidate indexes a
//! single plan can use simultaneously — at most one per table slot. The
//! ILP's per-query decision is which atomic configuration to execute
//! under; its cost is evaluated once, through the INUM cost matrix, and
//! becomes a constant in the objective.
//!
//! All costing here is pure matrix lookups: solo benefits use
//! [`CostMatrix::cost_plus`] against the empty configuration, and each
//! enumerated configuration is costed as a [`CandidateBitset`] — no
//! per-candidate design cloning, no access-path re-enumeration.

use pgdesign_inum::{CandidateBitset, CostMatrix};
use pgdesign_query::ast::Query;

/// One atomic configuration: candidate ids (into the matrix's candidate
/// registry) with at most one index per slot, plus its INUM-estimated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomicConfig {
    /// Candidate indexes (live candidate ids of the matrix).
    pub candidate_ids: Vec<usize>,
    /// INUM cost of the query under exactly these indexes.
    pub cost: f64,
}

/// All atomic configurations of one query.
#[derive(Debug, Clone)]
pub struct QueryConfigs {
    /// The matrix query slot these configurations belong to.
    pub query_id: usize,
    /// Configurations; index 0 is always the empty configuration.
    pub configs: Vec<AtomicConfig>,
}

/// Per-slot shortlist size (top-k single-index winners per slot).
const TOP_PER_SLOT: usize = 3;

/// Enumerate and cost atomic configurations for every *active* query of
/// the matrix (retired slots of a long-lived session matrix contribute
/// nothing), over every live candidate the matrix holds.
///
/// `max_configs_per_query` caps the cartesian product per query; the empty
/// configuration is always present so the ILP remains feasible at budget 0.
pub fn enumerate_atomic_configs(
    matrix: &CostMatrix<'_>,
    max_configs_per_query: usize,
) -> Vec<QueryConfigs> {
    matrix
        .active_query_ids()
        .map(|qi| {
            query_atomic_configs(
                matrix,
                qi,
                matrix.workload().query(qi),
                max_configs_per_query,
            )
        })
        .collect()
}

fn query_atomic_configs(
    matrix: &CostMatrix<'_>,
    query_id: usize,
    query: &Query,
    max_configs: usize,
) -> QueryConfigs {
    let empty = matrix.empty_config();
    let empty_cost = matrix.cost(query_id, &empty);

    // Shortlist per slot: candidates on that slot's table whose solo
    // benefit is positive, best first.
    let mut per_slot: Vec<Vec<(usize, f64)>> = Vec::new();
    for slot in 0..query.slot_count() {
        let table = query.table_of(slot);
        let mut scored: Vec<(usize, f64)> = Vec::new();
        for (id, idx) in matrix.candidates() {
            if idx.table != table {
                continue;
            }
            let solo = matrix.cost_plus(query_id, &empty, id);
            let benefit = empty_cost - solo;
            if benefit > 1e-9 {
                scored.push((id, benefit));
            }
        }
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored.truncate(TOP_PER_SLOT);
        per_slot.push(scored);
    }

    // Cartesian product of (no index | shortlisted index) per slot.
    let mut raw: Vec<Vec<usize>> = vec![Vec::new()];
    for slot_list in &per_slot {
        let mut next = Vec::with_capacity(raw.len() * (slot_list.len() + 1));
        for prefix in &raw {
            next.push(prefix.clone()); // no index for this slot
            for &(id, _) in slot_list {
                // Skip duplicates (self-joins may shortlist the same index
                // for two slots; one copy is enough for costing).
                if prefix.contains(&id) {
                    continue;
                }
                let mut cfg = prefix.clone();
                cfg.push(id);
                next.push(cfg);
            }
        }
        raw = next;
        if raw.len() > 4 * max_configs {
            // Pre-prune by keeping shorter configs first (they are
            // supersets' building blocks and cheapest to cost).
            raw.sort_by_key(Vec::len);
            raw.truncate(4 * max_configs);
        }
    }
    raw.sort_by_key(Vec::len);
    raw.dedup();
    raw.truncate(max_configs.max(1));

    // Ensure the empty configuration exists at position 0.
    if raw.first().map(Vec::len) != Some(0) {
        raw.insert(0, Vec::new());
        raw.truncate(max_configs.max(1));
    }

    let mut scratch = CandidateBitset::new(matrix.n_candidates());
    let configs = raw
        .into_iter()
        .map(|ids| {
            let cost = if ids.is_empty() {
                empty_cost
            } else {
                scratch.clear();
                for &id in &ids {
                    scratch.insert(id);
                }
                matrix.cost(query_id, &scratch)
            };
            AtomicConfig {
                candidate_ids: ids,
                cost,
            }
        })
        .collect();
    QueryConfigs { query_id, configs }
}

/// The set of candidate ids used by any configuration (pruning the ILP).
pub fn used_candidates(configs: &[QueryConfigs]) -> Vec<usize> {
    let mut used: Vec<usize> = configs
        .iter()
        .flat_map(|qc| {
            qc.configs
                .iter()
                .flat_map(|c| c.candidate_ids.iter().copied())
        })
        .collect();
    used.sort_unstable();
    used.dedup();
    used
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_inum::Inum;
    use pgdesign_optimizer::candidates::{workload_candidates, CandidateConfig, CandidateSet};
    use pgdesign_optimizer::Optimizer;
    use pgdesign_query::generators::sdss_workload;
    use pgdesign_query::Workload;

    fn matrix_for<'a>(inum: &'a Inum<'a>, w: &'a Workload, cands: &CandidateSet) -> CostMatrix<'a> {
        CostMatrix::build(inum, w, &cands.indexes)
    }

    #[test]
    fn empty_config_is_always_first() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 1);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = matrix_for(&inum, &w, &cands);
        let configs = enumerate_atomic_configs(&matrix, 12);
        assert_eq!(configs.len(), w.len());
        for qc in &configs {
            assert!(qc.configs[0].candidate_ids.is_empty());
            assert!(qc.configs.len() <= 12);
            // Costs are finite and positive.
            for cfg in &qc.configs {
                assert!(cfg.cost.is_finite() && cfg.cost > 0.0);
            }
        }
    }

    #[test]
    fn nonempty_configs_never_cost_more_than_useful() {
        // Configs are built from indexes with positive solo benefit, so a
        // singleton config should beat (or match) the empty config.
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 2);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = matrix_for(&inum, &w, &cands);
        let configs = enumerate_atomic_configs(&matrix, 12);
        for qc in &configs {
            let empty = qc.configs[0].cost;
            for cfg in &qc.configs[1..] {
                if cfg.candidate_ids.len() == 1 {
                    assert!(
                        cfg.cost <= empty * 1.0001,
                        "singleton config should not regress: {} vs {}",
                        cfg.cost,
                        empty
                    );
                }
            }
        }
    }

    #[test]
    fn config_costs_match_the_slow_path_oracle() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 5);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = matrix_for(&inum, &w, &cands);
        let configs = enumerate_atomic_configs(&matrix, 12);
        for (qc, (q, _)) in configs.iter().zip(w.iter()) {
            for cfg in &qc.configs {
                let design = pgdesign_catalog::design::PhysicalDesign::with_indexes(
                    cfg.candidate_ids.iter().map(|&i| cands.indexes[i].clone()),
                );
                let oracle = inum.cost(&design, q);
                assert!(
                    (cfg.cost - oracle).abs() < 1e-9,
                    "matrix {} vs oracle {oracle} for {:?}",
                    cfg.cost,
                    cfg.candidate_ids
                );
            }
        }
    }

    #[test]
    fn used_candidates_are_a_subset() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 3);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = matrix_for(&inum, &w, &cands);
        let configs = enumerate_atomic_configs(&matrix, 12);
        let used = used_candidates(&configs);
        assert!(used.iter().all(|&id| id < cands.indexes.len()));
        assert!(!used.is_empty(), "some index should help some query");
    }

    #[test]
    fn at_most_one_index_per_slot() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 4);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = matrix_for(&inum, &w, &cands);
        let configs = enumerate_atomic_configs(&matrix, 16);
        for (qc, (q, _)) in configs.iter().zip(w.iter()) {
            for cfg in &qc.configs {
                // Count indexes per table; must not exceed the number of
                // slots of that table in the query.
                for slot in 0..q.slot_count() {
                    let t = q.table_of(slot);
                    let n_slots_of_t = (0..q.slot_count()).filter(|&s| q.table_of(s) == t).count();
                    let n_indexes_of_t = cfg
                        .candidate_ids
                        .iter()
                        .filter(|&&id| cands.indexes[id].table == t)
                        .count();
                    assert!(n_indexes_of_t <= n_slots_of_t);
                }
            }
        }
    }
}
