//! Interaction-aware index materialization scheduling (§3.5's second tool).
//!
//! While a set of recommended indexes is being built one at a time, the
//! workload keeps running. The *area* of a schedule is the workload cost
//! accumulated during the build window: each build step of duration `t_k`
//! runs the workload against the indexes built so far. Index interactions
//! make ordering matter — building a cooperating pair early compounds,
//! building a superseded index first wastes its build time. "An
//! appropriately scheduled materialization of indexes can lead to higher
//! benefit in contrast with a schedule that does not take into account
//! index interaction."

use crate::ConfigCostCache;
use pgdesign_catalog::design::Index;
use pgdesign_inum::Inum;
use pgdesign_query::Workload;

/// A materialization schedule and its quality.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Build order (indices into the candidate list handed to the
    /// scheduler).
    pub order: Vec<usize>,
    /// Total workload cost accumulated during the build window (lower is
    /// better).
    pub area: f64,
    /// Benefit curve: `(cumulative build time, workload cost per unit)`
    /// after each build step, starting at time 0 with nothing built.
    pub curve: Vec<(f64, f64)>,
}

/// Estimated build time of an index (same scan+sort model COLT charges).
pub fn build_time(inum: &Inum<'_>, index: &Index) -> f64 {
    build_time_with(inum.catalog(), &inum.optimizer().params, index)
}

/// [`build_time`] from raw catalog metadata and cost-model constants — the
/// build-time model never needs what-if costing, so matrix-backed callers
/// can use this without touching the optimizer at all.
pub fn build_time_with(
    catalog: &pgdesign_catalog::Catalog,
    params: &pgdesign_optimizer::CostParams,
    index: &Index,
) -> f64 {
    let tdef = catalog.schema.table(index.table);
    let stats = catalog.table_stats(index.table);
    let pages = pgdesign_catalog::sizing::heap_pages(stats.row_count, tdef.row_byte_width());
    let key_width = f64::from(index.key_width(&catalog.schema));
    pages as f64 * params.seq_page_cost + params.sort_cost(stats.row_count as f64, key_width + 8.0)
}

fn evaluate_order(
    cache: &mut ConfigCostCache<'_, '_>,
    times: &[f64],
    order: &[usize],
) -> (f64, Vec<(f64, f64)>) {
    let mut mask = 0u32;
    let mut area = 0.0;
    let mut clock = 0.0;
    let mut curve = vec![(0.0, cache.workload_cost(0))];
    for &i in order {
        let rate = cache.workload_cost(mask);
        area += rate * times[i];
        clock += times[i];
        mask |= 1 << i;
        curve.push((clock, cache.workload_cost(mask)));
    }
    (area, curve)
}

/// The naive schedule: build in the given (recommendation) order.
pub fn naive_schedule(inum: &Inum<'_>, workload: &Workload, indexes: &[Index]) -> Schedule {
    let times: Vec<f64> = indexes.iter().map(|i| build_time(inum, i)).collect();
    let mut cache = ConfigCostCache::new(inum, workload, indexes);
    naive_with(&mut cache, &times, indexes.len())
}

fn naive_with(cache: &mut ConfigCostCache<'_, '_>, times: &[f64], n: usize) -> Schedule {
    let order: Vec<usize> = (0..n).collect();
    let (area, curve) = evaluate_order(cache, times, &order);
    Schedule { order, area, curve }
}

/// The greedy and naive schedules over one shared cost cache (one matrix
/// build serves both — they memoize the same configuration costs).
pub fn schedule_pair(
    inum: &Inum<'_>,
    workload: &Workload,
    indexes: &[Index],
) -> (Schedule, Schedule) {
    let times: Vec<f64> = indexes.iter().map(|i| build_time(inum, i)).collect();
    let mut cache = ConfigCostCache::new(inum, workload, indexes);
    let greedy = greedy_with(&mut cache, &times, indexes.len());
    let naive = naive_with(&mut cache, &times, indexes.len());
    (greedy, naive)
}

/// [`schedule_pair`] over live candidates of an *existing* matrix — the
/// session-scoped entry: no matrix build, every configuration cost is a
/// pure lookup against the resident cells. Schedule orders index into
/// `candidate_ids`.
pub fn schedule_pair_on(
    matrix: &pgdesign_inum::CostMatrix<'_>,
    candidate_ids: &[usize],
) -> (Schedule, Schedule) {
    let (catalog, params) = (matrix.catalog(), matrix.cost_params());
    let times: Vec<f64> = candidate_ids
        .iter()
        .map(|&id| {
            build_time_with(
                catalog,
                params,
                matrix
                    .candidate(id)
                    .expect("schedule_pair_on requires live candidate ids"),
            )
        })
        .collect();
    let mut cache = ConfigCostCache::on_matrix(matrix, candidate_ids.to_vec());
    let greedy = greedy_with(&mut cache, &times, candidate_ids.len());
    let naive = naive_with(&mut cache, &times, candidate_ids.len());
    (greedy, naive)
}

/// Greedy interaction-aware schedule: at each step, build the index with
/// the largest marginal benefit-rate per unit build time given what is
/// already built. Interactions are honoured because marginal benefits are
/// re-evaluated against the current set.
pub fn greedy_schedule(inum: &Inum<'_>, workload: &Workload, indexes: &[Index]) -> Schedule {
    let times: Vec<f64> = indexes.iter().map(|i| build_time(inum, i)).collect();
    let mut cache = ConfigCostCache::new(inum, workload, indexes);
    greedy_with(&mut cache, &times, indexes.len())
}

fn greedy_with(cache: &mut ConfigCostCache<'_, '_>, times: &[f64], n: usize) -> Schedule {
    let mut order = Vec::with_capacity(n);
    let mut mask = 0u32;
    let mut remaining: Vec<usize> = (0..n).collect();
    while !remaining.is_empty() {
        let current_rate = cache.workload_cost(mask);
        let best = remaining
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let ba = (current_rate - cache.workload_cost(mask | (1 << a))) / times[a].max(1e-9);
                let bb = (current_rate - cache.workload_cost(mask | (1 << b))) / times[b].max(1e-9);
                ba.total_cmp(&bb)
            })
            .expect("remaining non-empty");
        remaining.retain(|&i| i != best);
        order.push(best);
        mask |= 1 << best;
    }
    let (area, curve) = evaluate_order(cache, times, &order);
    Schedule { order, area, curve }
}

/// Exact minimum-area schedule by DP over subsets (`n ≤ 16`).
///
/// `dp[mask]` = minimum area to have built exactly `mask`;
/// `dp[mask | i] = min(dp[mask] + t_i × rate(mask))`.
pub fn exact_schedule(inum: &Inum<'_>, workload: &Workload, indexes: &[Index]) -> Schedule {
    let n = indexes.len();
    assert!(n <= 16, "exact schedule supports ≤ 16 indexes");
    let times: Vec<f64> = indexes.iter().map(|i| build_time(inum, i)).collect();
    let mut cache = ConfigCostCache::new(inum, workload, indexes);
    let full = (1u32 << n) - 1;
    let mut dp = vec![f64::INFINITY; (full + 1) as usize];
    let mut pred: Vec<Option<usize>> = vec![None; (full + 1) as usize];
    dp[0] = 0.0;
    for mask in 0..=full {
        if dp[mask as usize].is_infinite() {
            continue;
        }
        let rate = cache.workload_cost(mask);
        for i in 0..n {
            if mask & (1 << i) != 0 {
                continue;
            }
            let next = mask | (1 << i);
            let candidate = dp[mask as usize] + rate * times[i];
            if candidate < dp[next as usize] {
                dp[next as usize] = candidate;
                pred[next as usize] = Some(i);
            }
        }
    }
    // Reconstruct.
    let mut order_rev = Vec::with_capacity(n);
    let mut mask = full;
    while mask != 0 {
        let i = pred[mask as usize].expect("path exists");
        order_rev.push(i);
        mask &= !(1 << i);
    }
    order_rev.reverse();
    let (area, curve) = evaluate_order(&mut cache, &times, &order_rev);
    Schedule {
        order: order_rev,
        area,
        curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_catalog::schema::TableId;
    use pgdesign_catalog::Catalog;
    use pgdesign_optimizer::Optimizer;
    use pgdesign_query::parse_query;

    fn photo(c: &Catalog) -> TableId {
        c.schema.table_by_name("photoobj").unwrap().id
    }

    /// A workload + candidates where order clearly matters: one index is
    /// dominant for the hot query, the others are niche.
    fn scenario(c: &Catalog) -> (Workload, Vec<Index>) {
        let w = Workload::from_queries([
            parse_query(&c.schema, "SELECT ra FROM photoobj WHERE objid = 42").unwrap(),
            parse_query(&c.schema, "SELECT ra FROM photoobj WHERE objid = 43").unwrap(),
            parse_query(&c.schema, "SELECT ra FROM photoobj WHERE objid = 44").unwrap(),
            parse_query(&c.schema, "SELECT objid FROM photoobj WHERE run = 2000").unwrap(),
        ]);
        let t = photo(c);
        let indexes = vec![
            Index::new(t, vec![9]),    // run — helps 1 query
            Index::new(t, vec![0]),    // objid — helps 3 queries
            Index::new(t, vec![4, 5]), // (u, g) — helps nothing
        ];
        (w, indexes)
    }

    #[test]
    fn greedy_builds_dominant_index_first() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let (w, idxs) = scenario(&c);
        let s = greedy_schedule(&inum, &w, &idxs);
        assert_eq!(
            s.order[0], 1,
            "objid index should be built first: {:?}",
            s.order
        );
    }

    #[test]
    fn greedy_beats_or_matches_naive() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let (w, idxs) = scenario(&c);
        let naive = naive_schedule(&inum, &w, &idxs);
        let greedy = greedy_schedule(&inum, &w, &idxs);
        assert!(
            greedy.area <= naive.area + 1e-6,
            "greedy {} vs naive {}",
            greedy.area,
            naive.area
        );
        // In this scenario the naive order (run first) is strictly worse.
        assert!(greedy.area < naive.area * 0.99, "order should matter here");
    }

    #[test]
    fn exact_is_lower_bound_for_all_schedules() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let (w, idxs) = scenario(&c);
        let exact = exact_schedule(&inum, &w, &idxs);
        let greedy = greedy_schedule(&inum, &w, &idxs);
        let naive = naive_schedule(&inum, &w, &idxs);
        assert!(exact.area <= greedy.area + 1e-6);
        assert!(exact.area <= naive.area + 1e-6);
        // All schedules end at the same final configuration cost.
        let f = |s: &Schedule| s.curve.last().unwrap().1;
        assert!((f(&exact) - f(&greedy)).abs() < 1e-6);
        assert!((f(&exact) - f(&naive)).abs() < 1e-6);
    }

    #[test]
    fn curve_is_monotone_in_time_and_cost() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let (w, idxs) = scenario(&c);
        let s = greedy_schedule(&inum, &w, &idxs);
        assert_eq!(s.curve.len(), idxs.len() + 1);
        for win in s.curve.windows(2) {
            assert!(win[1].0 > win[0].0, "time advances");
            assert!(
                win[1].1 <= win[0].1 + 1e-6,
                "adding indexes never raises workload cost"
            );
        }
    }

    #[test]
    fn build_time_scales_with_table_size() {
        let small = sdss_catalog(0.01);
        let large = sdss_catalog(0.05);
        let opt = Optimizer::new();
        let inum_s = Inum::new(&small, &opt);
        let inum_l = Inum::new(&large, &opt);
        let idx_s = Index::new(photo(&small), vec![0]);
        let idx_l = Index::new(photo(&large), vec![0]);
        assert!(build_time(&inum_l, &idx_l) > build_time(&inum_s, &idx_s));
    }

    #[test]
    fn empty_and_singleton_schedules() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let (w, idxs) = scenario(&c);
        let empty = greedy_schedule(&inum, &w, &[]);
        assert!(empty.order.is_empty());
        assert_eq!(empty.area, 0.0);
        let single = exact_schedule(&inum, &w, &idxs[..1]);
        assert_eq!(single.order, vec![0]);
        assert!(single.area > 0.0);
    }
}
