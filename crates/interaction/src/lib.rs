//! # pgdesign-interaction
//!
//! Index interactions — modeling, analysis and applications (Schnaitter,
//! Polyzotis, Getoor, PVLDB 2009); the paper's index interaction component
//! (§3.5) and the machinery behind Figure 2 and the materialization
//! schedule of scenario 2.
//!
//! Two indexes *interact* when the benefit of one depends on the presence
//! of the other — e.g. two indexes that serve the same query compete
//! (negative interaction), while an index pair enabling a sort-free merge
//! join cooperates (positive interaction). Formally, the *degree of
//! interaction* within candidate set `S` is
//!
//! ```text
//! doi(a,b) = max over q ∈ W, X ⊆ S∖{a,b} of
//!            |δ_a(q, X) − δ_a(q, X ∪ {b})| / cost(q, X ∪ {a,b})
//! ```
//!
//! where `δ_a(q, X) = cost(q, X) − cost(q, X ∪ {a})` is `a`'s benefit on
//! top of configuration `X`.
//!
//! The crate provides:
//! * [`analyze`] — the doi matrix over a candidate set, with configuration
//!   costs memoized through INUM (subsets shared across pairs, so the
//!   whole analysis costs `O(2^n · |W|)` cached cost calls, sampled when
//!   `n` is large);
//! * [`InteractionGraph`] — Figure 2's weighted undirected graph, with
//!   top-k edge filtering ("the user can dynamically change the number of
//!   interactions displayed") and DOT export;
//! * stable partitions — connected components of the thresholded graph:
//!   index subsets that can be reasoned about independently;
//! * [`schedule`] — interaction-aware materialization scheduling: order
//!   the chosen indexes so the workload reaps benefits as early as
//!   possible while builds are in flight (greedy and exact-DP variants).

#![forbid(unsafe_code)]

pub mod graph;
pub mod schedule;

pub use graph::InteractionGraph;
pub use schedule::{
    exact_schedule, greedy_schedule, naive_schedule, schedule_pair, schedule_pair_on, Schedule,
};

use pgdesign_catalog::design::{Index, PhysicalDesign};
use pgdesign_inum::{CostMatrix, Inum, MatrixView};
use pgdesign_query::Workload;
use std::collections::HashMap;

/// Analysis knobs.
#[derive(Debug, Clone, Copy)]
pub struct InteractionConfig {
    /// Cap on enumerated configurations per pair context. When `2^n`
    /// exceeds this, subsets are sampled deterministically.
    pub max_subsets: usize,
}

impl Default for InteractionConfig {
    fn default() -> Self {
        InteractionConfig { max_subsets: 256 }
    }
}

/// The matrix a [`ConfigCostCache`] serves lookups from: either one it
/// built (and owns) for a standalone analysis, or a borrowed read view —
/// a live session matrix *or* a published snapshot
/// ([`pgdesign_inum::MatrixSnapshot`]), which is how concurrent readers
/// run interaction analyses without blocking the writer.
enum MatrixHandle<'m, 'a> {
    Owned(Box<CostMatrix<'a>>),
    Borrowed(&'m dyn MatrixView),
}

/// Memoized workload costs per index-subset bitmask, served from a
/// precomputed [`CostMatrix`]: each first-seen subset costs one matrix
/// lookup per query (additions and `min`s over precomputed floats), never
/// a design construction or an access-path enumeration. The `2^k` subset
/// sweep of [`analyze`] runs entirely on this.
///
/// Bit `b` of a mask selects `ids[b]` — the cache maps compact mask
/// positions onto arbitrary candidate ids, so it works both over a matrix
/// it built itself ([`ConfigCostCache::new`], ids `0..n`) and over a slice
/// of an existing session matrix ([`ConfigCostCache::on_matrix`], any live
/// ids, no rebuild).
pub struct ConfigCostCache<'m, 'a> {
    handle: MatrixHandle<'m, 'a>,
    /// Mask bit position → candidate id in the matrix.
    ids: Vec<usize>,
    /// Active query ids at construction time.
    qids: Vec<usize>,
    weights: Vec<f64>,
    costs: HashMap<u32, Vec<f64>>,
}

impl<'m, 'a> ConfigCostCache<'m, 'a> {
    /// New cache over a candidate set (builds and owns its matrix).
    pub fn new(inum: &'a Inum<'a>, workload: &Workload, indexes: &[Index]) -> Self {
        let matrix = CostMatrix::build(inum, workload, indexes);
        let ids = (0..indexes.len()).collect();
        Self::with_handle(MatrixHandle::Owned(Box::new(matrix)), ids)
    }

    /// New cache over `candidate_ids` of an existing read view (a live
    /// matrix or a published snapshot) — no rebuild; every lookup is
    /// served from the view's resident cells. The ids must be live
    /// candidates of `matrix`.
    pub fn on_matrix(matrix: &'m dyn MatrixView, candidate_ids: Vec<usize>) -> Self {
        Self::with_handle(MatrixHandle::Borrowed(matrix), candidate_ids)
    }

    fn with_handle(handle: MatrixHandle<'m, 'a>, ids: Vec<usize>) -> Self {
        assert!(
            ids.len() <= 20,
            "interaction analysis supports ≤ 20 indexes"
        );
        let (qids, weights) = {
            let m: &dyn MatrixView = match &handle {
                MatrixHandle::Owned(m) => &**m,
                MatrixHandle::Borrowed(m) => *m,
            };
            let qids = m.active_query_ids_vec();
            let weights = qids.iter().map(|&q| m.query_weight(q)).collect();
            (qids, weights)
        };
        ConfigCostCache {
            handle,
            ids,
            qids,
            weights,
            costs: HashMap::new(),
        }
    }

    /// The read view lookups are served from.
    pub fn matrix(&self) -> &dyn MatrixView {
        match &self.handle {
            MatrixHandle::Owned(m) => &**m,
            MatrixHandle::Borrowed(m) => *m,
        }
    }

    /// Number of (active) queries each cost vector covers.
    pub fn n_queries(&self) -> usize {
        self.qids.len()
    }

    /// Per-query costs under the subset encoded by `mask` (aligned with
    /// the active queries of the matrix at cache construction).
    pub fn query_costs(&mut self, mask: u32) -> &[f64] {
        if !self.costs.contains_key(&mask) {
            let selected: Vec<usize> = self
                .ids
                .iter()
                .enumerate()
                .filter(|&(bit, _)| mask & (1 << bit) != 0)
                .map(|(_, &id)| id)
                .collect();
            let config = self.matrix().config_with(&selected);
            let costs: Vec<f64> = self
                .qids
                .iter()
                .map(|&qi| self.matrix().cost(qi, &config))
                .collect();
            self.costs.insert(mask, costs);
        }
        &self.costs[&mask]
    }

    /// Weighted workload cost under the subset encoded by `mask`.
    pub fn workload_cost(&mut self, mask: u32) -> f64 {
        self.query_costs(mask); // fill the memo
        self.costs[&mask]
            .iter()
            .zip(&self.weights)
            .map(|(c, w)| c * w)
            .sum()
    }

    /// The design corresponding to a bitmask (slow-path bridge).
    pub fn design_of(&self, mask: u32) -> PhysicalDesign {
        PhysicalDesign::with_indexes(
            self.ids
                .iter()
                .enumerate()
                .filter(|&(bit, _)| mask & (1 << bit) != 0)
                .filter_map(|(_, &id)| self.matrix().candidate(id).cloned()),
        )
    }

    /// Number of distinct configurations costed so far.
    pub fn configurations_costed(&self) -> usize {
        self.costs.len()
    }
}

/// The result of interaction analysis.
#[derive(Debug, Clone)]
pub struct InteractionAnalysis {
    /// The analysed candidate indexes.
    pub indexes: Vec<Index>,
    /// Symmetric degree-of-interaction matrix (`doi[i][j] = doi[j][i]`,
    /// diagonal zero).
    pub doi: Vec<Vec<f64>>,
}

impl InteractionAnalysis {
    /// The interaction graph over this analysis.
    pub fn graph(&self) -> InteractionGraph {
        InteractionGraph::from_analysis(self)
    }

    /// Stable partition of the candidate set: connected components of the
    /// graph with edges of weight > `threshold`. Indexes in different
    /// parts do not (measurably) interact and can be scheduled/reasoned
    /// about independently.
    pub fn stable_partition(&self, threshold: f64) -> Vec<Vec<usize>> {
        let n = self.indexes.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if self.doi[i][j] > threshold {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            let r = find(&mut parent, i);
            groups.entry(r).or_default().push(i);
        }
        let mut out: Vec<Vec<usize>> = groups.into_values().collect();
        out.sort();
        out
    }
}

/// Subset masks to explore for a pair context of `n` free indexes.
fn subset_masks(n_free: usize, max_subsets: usize) -> Vec<u32> {
    let total = 1u64 << n_free;
    if total as usize <= max_subsets {
        (0..total as u32).collect()
    } else {
        // Deterministic stride sampling, always including ∅ and the full
        // set (the extreme contexts where interactions usually peak).
        let mut masks: Vec<u32> = Vec::with_capacity(max_subsets);
        masks.push(0);
        masks.push((total - 1) as u32);
        let stride = total / (max_subsets as u64 - 2);
        let mut m = stride;
        while m < total - 1 && masks.len() < max_subsets {
            masks.push(m as u32);
            m += stride;
        }
        masks
    }
}

/// Compute the degree-of-interaction matrix for a candidate set (builds a
/// private cost matrix; see [`analyze_on`] for the session-matrix entry).
pub fn analyze(
    inum: &Inum<'_>,
    workload: &Workload,
    indexes: &[Index],
    config: &InteractionConfig,
) -> InteractionAnalysis {
    let cache = ConfigCostCache::new(inum, workload, indexes);
    analyze_with(cache, indexes.to_vec(), config)
}

/// Compute the degree-of-interaction matrix for live candidates of an
/// *existing* read view — the session-scoped entry: no matrix build, every
/// subset cost is a pure lookup against the resident cells. The view can
/// be the live [`CostMatrix`] or a published
/// [`pgdesign_inum::MatrixSnapshot`] (concurrent readers analyze against a
/// pinned generation while the writer keeps mutating). `candidate_ids`
/// must be live candidate ids of `matrix`; the returned analysis lists the
/// indexes in the same order.
pub fn analyze_on(
    matrix: &dyn MatrixView,
    candidate_ids: &[usize],
    config: &InteractionConfig,
) -> InteractionAnalysis {
    let indexes: Vec<Index> = candidate_ids
        .iter()
        .map(|&id| {
            matrix
                .candidate(id)
                .expect("analyze_on requires live candidate ids")
                .clone()
        })
        .collect();
    let cache = ConfigCostCache::on_matrix(matrix, candidate_ids.to_vec());
    analyze_with(cache, indexes, config)
}

fn analyze_with(
    mut cache: ConfigCostCache<'_, '_>,
    indexes: Vec<Index>,
    config: &InteractionConfig,
) -> InteractionAnalysis {
    let n = indexes.len();
    let mut doi = vec![vec![0.0f64; n]; n];
    if n < 2 {
        return InteractionAnalysis { indexes, doi };
    }

    // Free positions for a pair (a, b): all other indexes.
    for a in 0..n {
        for b in (a + 1)..n {
            let free: Vec<usize> = (0..n).filter(|&k| k != a && k != b).collect();
            let mut max_doi = 0.0f64;
            for sub in subset_masks(free.len(), config.max_subsets) {
                // Expand the compact submask over the free positions.
                let mut x = 0u32;
                for (bit, &pos) in free.iter().enumerate() {
                    if sub & (1 << bit) != 0 {
                        x |= 1 << pos;
                    }
                }
                let xa = x | (1 << a);
                let xb = x | (1 << b);
                let xab = x | (1 << a) | (1 << b);
                let nq = cache.n_queries();
                for qi in 0..nq {
                    let c_x = cache.query_costs(x)[qi];
                    let c_xa = cache.query_costs(xa)[qi];
                    let c_xb = cache.query_costs(xb)[qi];
                    let c_xab = cache.query_costs(xab)[qi];
                    let delta_a = c_x - c_xa;
                    let delta_a_with_b = c_xb - c_xab;
                    let denom = c_xab.max(1e-9);
                    let d = (delta_a - delta_a_with_b).abs() / denom;
                    if d > max_doi {
                        max_doi = d;
                    }
                }
            }
            doi[a][b] = max_doi;
            doi[b][a] = max_doi;
        }
    }

    InteractionAnalysis { indexes, doi }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_catalog::schema::TableId;
    use pgdesign_catalog::Catalog;
    use pgdesign_optimizer::Optimizer;
    use pgdesign_query::parse_query;

    fn photo(c: &Catalog) -> TableId {
        c.schema.table_by_name("photoobj").unwrap().id
    }

    #[test]
    fn competing_indexes_interact() {
        // Two indexes that both serve the same selective predicate set:
        // each one's benefit collapses when the other exists.
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = Workload::from_queries([parse_query(
            &c.schema,
            "SELECT objid FROM photoobj WHERE type = 3 AND r < 14",
        )
        .unwrap()]);
        let t = photo(&c);
        let indexes = vec![
            Index::new(t, vec![3, 6]), // (type, r)
            Index::new(t, vec![6, 3]), // (r, type)
        ];
        let an = analyze(&inum, &w, &indexes, &InteractionConfig::default());
        assert!(
            an.doi[0][1] > 0.1,
            "competing indexes must interact: {}",
            an.doi[0][1]
        );
    }

    #[test]
    fn unrelated_indexes_do_not_interact() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = Workload::from_queries([
            parse_query(&c.schema, "SELECT ra FROM photoobj WHERE objid = 3").unwrap(),
            parse_query(&c.schema, "SELECT bestobjid FROM specobj WHERE plate = 300").unwrap(),
        ]);
        let t = photo(&c);
        let spec = c.schema.table_by_name("specobj").unwrap().id;
        let indexes = vec![Index::new(t, vec![0]), Index::new(spec, vec![5])];
        let an = analyze(&inum, &w, &indexes, &InteractionConfig::default());
        assert!(
            an.doi[0][1] < 1e-6,
            "indexes on different tables serving different queries: {}",
            an.doi[0][1]
        );
    }

    #[test]
    fn doi_matrix_is_symmetric_with_zero_diagonal() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = pgdesign_query::generators::sdss_workload(&c, 9, 41);
        let t = photo(&c);
        let indexes = vec![
            Index::new(t, vec![0]),
            Index::new(t, vec![1]),
            Index::new(t, vec![6]),
            Index::new(t, vec![3, 6]),
        ];
        let an = analyze(&inum, &w, &indexes, &InteractionConfig::default());
        for i in 0..4 {
            assert_eq!(an.doi[i][i], 0.0);
            for j in 0..4 {
                assert_eq!(an.doi[i][j], an.doi[j][i]);
                assert!(an.doi[i][j] >= 0.0);
            }
        }
    }

    #[test]
    fn stable_partition_separates_tables() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = Workload::from_queries([
            parse_query(
                &c.schema,
                "SELECT objid FROM photoobj WHERE type = 3 AND r < 14",
            )
            .unwrap(),
            parse_query(&c.schema, "SELECT bestobjid FROM specobj WHERE plate = 300").unwrap(),
        ]);
        let t = photo(&c);
        let spec = c.schema.table_by_name("specobj").unwrap().id;
        let indexes = vec![
            Index::new(t, vec![3, 6]),
            Index::new(t, vec![6, 3]),
            Index::new(spec, vec![5]),
        ];
        let an = analyze(&inum, &w, &indexes, &InteractionConfig::default());
        let parts = an.stable_partition(0.01);
        // The two photoobj indexes belong together; the specobj one apart.
        assert_eq!(parts.len(), 2, "{parts:?}");
        assert!(parts.contains(&vec![0, 1]));
        assert!(parts.contains(&vec![2]));
    }

    #[test]
    fn cache_shares_subsets_across_pairs() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = pgdesign_query::generators::sdss_workload(&c, 9, 43);
        let t = photo(&c);
        let indexes = vec![
            Index::new(t, vec![0]),
            Index::new(t, vec![1]),
            Index::new(t, vec![6]),
        ];
        let mut cache = ConfigCostCache::new(&inum, &w, &indexes);
        for mask in 0u32..8 {
            let _ = cache.workload_cost(mask);
        }
        assert_eq!(cache.configurations_costed(), 8);
        // Re-asking costs nothing new.
        let _ = cache.workload_cost(5);
        assert_eq!(cache.configurations_costed(), 8);
    }

    #[test]
    fn subset_sampling_caps_enumeration() {
        let all = subset_masks(4, 256);
        assert_eq!(all.len(), 16);
        let sampled = subset_masks(12, 64);
        assert!(sampled.len() <= 64);
        assert!(sampled.contains(&0));
        assert!(sampled.contains(&((1u32 << 12) - 1)));
    }
}
