//! The index interaction graph (the paper's Figure 2).
//!
//! "We use an undirected graph in which the vertices of the graph
//! represent indexes and the weights of the edges are the degree of
//! interaction for a pair of indexes. If the graph has too many edges, the
//! user can dynamically change the number of interactions that are being
//! displayed."

use crate::InteractionAnalysis;
use pgdesign_catalog::design::Index;
use pgdesign_catalog::schema::Schema;
use std::fmt::Write as _;

/// A weighted undirected interaction graph.
#[derive(Debug, Clone)]
pub struct InteractionGraph {
    /// Vertices: the candidate indexes.
    pub indexes: Vec<Index>,
    /// Edges `(i, j, doi)` with `i < j`, sorted by weight descending.
    pub edges: Vec<(usize, usize, f64)>,
}

impl InteractionGraph {
    /// Build from a finished analysis, dropping zero-weight edges.
    pub fn from_analysis(an: &InteractionAnalysis) -> Self {
        let n = an.indexes.len();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if an.doi[i][j] > 1e-12 {
                    edges.push((i, j, an.doi[i][j]));
                }
            }
        }
        edges.sort_by(|a, b| b.2.total_cmp(&a.2));
        InteractionGraph {
            indexes: an.indexes.clone(),
            edges,
        }
    }

    /// The `k` strongest interactions (the UI's display filter).
    pub fn top_edges(&self, k: usize) -> &[(usize, usize, f64)] {
        &self.edges[..k.min(self.edges.len())]
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Render the graph in Graphviz DOT, limited to the top `k` edges.
    pub fn to_dot(&self, schema: &Schema, k: usize) -> String {
        let mut s = String::from("graph interactions {\n  node [shape=box];\n");
        for (i, idx) in self.indexes.iter().enumerate() {
            let _ = writeln!(s, "  i{} [label=\"{}\"];", i, idx.display(schema));
        }
        for (i, j, w) in self.top_edges(k) {
            let _ = writeln!(
                s,
                "  i{i} -- i{j} [label=\"{w:.3}\", penwidth={:.1}];",
                1.0 + 4.0 * w.min(1.0)
            );
        }
        s.push_str("}\n");
        s
    }

    /// A plain-text edge list for terminal display.
    pub fn to_text(&self, schema: &Schema, k: usize) -> String {
        let mut s = String::new();
        for (i, j, w) in self.top_edges(k) {
            let _ = writeln!(
                s,
                "{:>8.4}  {}  ~  {}",
                w,
                self.indexes[*i].display(schema),
                self.indexes[*j].display(schema)
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::schema::{SchemaBuilder, TableId};
    use pgdesign_catalog::types::DataType;

    fn sample() -> (Schema, InteractionGraph) {
        let schema = SchemaBuilder::new()
            .table("t")
            .column("a", DataType::Int)
            .column("b", DataType::Int)
            .column("c", DataType::Int)
            .build()
            .unwrap();
        let an = InteractionAnalysis {
            indexes: vec![
                Index::new(TableId(0), vec![0]),
                Index::new(TableId(0), vec![1]),
                Index::new(TableId(0), vec![2]),
            ],
            doi: vec![
                vec![0.0, 0.8, 0.0],
                vec![0.8, 0.0, 0.3],
                vec![0.0, 0.3, 0.0],
            ],
        };
        (schema, InteractionGraph::from_analysis(&an))
    }

    #[test]
    fn edges_sorted_descending() {
        let (_, g) = sample();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edges[0], (0, 1, 0.8));
        assert_eq!(g.edges[1], (1, 2, 0.3));
    }

    #[test]
    fn top_edges_filter() {
        let (_, g) = sample();
        assert_eq!(g.top_edges(1).len(), 1);
        assert_eq!(g.top_edges(10).len(), 2);
        assert_eq!(g.top_edges(0).len(), 0);
    }

    #[test]
    fn dot_contains_vertices_and_edges() {
        let (schema, g) = sample();
        let dot = g.to_dot(&schema, 10);
        assert!(dot.starts_with("graph interactions {"));
        assert!(dot.contains("t(a)"));
        assert!(dot.contains("i0 -- i1"));
        assert!(dot.contains("0.800"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn text_render_lists_pairs() {
        let (schema, g) = sample();
        let text = g.to_text(&schema, 1);
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("t(a)") && text.contains("t(b)"));
    }
}
