//! Access-path selection for one table slot.
//!
//! Enumerates and costs every way to produce a slot's filtered rows under
//! a given [`PhysicalDesign`]: sequential scan, vertical-fragment scan,
//! (index-only) B-tree scans, bitmap heap scans — with horizontal partition
//! pruning applied where the design provides it. The what-if machinery of
//! the paper reduces to calling these functions with hypothetical designs.

use crate::params::CostParams;
use crate::plan::{order_satisfies, PlanExpr, PlanNode};
use crate::selectivity;
use pgdesign_catalog::design::{Index, PhysicalDesign};
use pgdesign_catalog::sizing;
use pgdesign_catalog::Catalog;
use pgdesign_query::ast::{PredOp, Query, QueryColumn};

/// Everything access-path costing needs, bundled to keep signatures sane.
#[derive(Clone, Copy)]
pub struct AccessContext<'a> {
    /// Catalog (schema + statistics).
    pub catalog: &'a Catalog,
    /// Effective physical design (base ∪ what-if).
    pub design: &'a PhysicalDesign,
    /// Cost constants.
    pub params: &'a CostParams,
    /// The query being planned.
    pub query: &'a Query,
}

/// Per-column predicate summary used for index prefix matching.
#[derive(Debug, Clone, Copy, Default)]
struct ColRestriction {
    eq_sel: Option<f64>,
    range_sel: Option<f64>,
}

/// Derived information about a slot, shared by all candidate paths.
pub struct SlotProfile {
    /// The slot.
    pub slot: u16,
    /// Base-table rows.
    pub base_rows: f64,
    /// Rows the path must output (all filters + parameterized equalities).
    pub rows_out: f64,
    /// Columns the slot must supply upward.
    pub needed_cols: Vec<u16>,
    /// Output width in bytes.
    pub out_width: f64,
    /// Number of filter predicates on the slot.
    pub n_filters: usize,
    /// Horizontal-partition surviving fraction for this slot's predicates.
    pub h_frac: f64,
    /// Equality-bound columns (for order satisfaction).
    pub eq_bound: Vec<QueryColumn>,
    restrictions: Vec<ColRestriction>,
}

impl SlotProfile {
    /// Build the profile for `slot`, optionally adding parameterized
    /// equality columns (the nested-loop inner case).
    pub fn build(ctx: &AccessContext<'_>, slot: u16, param_eq_cols: &[u16]) -> SlotProfile {
        let table = ctx.query.table_of(slot);
        let tdef = ctx.catalog.schema.table(table);
        let tstats = ctx.catalog.table_stats(table);
        let base_rows = tstats.row_count as f64;

        let mut needed_cols = if ctx.query.select_star {
            (0..tdef.width()).collect()
        } else {
            ctx.query.columns_used(slot)
        };
        for &c in param_eq_cols {
            if !needed_cols.contains(&c) {
                needed_cols.push(c);
                needed_cols.sort_unstable();
            }
        }

        let mut restrictions = vec![ColRestriction::default(); tdef.width() as usize];
        let mut total_sel = 1.0f64;
        let mut n_filters = 0usize;
        for f in ctx.query.filters_on(slot) {
            n_filters += 1;
            let stats = tstats.column(f.col.column);
            let sel = selectivity::predicate_selectivity(stats, &f.op);
            total_sel *= sel;
            let r = &mut restrictions[f.col.column as usize];
            match &f.op {
                PredOp::Cmp(pgdesign_query::ast::CmpOp::Eq, _) | PredOp::InList(_) => {
                    r.eq_sel = Some(r.eq_sel.map_or(sel, |p| p.min(sel)));
                }
                op if op.is_sargable() => {
                    r.range_sel = Some(r.range_sel.map_or(sel, |p| p * sel));
                }
                _ => {}
            }
        }
        let mut eq_bound: Vec<QueryColumn> = restrictions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.eq_sel.is_some())
            .map(|(c, _)| QueryColumn::new(slot, c as u16))
            .collect();
        for &c in param_eq_cols {
            let ndv = tstats.column(c).ndv.max(1.0);
            let sel = 1.0 / ndv;
            total_sel *= sel;
            let r = &mut restrictions[c as usize];
            r.eq_sel = Some(r.eq_sel.map_or(sel, |p| p.min(sel)));
            let qc = QueryColumn::new(slot, c);
            if !eq_bound.contains(&qc) {
                eq_bound.push(qc);
            }
        }
        total_sel = total_sel.max(1e-12);

        // Horizontal partition pruning fraction.
        let h_frac = match ctx.design.horizontal(table) {
            Some(hp) => {
                let (lo, hi) = column_range_restriction(ctx.query, slot, hp.column);
                hp.surviving_fraction(lo, hi)
            }
            None => 1.0,
        };

        let out_width = f64::from(tdef.byte_width_of(&needed_cols)).max(8.0);
        SlotProfile {
            slot,
            base_rows,
            rows_out: (base_rows * total_sel).max(1.0),
            needed_cols,
            out_width,
            n_filters,
            h_frac,
            eq_bound,
            restrictions,
        }
    }

    /// Match an index's key prefix against the slot's restrictions:
    /// returns (matched column count, combined prefix selectivity).
    /// Equality columns extend the prefix; the first range column closes
    /// it (standard B-tree boundary-key behaviour).
    pub fn match_index(&self, index: &Index) -> (usize, f64) {
        let mut matched = 0usize;
        let mut sel = 1.0f64;
        for &c in &index.columns {
            let r = self.restrictions[c as usize];
            if let Some(eq) = r.eq_sel {
                sel *= eq;
                matched += 1;
            } else if let Some(rg) = r.range_sel {
                sel *= rg;
                matched += 1;
                break;
            } else {
                break;
            }
        }
        (matched, sel.max(1e-12))
    }
}

/// Mackert–Lohman estimate of distinct heap pages touched by `rows`
/// random row fetches against a relation of `pages` pages.
pub fn pages_fetched(rows: f64, pages: f64) -> f64 {
    let p = pages.max(1.0);
    if rows <= 0.0 {
        return 0.0;
    }
    let frac = (1.0 - 1.0 / p).powf(rows);
    (p * (1.0 - frac)).clamp(1.0_f64.min(rows), p)
}

/// The `[lo, hi]` numeric range a query's filters impose on one column of
/// a slot (either side open). Drives horizontal partition pruning; shared
/// between [`SlotProfile::build`] and the cost matrix's split candidates
/// so both compute identical surviving fractions.
pub fn column_range_restriction(
    query: &Query,
    slot: u16,
    column: u16,
) -> (Option<f64>, Option<f64>) {
    let (mut lo, mut hi) = (None, None);
    for f in query.filters_on(slot) {
        if f.col.column != column {
            continue;
        }
        match &f.op {
            PredOp::Cmp(op, v) => {
                if let Some(x) = v.numeric_image() {
                    use pgdesign_query::ast::CmpOp::*;
                    match op {
                        Eq => {
                            lo = Some(x);
                            hi = Some(x);
                        }
                        Lt | Le => hi = Some(hi.map_or(x, |h: f64| h.min(x))),
                        Gt | Ge => lo = Some(lo.map_or(x, |l: f64| l.max(x))),
                        Ne => {}
                    }
                }
            }
            PredOp::Between(a, b) => {
                if let (Some(a), Some(b)) = (a.numeric_image(), b.numeric_image()) {
                    lo = Some(lo.map_or(a, |l: f64| l.max(a)));
                    hi = Some(hi.map_or(b, |h: f64| h.min(b)));
                }
            }
            _ => {}
        }
    }
    (lo, hi)
}

/// The heap storage a slot's row fetches must touch under a design:
/// summed pages of the vertical fragments holding the needed columns (the
/// whole table when unpartitioned) and how many fragments get stitched
/// per row. The one partition-dependent input of every access-path cost
/// formula — computing it from precomputed per-fragment page counts is
/// what lets the INUM cost matrix re-cost a slot under hypothetical
/// partitionings without touching the design at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchTarget {
    /// Total heap pages of the fetch target (≥ 1).
    pub pages: f64,
    /// Vertical fragments stitched per fetched row (1 = no stitching).
    pub fragments: usize,
}

/// Fetch target for `needed` columns of a slot under the context's design:
/// the whole table, or the needed vertical fragments (plus their 8-byte
/// row-id overhead).
pub fn fetch_target(ctx: &AccessContext<'_>, slot: u16, needed: &[u16]) -> FetchTarget {
    let table = ctx.query.table_of(slot);
    let tdef = ctx.catalog.schema.table(table);
    let rows = ctx.catalog.row_count(table);
    match ctx.design.vertical(table) {
        Some(vp) => {
            let frags = vp.fragments_for(needed);
            let pages: u64 = frags
                .iter()
                .map(|&f| {
                    let w = tdef.byte_width_of(&vp.groups[f]) + 8;
                    sizing::heap_pages(rows, w)
                })
                .sum();
            FetchTarget {
                pages: pages.max(1) as f64,
                fragments: frags.len().max(1),
            }
        }
        None => FetchTarget {
            pages: sizing::heap_pages(rows, tdef.row_byte_width()) as f64,
            fragments: 1,
        },
    }
}

/// Cost of the sequential (or stitched-fragment) scan of a slot against an
/// explicit fetch target and horizontal-pruning fraction — the
/// target-parameterized form [`seq_scan_path`] and the cost matrix share.
pub fn seq_scan_cost(
    p: &CostParams,
    base_rows: f64,
    n_filters: usize,
    target: FetchTarget,
    h_frac: f64,
) -> f64 {
    let scanned_rows = base_rows * h_frac;
    let io = target.pages * h_frac * p.seq_page_cost;
    let mut cpu = scanned_rows * (p.cpu_tuple_cost + n_filters as f64 * p.cpu_operator_cost);
    if target.fragments > 1 {
        // Row-id stitch between fragments.
        cpu += scanned_rows * (target.fragments as f64 - 1.0) * p.cpu_operator_cost;
    }
    io + cpu
}

/// The sequential (or fragment) scan path.
pub fn seq_scan_path(ctx: &AccessContext<'_>, prof: &SlotProfile) -> PlanExpr {
    let target = fetch_target(ctx, prof.slot, &prof.needed_cols);
    let cost = seq_scan_cost(
        ctx.params,
        prof.base_rows,
        prof.n_filters,
        target,
        prof.h_frac,
    );
    let node = if target.fragments > 1 {
        PlanNode::FragmentScan {
            slot: prof.slot,
            fragments: target.fragments,
            filters: prof.n_filters,
        }
    } else {
        PlanNode::SeqScan {
            slot: prof.slot,
            filters: prof.n_filters,
        }
    };
    PlanExpr {
        node,
        cost,
        rows: prof.rows_out,
        order: vec![],
        width: prof.out_width,
    }
}

/// Partition-independent skeleton of one index-based access path (plain,
/// index-only, or bitmap). Everything that does not depend on the design's
/// partitionings is folded into `pre`/`post`; [`IndexPathProfile::cost`]
/// reproduces the full path formula — in the same floating-point order —
/// for any [`FetchTarget`], so the cost matrix can re-cost candidate
/// indexes under hypothetical partitionings without re-enumeration.
#[derive(Debug, Clone)]
pub struct IndexPathProfile {
    /// Bitmap index + heap scan (vs plain/index-only B-tree scan).
    pub bitmap: bool,
    /// Matched key-prefix columns.
    pub matched: usize,
    /// Covering (index-only) scan.
    pub index_only: bool,
    /// Parameterized inner side of a nested loop.
    pub parameterized: bool,
    /// Native output order delivered by the path (empty for bitmap).
    pub order: Vec<QueryColumn>,
    /// Cost added before the heap-I/O term (descent + leaf I/O + index CPU).
    pre: f64,
    /// Cost added after the heap-I/O term (residual filter/tuple CPU).
    post: f64,
    /// Rows that reach the heap (index-only discount already applied; for
    /// bitmap paths, the matched entry count).
    heap_rows: f64,
    /// Squared leading-column correlation (plain scans only).
    corr2: f64,
    /// Table row count (min-I/O clamp for correlated scans).
    row_count: f64,
}

impl IndexPathProfile {
    /// The path's full cost against a fetch target.
    pub fn cost(&self, p: &CostParams, target: FetchTarget) -> f64 {
        let fetched = pages_fetched(self.heap_rows * target.fragments as f64, target.pages);
        let heap_io = if self.bitmap {
            // After tid sorting fetches approach sequential as the fraction
            // of the relation touched grows (PostgreSQL's bitmap cost
            // interpolation).
            let frac = (fetched / target.pages.max(1.0)).clamp(0.0, 1.0).sqrt();
            let per_page = p.random_page_cost - (p.random_page_cost - p.seq_page_cost) * frac;
            fetched * per_page
        } else {
            let max_io = p.cached_random_page_cost(fetched, target.pages);
            let min_io = (self.heap_rows / (self.row_count / target.pages).max(1.0))
                .ceil()
                .max(if self.heap_rows > 0.0 { 1.0 } else { 0.0 })
                * p.seq_page_cost;
            self.corr2 * min_io.min(max_io) + (1.0 - self.corr2) * max_io
        };
        let cost = self.pre + heap_io + self.post;
        debug_assert!(
            cost.is_finite(),
            "access-path cost accumulation went non-finite (pre={}, heap_io={heap_io}, post={})",
            self.pre,
            self.post
        );
        cost
    }

    /// The five private cost terms, exposed for the durable-snapshot
    /// codec in `pgdesign-inum` (the vendored `serde` is a no-op shim, so
    /// persistence is hand-rolled): `(pre, post, heap_rows, corr2,
    /// row_count)`.
    pub fn persist_parts(&self) -> (f64, f64, f64, f64, f64) {
        (
            self.pre,
            self.post,
            self.heap_rows,
            self.corr2,
            self.row_count,
        )
    }

    /// Rebuild a profile from its public fields plus the
    /// [`persist_parts`](Self::persist_parts) tuple, in that order.
    #[allow(clippy::too_many_arguments)]
    pub fn from_persist_parts(
        bitmap: bool,
        matched: usize,
        index_only: bool,
        parameterized: bool,
        order: Vec<QueryColumn>,
        parts: (f64, f64, f64, f64, f64),
    ) -> Self {
        IndexPathProfile {
            bitmap,
            matched,
            index_only,
            parameterized,
            order,
            pre: parts.0,
            post: parts.1,
            heap_rows: parts.2,
            corr2: parts.3,
            row_count: parts.4,
        }
    }
}

/// Profile an index scan (plain or index-only) with `matched` prefix
/// columns.
fn index_scan_profile(
    ctx: &AccessContext<'_>,
    prof: &SlotProfile,
    index: &Index,
    matched: usize,
    prefix_sel: f64,
    parameterized: bool,
) -> IndexPathProfile {
    let p = ctx.params;
    let table = ctx.query.table_of(prof.slot);
    let tstats = ctx.catalog.table_stats(table);
    let key_width = index.key_width(&ctx.catalog.schema);
    let leaf_pages = sizing::btree_leaf_pages(tstats.row_count, key_width) as f64;
    let height = index.height(&ctx.catalog.schema, tstats) as f64;

    let entries = (prof.base_rows * prefix_sel).max(1.0);
    let descent = height * p.random_page_cost * 0.25 + 50.0 * p.cpu_operator_cost;
    let leaf_io = (prefix_sel * leaf_pages).ceil() * p.seq_page_cost;
    let index_cpu = entries * p.cpu_index_tuple_cost;

    let covers = index.covers(&prof.needed_cols);
    let heap_fetch_rows = if covers {
        entries * p.index_only_heap_fetch_frac
    } else {
        entries
    };
    let corr = tstats
        .column(index.leading_column())
        .correlation
        .abs()
        .clamp(0.0, 1.0);

    let remaining = prof.n_filters.saturating_sub(matched);
    let filter_cpu = heap_fetch_rows.max(entries) * remaining as f64 * p.cpu_operator_cost
        + prof.rows_out * p.cpu_tuple_cost;

    IndexPathProfile {
        bitmap: false,
        matched,
        index_only: covers,
        parameterized,
        order: index
            .columns
            .iter()
            .map(|&c| QueryColumn::new(prof.slot, c))
            .collect(),
        pre: descent + leaf_io + index_cpu,
        post: filter_cpu,
        heap_rows: heap_fetch_rows,
        corr2: corr * corr,
        row_count: tstats.row_count as f64,
    }
}

/// Profile a bitmap index + heap scan with `matched` prefix columns.
fn bitmap_profile(
    ctx: &AccessContext<'_>,
    prof: &SlotProfile,
    index: &Index,
    matched: usize,
    prefix_sel: f64,
) -> IndexPathProfile {
    let p = ctx.params;
    let table = ctx.query.table_of(prof.slot);
    let tstats = ctx.catalog.table_stats(table);
    let key_width = index.key_width(&ctx.catalog.schema);
    let leaf_pages = sizing::btree_leaf_pages(tstats.row_count, key_width) as f64;
    let height = index.height(&ctx.catalog.schema, tstats) as f64;

    let entries = (prof.base_rows * prefix_sel).max(1.0);
    // Bitmap construction has fixed startup overhead on top of the descent
    // (PostgreSQL charges it via startup cost; we fold it into total).
    let descent = height * p.random_page_cost * 0.25 + 150.0 * p.cpu_operator_cost;
    let leaf_io = (prefix_sel * leaf_pages).ceil() * p.seq_page_cost;
    let index_cpu = entries * (p.cpu_index_tuple_cost + p.cpu_operator_cost); // + tid sort

    let remaining = prof.n_filters.saturating_sub(matched);
    let cpu = entries * (p.cpu_tuple_cost + remaining as f64 * p.cpu_operator_cost);

    IndexPathProfile {
        bitmap: true,
        matched,
        index_only: false,
        parameterized: false,
        order: vec![],
        pre: descent + leaf_io + index_cpu,
        post: cpu,
        heap_rows: entries,
        corr2: 0.0,
        row_count: tstats.row_count as f64,
    }
}

/// Path profiles contributed by a single index on a slot — the
/// target-independent half of [`index_access_paths`], usable against any
/// [`FetchTarget`].
pub fn index_path_profiles(
    ctx: &AccessContext<'_>,
    prof: &SlotProfile,
    index: &Index,
    parameterized: bool,
) -> Vec<IndexPathProfile> {
    let mut out = Vec::new();
    let (matched, prefix_sel) = prof.match_index(index);
    if matched > 0 {
        out.push(index_scan_profile(
            ctx,
            prof,
            index,
            matched,
            prefix_sel,
            parameterized,
        ));
        if !parameterized {
            out.push(bitmap_profile(ctx, prof, index, matched, prefix_sel));
        }
    } else if index.covers(&prof.needed_cols) || order_relevant(ctx, prof.slot, index) {
        // Full index scan: no predicate match, but covering or
        // order-providing.
        out.push(index_scan_profile(ctx, prof, index, 0, 1.0, parameterized));
    }
    out
}

/// True when the index's leading column is "interesting" to the query
/// beyond predicate matching: it participates in joins, grouping or
/// ordering, so an unmatched full index scan may still pay for itself.
fn order_relevant(ctx: &AccessContext<'_>, slot: u16, index: &Index) -> bool {
    let lead = index.leading_column();
    let q = ctx.query;
    q.joins_on(slot).any(|j| j.column_on(slot) == Some(lead))
        || q.group_by
            .iter()
            .any(|g| g.slot == slot && g.column == lead)
        || q.order_by
            .iter()
            .any(|o| o.col.slot == slot && o.col.column == lead)
}

/// Access paths contributed by a single (possibly hypothetical) index on a
/// slot. Each index's paths depend only on the slot profile and the
/// design's partitionings — never on the *other* indexes present — which
/// is what lets the INUM cost matrix precompute per-candidate access costs
/// once and reuse them for every configuration containing the candidate.
pub fn index_access_paths(
    ctx: &AccessContext<'_>,
    prof: &SlotProfile,
    index: &Index,
    parameterized: bool,
) -> Vec<PlanExpr> {
    let target = fetch_target(ctx, prof.slot, &prof.needed_cols);
    index_path_profiles(ctx, prof, index, parameterized)
        .into_iter()
        .map(|pp| {
            let cost = pp.cost(ctx.params, target);
            let node = if pp.bitmap {
                PlanNode::BitmapHeapScan {
                    slot: prof.slot,
                    index: index.clone(),
                    matched_cols: pp.matched,
                }
            } else {
                PlanNode::IndexScan {
                    slot: prof.slot,
                    index: index.clone(),
                    matched_cols: pp.matched,
                    index_only: pp.index_only,
                    parameterized: pp.parameterized,
                }
            };
            PlanExpr {
                node,
                cost,
                rows: prof.rows_out,
                order: pp.order,
                width: prof.out_width,
            }
        })
        .collect()
}

/// Enumerate all candidate access paths for a slot (pruned to the useful
/// ones). With `param_eq_cols` non-empty the paths are parameterized inner
/// sides for a nested-loop join.
pub fn access_paths(ctx: &AccessContext<'_>, slot: u16, param_eq_cols: &[u16]) -> Vec<PlanExpr> {
    let prof = SlotProfile::build(ctx, slot, param_eq_cols);
    let parameterized = !param_eq_cols.is_empty();
    let mut out = vec![seq_scan_path(ctx, &prof)];
    let table = ctx.query.table_of(slot);
    for index in ctx.design.indexes_on(table) {
        out.extend(index_access_paths(ctx, &prof, index, parameterized));
    }
    out
}

/// The cheapest access path delivering `required_order` (adding an explicit
/// sort when no path delivers it natively).
pub fn best_access(
    ctx: &AccessContext<'_>,
    slot: u16,
    required_order: Option<&[QueryColumn]>,
    param_eq_cols: &[u16],
) -> PlanExpr {
    let prof = SlotProfile::build(ctx, slot, param_eq_cols);
    let paths = access_paths(ctx, slot, param_eq_cols);
    let mut best: Option<PlanExpr> = None;
    for path in paths {
        let candidate = match required_order {
            Some(req) if !order_satisfies(&path.order, req, &prof.eq_bound) => {
                let cost = path.cost + ctx.params.sort_cost(path.rows, path.width);
                PlanExpr {
                    cost,
                    rows: path.rows,
                    width: path.width,
                    order: req.to_vec(),
                    node: PlanNode::Sort {
                        input: Box::new(path),
                        keys: req.to_vec(),
                    },
                }
            }
            _ => path,
        };
        if best.as_ref().is_none_or(|b| candidate.cost < b.cost) {
            best = Some(candidate);
        }
    }
    best.expect("seq scan always exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::design::{HorizontalPartitioning, VerticalPartitioning};
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_catalog::schema::TableId;
    use pgdesign_query::parse_query;

    fn ctx<'a>(
        catalog: &'a Catalog,
        design: &'a PhysicalDesign,
        params: &'a CostParams,
        query: &'a Query,
    ) -> AccessContext<'a> {
        AccessContext {
            catalog,
            design,
            params,
            query,
        }
    }

    fn photoobj(c: &Catalog) -> TableId {
        c.schema.table_by_name("photoobj").unwrap().id
    }

    #[test]
    fn matching_index_beats_seq_scan_for_selective_predicate() {
        let c = sdss_catalog(0.05);
        let q = parse_query(&c.schema, "SELECT ra FROM photoobj WHERE objid = 42").unwrap();
        let p = CostParams::default();
        let empty = PhysicalDesign::empty();
        let a = ctx(&c, &empty, &p, &q);
        let seq = best_access(&a, 0, None, &[]);
        let with_idx = PhysicalDesign::with_indexes([Index::new(photoobj(&c), vec![0])]);
        let a2 = ctx(&c, &with_idx, &p, &q);
        let idx = best_access(&a2, 0, None, &[]);
        assert!(
            idx.cost < seq.cost / 100.0,
            "point lookup should be ≫ cheaper: {} vs {}",
            idx.cost,
            seq.cost
        );
        assert!(matches!(
            idx.node,
            PlanNode::IndexScan { .. } | PlanNode::BitmapHeapScan { .. }
        ));
    }

    #[test]
    fn unselective_predicate_keeps_seq_scan() {
        let c = sdss_catalog(0.05);
        let q = parse_query(&c.schema, "SELECT ra FROM photoobj WHERE ra > 1.0").unwrap();
        let p = CostParams::default();
        let with_idx = PhysicalDesign::with_indexes([Index::new(photoobj(&c), vec![1])]);
        let a = ctx(&c, &with_idx, &p, &q);
        let best = best_access(&a, 0, None, &[]);
        assert!(
            matches!(best.node, PlanNode::SeqScan { .. }),
            "ra > 1 selects ~everything; got {:?}",
            best.node
        );
    }

    #[test]
    fn covering_index_enables_index_only_scan() {
        let c = sdss_catalog(0.05);
        let q = parse_query(
            &c.schema,
            "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 100 AND 101",
        )
        .unwrap();
        let p = CostParams::default();
        let covering = PhysicalDesign::with_indexes([Index::new(photoobj(&c), vec![1, 2])]);
        let noncovering = PhysicalDesign::with_indexes([Index::new(photoobj(&c), vec![1, 4])]);
        let a_cov = ctx(&c, &covering, &p, &q);
        let a_non = ctx(&c, &noncovering, &p, &q);
        let cov = best_access(&a_cov, 0, None, &[]);
        let non = best_access(&a_non, 0, None, &[]);
        assert!(
            cov.cost < non.cost,
            "covering should win: {} vs {}",
            cov.cost,
            non.cost
        );
        assert!(cov.indexes_used().iter().any(|i| i.columns == vec![1, 2]));
    }

    #[test]
    fn multicolumn_prefix_matching() {
        let c = sdss_catalog(0.05);
        let q = parse_query(
            &c.schema,
            "SELECT objid FROM photoobj WHERE type = 3 AND r < 18",
        )
        .unwrap();
        let p = CostParams::default();
        let d = PhysicalDesign::with_indexes([Index::new(photoobj(&c), vec![3, 6])]);
        let a = ctx(&c, &d, &p, &q);
        let prof = SlotProfile::build(&a, 0, &[]);
        let (matched, sel) = prof.match_index(&d.indexes()[0]);
        assert_eq!(matched, 2, "eq on type anchors range on r");
        assert!(sel < 0.5);
        // Swapped order: range col first closes the prefix at 1.
        let idx_swapped = Index::new(photoobj(&c), vec![6, 3]);
        let (m2, _) = prof.match_index(&idx_swapped);
        assert_eq!(m2, 1);
    }

    #[test]
    fn required_order_uses_index_or_sort() {
        let c = sdss_catalog(0.05);
        let q = parse_query(
            &c.schema,
            "SELECT objid, r FROM photoobj WHERE r < 13 ORDER BY r",
        )
        .unwrap();
        let p = CostParams::default();
        // Covering (r, objid) index: the ordered index-only scan beats
        // bitmap + sort. A non-covering index on r alone loses to the
        // bitmap plan at this selectivity (random heap fetches dominate),
        // exactly as in PostgreSQL.
        let d = PhysicalDesign::with_indexes([Index::new(photoobj(&c), vec![6, 0])]);
        let a = ctx(&c, &d, &p, &q);
        let req = vec![QueryColumn::new(0, 6)];
        let with_idx = best_access(&a, 0, Some(&req), &[]);
        // Index leading on r delivers the order without a Sort node.
        assert!(
            !matches!(with_idx.node, PlanNode::Sort { .. }),
            "index should provide order: {:?}",
            with_idx.node
        );
        let empty = PhysicalDesign::empty();
        let a2 = ctx(&c, &empty, &p, &q);
        let without = best_access(&a2, 0, Some(&req), &[]);
        assert!(matches!(without.node, PlanNode::Sort { .. }));
    }

    #[test]
    fn parameterized_probe_is_cheap() {
        let c = sdss_catalog(0.05);
        let q = parse_query(
            &c.schema,
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid",
        )
        .unwrap();
        let p = CostParams::default();
        let d = PhysicalDesign::with_indexes([Index::new(photoobj(&c), vec![0])]);
        let a = ctx(&c, &d, &p, &q);
        let probe = best_access(&a, 0, None, &[0]);
        let full = best_access(&a, 0, None, &[]);
        assert!(
            probe.cost < full.cost / 100.0,
            "param probe {} vs full scan {}",
            probe.cost,
            full.cost
        );
        assert!(probe.rows < 5.0, "one key matches ~1 row: {}", probe.rows);
    }

    #[test]
    fn vertical_partitioning_shrinks_narrow_scans() {
        let c = sdss_catalog(0.05);
        let q = parse_query(&c.schema, "SELECT ra, dec FROM photoobj WHERE ra < 10").unwrap();
        let p = CostParams::default();
        let t = photoobj(&c);
        let empty = PhysicalDesign::empty();
        let a_full = ctx(&c, &empty, &p, &q);
        let full = seq_scan_path(&a_full, &SlotProfile::build(&a_full, 0, &[]));
        // Partition: (objid, ra, dec) | rest.
        let mut d = PhysicalDesign::empty();
        d.set_vertical(VerticalPartitioning::new(
            t,
            vec![vec![0, 1, 2], (3..16).collect()],
        ));
        let a_part = ctx(&c, &d, &p, &q);
        let part = seq_scan_path(&a_part, &SlotProfile::build(&a_part, 0, &[]));
        assert!(
            part.cost < full.cost * 0.8,
            "narrow fragment should be cheaper: {} vs {}",
            part.cost,
            full.cost
        );
        assert!(matches!(part.node, PlanNode::SeqScan { .. }));
    }

    #[test]
    fn fragment_stitch_costs_extra() {
        let c = sdss_catalog(0.05);
        // Query needs columns from two fragments.
        let q = parse_query(&c.schema, "SELECT ra, u FROM photoobj WHERE ra < 10").unwrap();
        let p = CostParams::default();
        let t = photoobj(&c);
        let mut d = PhysicalDesign::empty();
        d.set_vertical(VerticalPartitioning::new(
            t,
            vec![vec![0, 1, 2], (3..16).collect()],
        ));
        let a = ctx(&c, &d, &p, &q);
        let path = seq_scan_path(&a, &SlotProfile::build(&a, 0, &[]));
        assert!(matches!(
            path.node,
            PlanNode::FragmentScan { fragments: 2, .. }
        ));
    }

    #[test]
    fn horizontal_pruning_cuts_seq_scan_cost() {
        let c = sdss_catalog(0.05);
        let q = parse_query(
            &c.schema,
            "SELECT objid FROM photoobj WHERE ra BETWEEN 10 AND 20",
        )
        .unwrap();
        let p = CostParams::default();
        let t = photoobj(&c);
        let empty = PhysicalDesign::empty();
        let a1 = ctx(&c, &empty, &p, &q);
        let unpruned = seq_scan_path(&a1, &SlotProfile::build(&a1, 0, &[]));
        let mut d = PhysicalDesign::empty();
        d.set_horizontal(HorizontalPartitioning::new(
            t,
            1,
            (1..36).map(|i| i as f64 * 10.0).collect(),
        ));
        let a2 = ctx(&c, &d, &p, &q);
        let pruned = seq_scan_path(&a2, &SlotProfile::build(&a2, 0, &[]));
        assert!(
            pruned.cost < unpruned.cost / 10.0,
            "36 partitions, 2 survive: {} vs {}",
            pruned.cost,
            unpruned.cost
        );
    }

    #[test]
    fn pages_fetched_limits() {
        assert_eq!(pages_fetched(0.0, 100.0), 0.0);
        // Few rows on many pages ≈ one page per row.
        let few = pages_fetched(10.0, 1e6);
        assert!((few - 10.0).abs() < 0.1);
        // Many rows on few pages ≈ all pages.
        let many = pages_fetched(1e7, 100.0);
        assert!((many - 100.0).abs() < 1e-6);
    }

    #[test]
    fn select_star_needs_all_columns() {
        let c = sdss_catalog(0.05);
        let q = parse_query(&c.schema, "SELECT * FROM photoobj WHERE objid = 1").unwrap();
        let p = CostParams::default();
        let empty = PhysicalDesign::empty();
        let a = ctx(&c, &empty, &p, &q);
        let prof = SlotProfile::build(&a, 0, &[]);
        assert_eq!(prof.needed_cols.len(), 16);
    }
}
