//! Physical plan trees.
//!
//! Every node carries its total cost, output cardinality, delivered sort
//! order and output width, so parent nodes can be costed compositionally
//! and INUM can peel leaf access costs off a finished plan.

use pgdesign_catalog::design::Index;
use pgdesign_catalog::schema::Schema;
use pgdesign_query::ast::{Query, QueryColumn};
use std::fmt::Write as _;

/// A costed plan expression (node + derived properties).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanExpr {
    /// The operator.
    pub node: PlanNode,
    /// Total cost in optimizer cost units.
    pub cost: f64,
    /// Estimated output rows.
    pub rows: f64,
    /// Delivered sort order: columns whose ascending order the output
    /// respects. Leading equality-bound columns are omitted.
    pub order: Vec<QueryColumn>,
    /// Average output row width in bytes.
    pub width: f64,
}

/// Alias: the optimizer's final product.
pub type Plan = PlanExpr;

/// Physical operators.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Full sequential scan of a slot's table (or its sole fragment).
    SeqScan {
        /// Table slot scanned.
        slot: u16,
        /// Number of filter predicates applied during the scan.
        filters: usize,
    },
    /// Scan of one or more vertical fragments, stitched on row id.
    FragmentScan {
        /// Table slot scanned.
        slot: u16,
        /// How many fragments are read.
        fragments: usize,
        /// Number of filter predicates applied during the scan.
        filters: usize,
    },
    /// B-tree index scan (range or point), optionally index-only.
    IndexScan {
        /// Table slot scanned.
        slot: u16,
        /// The index used.
        index: Index,
        /// How many leading key columns are matched by predicates.
        matched_cols: usize,
        /// True when the heap is never touched.
        index_only: bool,
        /// True when this probe is parameterized by join keys (NLJ inner).
        parameterized: bool,
    },
    /// Bitmap index scan + sorted heap fetch.
    BitmapHeapScan {
        /// Table slot scanned.
        slot: u16,
        /// The index providing the bitmap.
        index: Index,
        /// How many leading key columns are matched.
        matched_cols: usize,
    },
    /// Explicit sort.
    Sort {
        /// Input plan.
        input: Box<PlanExpr>,
        /// Sort keys.
        keys: Vec<QueryColumn>,
    },
    /// Hash join (build on inner).
    HashJoin {
        /// Probe side.
        outer: Box<PlanExpr>,
        /// Build side.
        inner: Box<PlanExpr>,
    },
    /// Merge join on one equi-key.
    MergeJoin {
        /// Left (order-defining) side.
        outer: Box<PlanExpr>,
        /// Right side.
        inner: Box<PlanExpr>,
        /// The merged key (outer column, inner column).
        key: (QueryColumn, QueryColumn),
    },
    /// Nested-loop join; the inner side re-executes per outer row.
    NestLoop {
        /// Outer side.
        outer: Box<PlanExpr>,
        /// Inner side (often a parameterized index probe).
        inner: Box<PlanExpr>,
    },
    /// Grouped or plain aggregation.
    Aggregate {
        /// Input plan.
        input: Box<PlanExpr>,
        /// Hash aggregation (true) or sorted/stream aggregation (false).
        hash: bool,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Box<PlanExpr>,
        /// Maximum rows returned.
        n: u64,
    },
}

impl PlanExpr {
    /// Sum of the costs of all *leaf access* operators (scans/probes) in
    /// the tree. `cost - leaf_access_cost()` is the INUM "internal" cost.
    pub fn leaf_access_cost(&self) -> f64 {
        match &self.node {
            PlanNode::SeqScan { .. }
            | PlanNode::FragmentScan { .. }
            | PlanNode::IndexScan { .. }
            | PlanNode::BitmapHeapScan { .. } => self.cost,
            PlanNode::Sort { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Limit { input, .. } => input.leaf_access_cost(),
            PlanNode::HashJoin { outer, inner }
            | PlanNode::MergeJoin { outer, inner, .. }
            | PlanNode::NestLoop { outer, inner } => {
                outer.leaf_access_cost() + inner.leaf_access_cost()
            }
        }
    }

    /// All indexes referenced anywhere in the plan.
    pub fn indexes_used(&self) -> Vec<&Index> {
        let mut out = Vec::new();
        self.collect_indexes(&mut out);
        out
    }

    fn collect_indexes<'a>(&'a self, out: &mut Vec<&'a Index>) {
        match &self.node {
            PlanNode::IndexScan { index, .. } | PlanNode::BitmapHeapScan { index, .. } => {
                out.push(index);
            }
            PlanNode::Sort { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Limit { input, .. } => input.collect_indexes(out),
            PlanNode::HashJoin { outer, inner }
            | PlanNode::MergeJoin { outer, inner, .. }
            | PlanNode::NestLoop { outer, inner } => {
                outer.collect_indexes(out);
                inner.collect_indexes(out);
            }
            PlanNode::SeqScan { .. } | PlanNode::FragmentScan { .. } => {}
        }
    }

    /// Pretty EXPLAIN-style rendering.
    pub fn explain(&self, schema: &Schema, query: &Query) -> String {
        let mut s = String::new();
        self.explain_into(schema, query, 0, &mut s);
        s
    }

    fn explain_into(&self, schema: &Schema, query: &Query, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let head = match &self.node {
            PlanNode::SeqScan { slot, filters } => {
                let t = schema.table(query.table_of(*slot));
                format!("Seq Scan on {} (filters={filters})", t.name)
            }
            PlanNode::FragmentScan {
                slot,
                fragments,
                filters,
            } => {
                let t = schema.table(query.table_of(*slot));
                format!(
                    "Fragment Scan on {} (fragments={fragments}, filters={filters})",
                    t.name
                )
            }
            PlanNode::IndexScan {
                index,
                matched_cols,
                index_only,
                parameterized,
                ..
            } => {
                let kind = if *index_only {
                    "Index Only Scan"
                } else {
                    "Index Scan"
                };
                let param = if *parameterized {
                    ", parameterized"
                } else {
                    ""
                };
                format!(
                    "{kind} using {} (matched={matched_cols}{param})",
                    index.display(schema)
                )
            }
            PlanNode::BitmapHeapScan {
                index,
                matched_cols,
                ..
            } => format!(
                "Bitmap Heap Scan using {} (matched={matched_cols})",
                index.display(schema)
            ),
            PlanNode::Sort { keys, .. } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| {
                        let t = schema.table(query.table_of(k.slot));
                        format!("{}.{}", t.name, t.column(k.column).name)
                    })
                    .collect();
                format!("Sort (keys: {})", ks.join(", "))
            }
            PlanNode::HashJoin { .. } => "Hash Join".to_string(),
            PlanNode::MergeJoin { key, .. } => {
                let t = schema.table(query.table_of(key.0.slot));
                format!(
                    "Merge Join (key: {}.{})",
                    t.name,
                    t.column(key.0.column).name
                )
            }
            PlanNode::NestLoop { .. } => "Nested Loop".to_string(),
            PlanNode::Aggregate { hash, .. } => {
                if *hash {
                    "HashAggregate".to_string()
                } else {
                    "GroupAggregate".to_string()
                }
            }
            PlanNode::Limit { n, .. } => format!("Limit ({n})"),
        };
        let _ = writeln!(
            out,
            "{pad}{head}  (cost={:.2} rows={:.0} width={:.0})",
            self.cost, self.rows, self.width
        );
        match &self.node {
            PlanNode::Sort { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Limit { input, .. } => input.explain_into(schema, query, depth + 1, out),
            PlanNode::HashJoin { outer, inner }
            | PlanNode::MergeJoin { outer, inner, .. }
            | PlanNode::NestLoop { outer, inner } => {
                outer.explain_into(schema, query, depth + 1, out);
                inner.explain_into(schema, query, depth + 1, out);
            }
            _ => {}
        }
    }
}

/// True when a delivered order satisfies a required order: the required
/// columns must appear as a prefix of the delivered order, in sequence,
/// except that columns bound by equality predicates may be skipped on
/// either side (they are constant within the output).
pub fn order_satisfies(
    delivered: &[QueryColumn],
    required: &[QueryColumn],
    eq_bound: &[QueryColumn],
) -> bool {
    let mut di = 0usize;
    for rc in required {
        if eq_bound.contains(rc) {
            continue; // constant column: any order satisfies it
        }
        // Skip delivered columns that are equality-bound (constants).
        while di < delivered.len() && eq_bound.contains(&delivered[di]) {
            di += 1;
        }
        if di >= delivered.len() || delivered[di] != *rc {
            return false;
        }
        di += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qc(slot: u16, col: u16) -> QueryColumn {
        QueryColumn::new(slot, col)
    }

    fn leaf(cost: f64) -> PlanExpr {
        PlanExpr {
            node: PlanNode::SeqScan {
                slot: 0,
                filters: 0,
            },
            cost,
            rows: 100.0,
            order: vec![],
            width: 8.0,
        }
    }

    #[test]
    fn order_satisfies_prefix() {
        let delivered = vec![qc(0, 1), qc(0, 2)];
        assert!(order_satisfies(&delivered, &[], &[]));
        assert!(order_satisfies(&delivered, &[qc(0, 1)], &[]));
        assert!(order_satisfies(&delivered, &[qc(0, 1), qc(0, 2)], &[]));
        assert!(!order_satisfies(&delivered, &[qc(0, 2)], &[]));
        assert!(!order_satisfies(&delivered, &[qc(0, 1), qc(0, 3)], &[]));
    }

    #[test]
    fn order_satisfies_skips_equality_bound() {
        // Index (a, b) with a = const delivers order on b.
        let delivered = vec![qc(0, 0), qc(0, 1)];
        let eq = vec![qc(0, 0)];
        assert!(order_satisfies(&delivered, &[qc(0, 1)], &eq));
        // Required order on a constant column is trivially satisfied.
        assert!(order_satisfies(&[], &[qc(0, 0)], &eq));
    }

    #[test]
    fn empty_required_always_satisfied() {
        assert!(order_satisfies(&[], &[], &[]));
    }

    #[test]
    fn leaf_access_cost_peels_internal_nodes() {
        let scan_a = leaf(10.0);
        let scan_b = leaf(20.0);
        let join = PlanExpr {
            node: PlanNode::HashJoin {
                outer: Box::new(scan_a),
                inner: Box::new(scan_b),
            },
            cost: 50.0,
            rows: 10.0,
            order: vec![],
            width: 16.0,
        };
        let sorted = PlanExpr {
            node: PlanNode::Sort {
                input: Box::new(join),
                keys: vec![qc(0, 0)],
            },
            cost: 60.0,
            rows: 10.0,
            order: vec![qc(0, 0)],
            width: 16.0,
        };
        assert_eq!(sorted.leaf_access_cost(), 30.0);
    }

    #[test]
    fn indexes_used_walks_tree() {
        let idx = Index::new(pgdesign_catalog::schema::TableId(0), vec![1]);
        let scan = PlanExpr {
            node: PlanNode::IndexScan {
                slot: 0,
                index: idx.clone(),
                matched_cols: 1,
                index_only: false,
                parameterized: false,
            },
            cost: 5.0,
            rows: 10.0,
            order: vec![qc(0, 1)],
            width: 8.0,
        };
        let lim = PlanExpr {
            node: PlanNode::Limit {
                input: Box::new(scan),
                n: 10,
            },
            cost: 5.0,
            rows: 10.0,
            order: vec![qc(0, 1)],
            width: 8.0,
        };
        assert_eq!(lim.indexes_used(), vec![&idx]);
    }
}
