//! Candidate index enumeration.
//!
//! Shared by the automatic index suggestion component (CoPhy), the
//! continuous tuner (COLT, restricted to single-column candidates per the
//! paper §3.2.2) and the interactive sessions. The enumeration follows the
//! standard syntactic-relevance approach: indexes are proposed from the
//! columns a query actually restricts, joins, orders, groups or projects.

use pgdesign_catalog::design::Index;
use pgdesign_catalog::Catalog;
use pgdesign_query::ast::Query;
use pgdesign_query::Workload;
use std::collections::BTreeMap;

/// Knobs for candidate generation.
#[derive(Debug, Clone, Copy)]
pub struct CandidateConfig {
    /// Maximum key columns in a multi-column candidate.
    pub max_key_columns: usize,
    /// Also propose covering candidates (key + projected columns).
    pub include_covering: bool,
    /// Maximum total columns in a covering candidate.
    pub max_covering_width: usize,
    /// Restrict to single-column candidates (COLT mode).
    pub single_column_only: bool,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        CandidateConfig {
            max_key_columns: 3,
            include_covering: true,
            max_covering_width: 5,
            single_column_only: false,
        }
    }
}

impl CandidateConfig {
    /// COLT's configuration: single-column indexes only (§3.2.2).
    pub fn single_column() -> Self {
        CandidateConfig {
            single_column_only: true,
            include_covering: false,
            max_key_columns: 1,
            ..Default::default()
        }
    }
}

/// Candidate indexes for one query.
pub fn query_candidates(catalog: &Catalog, query: &Query, cfg: &CandidateConfig) -> Vec<Index> {
    let mut out: Vec<Index> = Vec::new();
    let mut push = |idx: Index| {
        if !idx.columns.is_empty() && !out.contains(&idx) {
            out.push(idx);
        }
    };
    for slot in 0..query.slot_count() {
        let table = query.table_of(slot);
        let tdef = catalog.schema.table(table);
        let sargable = query.sargable_columns(slot);
        let join_cols: Vec<u16> = query
            .joins_on(slot)
            .filter_map(|j| j.column_on(slot))
            .collect();

        // Single-column candidates: every sargable and join column.
        for &c in sargable.iter().chain(join_cols.iter()) {
            push(Index::new(table, vec![c]));
        }
        // Order/group columns as single-column candidates.
        for o in query.order_by.iter().filter(|o| o.col.slot == slot) {
            push(Index::new(table, vec![o.col.column]));
        }
        for g in query.group_by.iter().filter(|g| g.slot == slot) {
            push(Index::new(table, vec![g.column]));
        }
        if cfg.single_column_only {
            continue;
        }

        // Multi-column: sargable prefix (equality cols first, then the
        // first range column — already the order `sargable_columns` gives).
        if sargable.len() >= 2 {
            let key: Vec<u16> = sargable.iter().copied().take(cfg.max_key_columns).collect();
            push(Index::new(table, key.clone()));
            // Covering variant: append remaining needed columns.
            if cfg.include_covering {
                let mut cov = key;
                for c in query.columns_used(slot) {
                    if cov.len() >= cfg.max_covering_width {
                        break;
                    }
                    if !cov.contains(&c) {
                        cov.push(c);
                    }
                }
                if cov.len() <= cfg.max_covering_width {
                    push(Index::new(table, cov));
                }
            }
        }
        // Join column + filter columns (index-nested-loop enabler that
        // also filters at the inner side).
        for &jc in &join_cols {
            if !sargable.is_empty() {
                let mut key = vec![jc];
                for &c in sargable.iter().take(cfg.max_key_columns - 1) {
                    if !key.contains(&c) {
                        key.push(c);
                    }
                }
                push(Index::new(table, key));
            }
        }
        // ORDER BY prefix (sort avoidance), possibly after equality cols.
        let ob: Vec<u16> = query
            .order_by
            .iter()
            .filter(|o| o.col.slot == slot)
            .map(|o| o.col.column)
            .collect();
        if !ob.is_empty() {
            push(Index::new(
                table,
                ob.iter().copied().take(cfg.max_key_columns).collect(),
            ));
            // equality prefix + order column: classic "filter then sorted".
            let eqs: Vec<u16> = sargable
                .iter()
                .copied()
                .filter(|c| !ob.contains(c))
                .take(cfg.max_key_columns - 1)
                .collect();
            if !eqs.is_empty() {
                let mut key = eqs;
                key.extend(ob.iter().copied());
                key.truncate(cfg.max_key_columns);
                push(Index::new(table, key));
            }
        }
        // GROUP BY columns.
        let gb: Vec<u16> = query
            .group_by
            .iter()
            .filter(|g| g.slot == slot)
            .map(|g| g.column)
            .collect();
        if gb.len() >= 2 {
            push(Index::new(
                table,
                gb.into_iter().take(cfg.max_key_columns).collect(),
            ));
        }
        let _ = tdef;
    }
    out
}

/// Candidate set for a whole workload with per-query relevance lists.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Deduplicated candidate indexes.
    pub indexes: Vec<Index>,
    /// For each workload query, the indices (into `indexes`) of the
    /// candidates syntactically relevant to it.
    pub relevant: Vec<Vec<usize>>,
}

impl CandidateSet {
    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// True when no candidates were generated.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }
}

/// Enumerate candidates over a workload, deduplicating across queries.
pub fn workload_candidates(
    catalog: &Catalog,
    workload: &Workload,
    cfg: &CandidateConfig,
) -> CandidateSet {
    let mut ids: BTreeMap<Index, usize> = BTreeMap::new();
    let mut indexes: Vec<Index> = Vec::new();
    let mut relevant: Vec<Vec<usize>> = Vec::with_capacity(workload.len());
    for (q, _) in workload.iter() {
        let mut rel = Vec::new();
        for idx in query_candidates(catalog, q, cfg) {
            let id = *ids.entry(idx.clone()).or_insert_with(|| {
                indexes.push(idx);
                indexes.len() - 1
            });
            if !rel.contains(&id) {
                rel.push(id);
            }
        }
        relevant.push(rel);
    }
    CandidateSet { indexes, relevant }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_query::generators::sdss_workload;
    use pgdesign_query::parse_query;

    #[test]
    fn candidates_cover_predicate_columns() {
        let c = sdss_catalog(0.01);
        let q = parse_query(
            &c.schema,
            "SELECT objid FROM photoobj WHERE type = 3 AND r < 19 ORDER BY ra",
        )
        .unwrap();
        let cands = query_candidates(&c, &q, &CandidateConfig::default());
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        assert!(cands.contains(&Index::new(photo, vec![3])), "type");
        assert!(cands.contains(&Index::new(photo, vec![6])), "r");
        assert!(cands.contains(&Index::new(photo, vec![1])), "ra (order)");
        assert!(
            cands.contains(&Index::new(photo, vec![3, 6])),
            "eq+range multi-column"
        );
    }

    #[test]
    fn join_columns_become_candidates() {
        let c = sdss_catalog(0.01);
        let q = parse_query(
            &c.schema,
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid",
        )
        .unwrap();
        let cands = query_candidates(&c, &q, &CandidateConfig::default());
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let spec = c.schema.table_by_name("specobj").unwrap().id;
        assert!(cands.contains(&Index::new(photo, vec![0])));
        assert!(cands.contains(&Index::new(spec, vec![1])));
    }

    #[test]
    fn single_column_mode_has_no_multicolumn() {
        let c = sdss_catalog(0.01);
        let q = parse_query(
            &c.schema,
            "SELECT objid FROM photoobj WHERE type = 3 AND r < 19",
        )
        .unwrap();
        let cands = query_candidates(&c, &q, &CandidateConfig::single_column());
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|i| i.columns.len() == 1));
    }

    #[test]
    fn covering_candidates_respect_width_cap() {
        let c = sdss_catalog(0.01);
        let q = parse_query(
            &c.schema,
            "SELECT objid, ra, dec FROM photoobj WHERE type = 3 AND r < 19",
        )
        .unwrap();
        let cfg = CandidateConfig::default();
        let cands = query_candidates(&c, &q, &cfg);
        assert!(cands
            .iter()
            .all(|i| i.columns.len() <= cfg.max_covering_width));
        // Some covering candidate includes a projected column.
        assert!(cands.iter().any(|i| i.columns.contains(&1)));
    }

    #[test]
    fn workload_candidates_deduplicate() {
        let c = sdss_catalog(0.01);
        let w = sdss_workload(&c, 18, 5);
        let set = workload_candidates(&c, &w, &CandidateConfig::default());
        assert!(!set.is_empty());
        // No duplicates.
        for (i, a) in set.indexes.iter().enumerate() {
            for b in &set.indexes[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Every query has at least one relevant candidate.
        assert!(set.relevant.iter().all(|r| !r.is_empty()));
        // Relevance ids are in range.
        assert!(set
            .relevant
            .iter()
            .flatten()
            .all(|&id| id < set.indexes.len()));
    }
}
