//! The optimizer façade: full query optimization, what-if costing, join
//! control, and the INUM skeleton hooks.

use crate::access::{self, AccessContext};
use crate::join::{AbstractLeafProvider, AccessLeafProvider, JoinPlanner};
use crate::params::CostParams;
use crate::plan::{order_satisfies, Plan, PlanExpr, PlanNode};
use crate::selectivity;
use pgdesign_catalog::design::PhysicalDesign;
use pgdesign_catalog::Catalog;
use pgdesign_query::ast::{PredOp, Query, QueryColumn};
use serde::{Deserialize, Serialize};

/// The "what-if join component" (§3.1): enables or disables join methods
/// in the produced execution plans so a DBA can explore how the design
/// interacts with join strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinControl {
    /// Allow hash joins.
    pub hash: bool,
    /// Allow merge joins.
    pub merge: bool,
    /// Allow nested-loop joins (including parameterized index probes).
    pub nestloop: bool,
}

impl Default for JoinControl {
    fn default() -> Self {
        JoinControl {
            hash: true,
            merge: true,
            nestloop: true,
        }
    }
}

/// The INUM skeleton: the design-*independent* part of a plan's cost for a
/// fixed combination of interesting orders, plus that combination.
///
/// `cost(q, design) = internal_cost + Σ_slots access_cost(slot, order, design)`
#[derive(Debug, Clone, PartialEq)]
pub struct Skeleton {
    /// Join/sort/aggregation cost with all leaf accesses at zero cost.
    pub internal_cost: f64,
    /// The interesting order each slot's access must deliver
    /// (`None` = any order).
    pub slot_orders: Vec<Option<Vec<u16>>>,
}

/// The cost-based what-if optimizer.
#[derive(Debug, Clone, Default)]
pub struct Optimizer {
    /// Cost model constants.
    pub params: CostParams,
    /// Join-method control.
    pub control: JoinControl,
}

impl Optimizer {
    /// Optimizer with default PostgreSQL-flavoured parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Optimizer with explicit parameters.
    pub fn with_params(params: CostParams) -> Self {
        Optimizer {
            params,
            control: JoinControl::default(),
        }
    }

    /// Replace the join control (builder style).
    pub fn with_control(mut self, control: JoinControl) -> Self {
        self.control = control;
        self
    }

    /// Optimize `query` under `design` (base + hypothetical structures all
    /// included in `design`). This *is* the what-if call: the design is
    /// never materialized.
    pub fn optimize(&self, catalog: &Catalog, design: &PhysicalDesign, query: &Query) -> Plan {
        let ctx = AccessContext {
            catalog,
            design,
            params: &self.params,
            query,
        };
        let planner = JoinPlanner::new(ctx, self.control, &AccessLeafProvider);
        let variants = planner.plan();
        self.finish(&ctx, variants)
    }

    /// Estimated cost of `query` under `design`.
    pub fn cost(&self, catalog: &Catalog, design: &PhysicalDesign, query: &Query) -> f64 {
        let cost = self.optimize(catalog, design, query).cost;
        debug_assert!(
            cost.is_finite(),
            "optimizer produced a non-finite plan cost"
        );
        cost
    }

    /// Total weighted workload cost under a design.
    pub fn workload_cost(
        &self,
        catalog: &Catalog,
        design: &PhysicalDesign,
        workload: &pgdesign_query::Workload,
    ) -> f64 {
        workload
            .iter()
            .map(|(q, w)| w * self.cost(catalog, design, q))
            .sum()
    }

    /// Extract the INUM skeleton for a fixed interesting-order combination.
    ///
    /// Nested loops are excluded (their inner side's cost is design-
    /// dependent, violating the INUM invariant), mirroring the original
    /// INUM space; merge and hash joins are both considered.
    pub fn optimize_skeleton(
        &self,
        catalog: &Catalog,
        query: &Query,
        slot_orders: Vec<Option<Vec<u16>>>,
    ) -> Skeleton {
        self.optimize_skeletons(catalog, query, vec![slot_orders])
            .pop()
            .expect("one combination in, one skeleton out")
    }

    /// Extract skeletons for a whole batch of interesting-order
    /// combinations of one query, computing the design-independent
    /// cardinalities ([`crate::join::query_cardinalities`]) once instead of
    /// once per combination. This is the path the `pgdesign-inum` skeleton
    /// cache uses.
    pub fn optimize_skeletons(
        &self,
        catalog: &Catalog,
        query: &Query,
        combos: Vec<Vec<Option<Vec<u16>>>>,
    ) -> Vec<Skeleton> {
        let design = PhysicalDesign::empty();
        let ctx = AccessContext {
            catalog,
            design: &design,
            params: &self.params,
            query,
        };
        let (slot_rows, edge_sel) = crate::join::query_cardinalities(&ctx);
        let control = JoinControl {
            nestloop: false,
            ..self.control
        };
        combos
            .into_iter()
            .map(|slot_orders| {
                let provider = AbstractLeafProvider {
                    slot_orders: slot_orders.clone(),
                };
                let planner = JoinPlanner::with_cardinalities(
                    ctx,
                    control,
                    &provider,
                    slot_rows.clone(),
                    edge_sel.clone(),
                );
                let plan = self.finish(&ctx, planner.plan());
                Skeleton {
                    internal_cost: plan.cost,
                    slot_orders,
                }
            })
            .collect()
    }

    /// Best access path for one slot under a design, optionally required
    /// to deliver an order (columns of that slot). The INUM access oracle.
    pub fn best_access(
        &self,
        catalog: &Catalog,
        design: &PhysicalDesign,
        query: &Query,
        slot: u16,
        required_order: Option<&[u16]>,
    ) -> PlanExpr {
        let ctx = AccessContext {
            catalog,
            design,
            params: &self.params,
            query,
        };
        let order: Option<Vec<QueryColumn>> =
            required_order.map(|cols| cols.iter().map(|&c| QueryColumn::new(slot, c)).collect());
        access::best_access(&ctx, slot, order.as_deref(), &[])
    }

    /// Finish a set of join-output variants: aggregation, final ordering,
    /// limit; returns the cheapest complete plan.
    fn finish(&self, ctx: &AccessContext<'_>, variants: Vec<PlanExpr>) -> Plan {
        let q = ctx.query;
        let p = ctx.params;
        let eq_bound = equality_bound_columns(q);
        let n_aggs = q.aggregates.len().max(1) as f64;
        let mut best: Option<PlanExpr> = None;
        for v in variants {
            let mut finals: Vec<PlanExpr> = Vec::new();
            if !q.group_by.is_empty() {
                let groups = selectivity::group_count(ctx.catalog, q, v.rows);
                // Hash aggregate.
                finals.push(PlanExpr {
                    cost: v.cost
                        + v.rows * n_aggs * p.cpu_operator_cost
                        + groups * p.cpu_tuple_cost
                        + p.hash_build_cost(groups, v.width) * 0.5,
                    rows: groups,
                    width: v.width,
                    order: vec![],
                    node: PlanNode::Aggregate {
                        input: Box::new(v.clone()),
                        hash: true,
                    },
                });
                // Stream aggregate over ordered input (sort if needed).
                let ordered = if order_satisfies(&v.order, &q.group_by, &eq_bound) {
                    v.clone()
                } else {
                    PlanExpr {
                        cost: v.cost + p.sort_cost(v.rows, v.width),
                        rows: v.rows,
                        width: v.width,
                        order: q.group_by.clone(),
                        node: PlanNode::Sort {
                            input: Box::new(v.clone()),
                            keys: q.group_by.clone(),
                        },
                    }
                };
                finals.push(PlanExpr {
                    cost: ordered.cost
                        + ordered.rows * n_aggs * p.cpu_operator_cost
                        + groups * p.cpu_tuple_cost,
                    rows: groups,
                    width: ordered.width,
                    order: ordered.order.clone(),
                    node: PlanNode::Aggregate {
                        input: Box::new(ordered),
                        hash: false,
                    },
                });
            } else if !q.aggregates.is_empty() {
                // Scalar aggregation collapses to one row.
                finals.push(PlanExpr {
                    cost: v.cost + v.rows * n_aggs * p.cpu_operator_cost,
                    rows: 1.0,
                    width: 8.0 * n_aggs,
                    order: vec![],
                    node: PlanNode::Aggregate {
                        input: Box::new(v.clone()),
                        hash: false,
                    },
                });
            } else {
                finals.push(v);
            }

            for f in finals {
                let mut plan = f;
                // Final ORDER BY.
                if !q.order_by.is_empty() {
                    let keys: Vec<QueryColumn> = q.order_by.iter().map(|o| o.col).collect();
                    if !order_satisfies(&plan.order, &keys, &eq_bound) {
                        plan = PlanExpr {
                            cost: plan.cost + p.sort_cost(plan.rows, plan.width),
                            rows: plan.rows,
                            width: plan.width,
                            order: keys.clone(),
                            node: PlanNode::Sort {
                                input: Box::new(plan),
                                keys,
                            },
                        };
                    }
                }
                // LIMIT.
                if let Some(n) = q.limit {
                    let rows = plan.rows.min(n as f64);
                    plan = PlanExpr {
                        cost: plan.cost,
                        rows,
                        width: plan.width,
                        order: plan.order.clone(),
                        node: PlanNode::Limit {
                            input: Box::new(plan),
                            n,
                        },
                    };
                }
                if best.as_ref().is_none_or(|b| plan.cost < b.cost) {
                    best = Some(plan);
                }
            }
        }
        best.expect("at least one variant exists")
    }
}

/// All query columns bound by equality predicates (constants for order
/// satisfaction purposes).
pub fn equality_bound_columns(q: &Query) -> Vec<QueryColumn> {
    q.filters
        .iter()
        .filter(|f| matches!(f.op, PredOp::Cmp(pgdesign_query::ast::CmpOp::Eq, _)))
        .map(|f| f.col)
        .collect()
}

/// Interesting orders of one slot: orders that could change the plan's
/// internal cost — join columns, ORDER BY / GROUP BY columns on the slot.
/// Returns the list *excluding* the trivial `None`; INUM enumerates
/// `None ∪ these`.
pub fn interesting_slot_orders(q: &Query, slot: u16) -> Vec<Vec<u16>> {
    let mut out: Vec<Vec<u16>> = Vec::new();
    let mut push = |o: Vec<u16>| {
        if !o.is_empty() && !out.contains(&o) {
            out.push(o);
        }
    };
    for j in q.joins_on(slot) {
        if let Some(c) = j.column_on(slot) {
            push(vec![c]);
        }
    }
    let ob: Vec<u16> = q
        .order_by
        .iter()
        .filter(|o| o.col.slot == slot)
        .map(|o| o.col.column)
        .collect();
    if !ob.is_empty() && q.order_by.iter().all(|o| o.col.slot == slot) {
        push(ob);
    }
    if !q.group_by.is_empty() && q.group_by.iter().all(|g| g.slot == slot) {
        push(q.group_by.iter().map(|g| g.column).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::design::Index;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_query::parse_query;

    #[test]
    fn what_if_index_reduces_cost_without_materialization() {
        let c = sdss_catalog(0.05);
        let q = parse_query(&c.schema, "SELECT ra FROM photoobj WHERE objid = 12345").unwrap();
        let opt = Optimizer::new();
        let base = opt.cost(&c, &PhysicalDesign::empty(), &q);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let whatif = PhysicalDesign::with_indexes([Index::new(photo, vec![0])]);
        let tuned = opt.cost(&c, &whatif, &q);
        assert!(tuned < base / 100.0, "{tuned} vs {base}");
    }

    #[test]
    fn group_by_query_completes_with_aggregate_node() {
        let c = sdss_catalog(0.02);
        let q = parse_query(
            &c.schema,
            "SELECT type, count(*) FROM photoobj GROUP BY type",
        )
        .unwrap();
        let opt = Optimizer::new();
        let plan = opt.optimize(&c, &PhysicalDesign::empty(), &q);
        assert!(matches!(plan.node, PlanNode::Aggregate { .. }));
        assert!(plan.rows < 20.0, "few groups: {}", plan.rows);
    }

    #[test]
    fn order_by_adds_sort_unless_index_provides_it() {
        let c = sdss_catalog(0.02);
        let q = parse_query(
            &c.schema,
            "SELECT objid FROM photoobj WHERE r BETWEEN 13 AND 13.2 ORDER BY r",
        )
        .unwrap();
        let opt = Optimizer::new();
        let plain = opt.optimize(&c, &PhysicalDesign::empty(), &q);
        fn has_sort(p: &PlanExpr) -> bool {
            match &p.node {
                PlanNode::Sort { .. } => true,
                PlanNode::Aggregate { input, .. } | PlanNode::Limit { input, .. } => {
                    has_sort(input)
                }
                PlanNode::HashJoin { outer, inner }
                | PlanNode::MergeJoin { outer, inner, .. }
                | PlanNode::NestLoop { outer, inner } => has_sort(outer) || has_sort(inner),
                _ => false,
            }
        }
        assert!(has_sort(&plain));
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        // Covering (r, objid) index: the ordered index-only scan wins.
        // An index on r alone would lose to bitmap + sort here, as in
        // PostgreSQL, because heap fetches on an uncorrelated column
        // dominate the cost.
        let with_idx = PhysicalDesign::with_indexes([Index::new(photo, vec![6, 0])]);
        let tuned = opt.optimize(&c, &with_idx, &q);
        assert!(
            !has_sort(&tuned),
            "index on r delivers the order:\n{}",
            tuned.explain(&c.schema, &q)
        );
        assert!(tuned.cost < plain.cost);
    }

    #[test]
    fn limit_caps_rows() {
        let c = sdss_catalog(0.02);
        let q = parse_query(&c.schema, "SELECT objid FROM photoobj LIMIT 10").unwrap();
        let opt = Optimizer::new();
        let plan = opt.optimize(&c, &PhysicalDesign::empty(), &q);
        assert_eq!(plan.rows, 10.0);
    }

    #[test]
    fn workload_cost_sums_weights() {
        let c = sdss_catalog(0.01);
        let q = parse_query(&c.schema, "SELECT ra FROM photoobj WHERE type = 1").unwrap();
        let opt = Optimizer::new();
        let mut w = pgdesign_query::Workload::new();
        w.push(q.clone(), 1.0);
        w.push(q, 2.0);
        let d = PhysicalDesign::empty();
        let total = opt.workload_cost(&c, &d, &w);
        let single = opt.cost(&c, &d, w.query(0));
        assert!((total - 3.0 * single).abs() < 1e-6);
    }

    #[test]
    fn skeleton_internal_cost_is_leaf_free() {
        let c = sdss_catalog(0.02);
        let q = parse_query(
            &c.schema,
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid",
        )
        .unwrap();
        let opt = Optimizer::new();
        let sk = opt.optimize_skeleton(&c, &q, vec![None, None]);
        assert!(sk.internal_cost > 0.0);
        // With join-column orders fixed, the merge-join skeleton is
        // cheaper (sorts disappear from the internal cost).
        let sk_ordered = opt.optimize_skeleton(&c, &q, vec![Some(vec![0]), Some(vec![1])]);
        assert!(sk_ordered.internal_cost <= sk.internal_cost);
    }

    #[test]
    fn interesting_orders_cover_joins_and_clauses() {
        let c = sdss_catalog(0.01);
        let q = parse_query(
            &c.schema,
            "SELECT p.objid FROM photoobj p, specobj s \
             WHERE p.objid = s.bestobjid AND p.r < 19 ORDER BY p.ra",
        )
        .unwrap();
        let o0 = interesting_slot_orders(&q, 0);
        assert!(o0.contains(&vec![0]), "join col objid");
        assert!(o0.contains(&vec![1]), "order-by col ra");
        let o1 = interesting_slot_orders(&q, 1);
        assert_eq!(o1, vec![vec![1]], "join col bestobjid only");
    }

    #[test]
    fn join_control_is_respected_end_to_end() {
        let c = sdss_catalog(0.02);
        let q = parse_query(
            &c.schema,
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid",
        )
        .unwrap();
        let opt = Optimizer::new().with_control(JoinControl {
            hash: true,
            merge: false,
            nestloop: false,
        });
        let plan = opt.optimize(&c, &PhysicalDesign::empty(), &q);
        fn only_hash(p: &PlanExpr) -> bool {
            match &p.node {
                PlanNode::MergeJoin { .. } | PlanNode::NestLoop { .. } => false,
                PlanNode::HashJoin { outer, inner } => only_hash(outer) && only_hash(inner),
                PlanNode::Sort { input, .. }
                | PlanNode::Aggregate { input, .. }
                | PlanNode::Limit { input, .. } => only_hash(input),
                _ => true,
            }
        }
        assert!(only_hash(&plan));
    }

    #[test]
    fn explain_renders_tree() {
        let c = sdss_catalog(0.01);
        let q = parse_query(
            &c.schema,
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid",
        )
        .unwrap();
        let opt = Optimizer::new();
        let plan = opt.optimize(&c, &PhysicalDesign::empty(), &q);
        let text = plan.explain(&c.schema, &q);
        assert!(text.contains("photoobj"));
        assert!(text.contains("specobj"));
        assert!(text.contains("cost="));
    }
}
