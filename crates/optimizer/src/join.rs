//! Dynamic-programming join enumeration with interesting orders.
//!
//! A faithful miniature of System R / PostgreSQL join planning: bottom-up
//! DP over slot subsets, hash/merge/nested-loop methods, a Pareto set of
//! plans per subset keyed by delivered sort order, and design-independent
//! cardinalities (which is exactly the property INUM exploits).
//!
//! Leaves are supplied through [`LeafProvider`] so the same enumeration
//! serves two masters: normal optimization (leaves = costed access paths)
//! and INUM skeleton extraction (leaves = zero-cost abstract accesses that
//! deliver a fixed interesting-order combination).

use crate::access::{self, AccessContext};
use crate::optimizer::JoinControl;
use crate::plan::{order_satisfies, PlanExpr, PlanNode};
use crate::selectivity;
use pgdesign_query::ast::QueryColumn;

/// Supplies leaf (single-slot) plans to the join DP.
pub trait LeafProvider {
    /// Candidate plans for a slot (unordered and natively-ordered ones).
    fn leaves(&self, ctx: &AccessContext<'_>, slot: u16) -> Vec<PlanExpr>;

    /// Best plan for a slot that delivers `order` (may contain a Sort).
    fn ordered_leaf(
        &self,
        ctx: &AccessContext<'_>,
        slot: u16,
        order: &[QueryColumn],
    ) -> Option<PlanExpr>;

    /// A parameterized probe of `slot` with equality bindings on
    /// `eq_cols`, for use as a nested-loop inner. `None` disables NLJ.
    fn param_probe(&self, ctx: &AccessContext<'_>, slot: u16, eq_cols: &[u16]) -> Option<PlanExpr>;
}

/// The production leaf provider: real access paths under the design.
pub struct AccessLeafProvider;

impl LeafProvider for AccessLeafProvider {
    fn leaves(&self, ctx: &AccessContext<'_>, slot: u16) -> Vec<PlanExpr> {
        access::access_paths(ctx, slot, &[])
    }

    fn ordered_leaf(
        &self,
        ctx: &AccessContext<'_>,
        slot: u16,
        order: &[QueryColumn],
    ) -> Option<PlanExpr> {
        Some(access::best_access(ctx, slot, Some(order), &[]))
    }

    fn param_probe(&self, ctx: &AccessContext<'_>, slot: u16, eq_cols: &[u16]) -> Option<PlanExpr> {
        Some(access::best_access(ctx, slot, None, eq_cols))
    }
}

/// Maximum plans retained per subset.
const PARETO_CAP: usize = 6;
/// Rescan discount for repeated parameterized probes (cache warmth).
const RESCAN_FACTOR: f64 = 0.7;

/// Insert `plan` into a Pareto set pruned on (cost, delivered order).
fn pareto_insert(set: &mut Vec<PlanExpr>, plan: PlanExpr) {
    // Dominated: someone is no more expensive and delivers at least the
    // same order prefix.
    for p in set.iter() {
        if p.cost <= plan.cost && order_satisfies(&p.order, &plan.order, &[]) {
            return;
        }
    }
    set.retain(|p| !(plan.cost <= p.cost && order_satisfies(&plan.order, &p.order, &[])));
    set.push(plan);
    if set.len() > PARETO_CAP {
        set.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        set.truncate(PARETO_CAP);
    }
}

/// Join planner state.
pub struct JoinPlanner<'a, L: LeafProvider> {
    ctx: AccessContext<'a>,
    control: JoinControl,
    provider: &'a L,
    /// Per-slot output rows (after filters).
    slot_rows: Vec<f64>,
    /// Join edge selectivities, aligned with `query.joins`.
    edge_sel: Vec<f64>,
}

/// Design-independent cardinalities of a query: per-slot output rows and
/// join-edge selectivities. Computing these involves selectivity
/// estimation over the statistics, so callers that plan the same query
/// repeatedly (INUM builds one skeleton per interesting-order combination)
/// compute them once and hand them to
/// [`JoinPlanner::with_cardinalities`].
pub fn query_cardinalities(ctx: &AccessContext<'_>) -> (Vec<f64>, Vec<f64>) {
    let q = ctx.query;
    let slot_rows = (0..q.slot_count())
        .map(|s| selectivity::slot_rows(ctx.catalog, q, s))
        .collect();
    let edge_sel = q
        .joins
        .iter()
        .map(|j| selectivity::join_predicate_selectivity(ctx.catalog, q, j))
        .collect();
    (slot_rows, edge_sel)
}

impl<'a, L: LeafProvider> JoinPlanner<'a, L> {
    /// Create a planner for `ctx.query`.
    pub fn new(ctx: AccessContext<'a>, control: JoinControl, provider: &'a L) -> Self {
        let (slot_rows, edge_sel) = query_cardinalities(&ctx);
        Self::with_cardinalities(ctx, control, provider, slot_rows, edge_sel)
    }

    /// Create a planner with precomputed [`query_cardinalities`] (they are
    /// design-independent, so one computation serves every skeleton of a
    /// query).
    pub fn with_cardinalities(
        ctx: AccessContext<'a>,
        control: JoinControl,
        provider: &'a L,
        slot_rows: Vec<f64>,
        edge_sel: Vec<f64>,
    ) -> Self {
        JoinPlanner {
            ctx,
            control,
            provider,
            slot_rows,
            edge_sel,
        }
    }

    /// Design-independent cardinality of a slot subset.
    pub fn subset_rows(&self, mask: u32) -> f64 {
        let q = self.ctx.query;
        let mut rows = 1.0f64;
        for s in 0..q.slot_count() {
            if mask & (1 << s) != 0 {
                rows *= self.slot_rows[s as usize];
            }
        }
        for (i, j) in q.joins.iter().enumerate() {
            let l = 1u32 << j.left.slot;
            let r = 1u32 << j.right.slot;
            if mask & l != 0 && mask & r != 0 {
                rows *= self.edge_sel[i];
            }
        }
        rows.max(1.0)
    }

    /// Edges crossing between two disjoint masks.
    fn crossing_edges(&self, a: u32, b: u32) -> Vec<usize> {
        self.ctx
            .query
            .joins
            .iter()
            .enumerate()
            .filter(|(_, j)| {
                let l = 1u32 << j.left.slot;
                let r = 1u32 << j.right.slot;
                (a & l != 0 && b & r != 0) || (a & r != 0 && b & l != 0)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Run the DP and return the Pareto plans for the full slot set.
    pub fn plan(&self) -> Vec<PlanExpr> {
        let q = self.ctx.query;
        let n = q.slot_count() as usize;
        assert!((1..=16).contains(&n), "join DP supports 1..=16 slots");
        let full = (1u32 << n) - 1;
        let mut table: Vec<Vec<PlanExpr>> = vec![Vec::new(); (full + 1) as usize];

        // Leaves.
        for s in 0..n {
            let mask = 1u32 << s;
            let mut set = Vec::new();
            for leaf in self.provider.leaves(&self.ctx, s as u16) {
                pareto_insert(&mut set, leaf);
            }
            // Seed interesting orders: join columns of this slot, plus
            // top-level order/group columns, so merge joins and ordered
            // aggregation have ordered inputs available.
            let mut interesting: Vec<Vec<QueryColumn>> = Vec::new();
            for j in q.joins_on(s as u16) {
                if let Some(c) = j.column_on(s as u16) {
                    interesting.push(vec![QueryColumn::new(s as u16, c)]);
                }
            }
            for o in &q.order_by {
                if o.col.slot == s as u16 {
                    interesting.push(vec![o.col]);
                }
            }
            if q.group_by.iter().all(|g| g.slot == s as u16) && !q.group_by.is_empty() {
                interesting.push(q.group_by.clone());
            }
            for order in interesting {
                if let Some(p) = self.provider.ordered_leaf(&self.ctx, s as u16, &order) {
                    pareto_insert(&mut set, p);
                }
            }
            table[mask as usize] = set;
        }

        // Compose.
        for mask in 1..=full {
            if (mask & (mask - 1)) == 0 {
                continue; // single slot, already done
            }
            let mut set: Vec<PlanExpr> = Vec::new();
            let mut connected_split_found = false;
            // Enumerate proper submasks as the outer side.
            let mut a = (mask - 1) & mask;
            while a > 0 {
                let b = mask & !a;
                if !table[a as usize].is_empty() && !table[b as usize].is_empty() {
                    let edges = self.crossing_edges(a, b);
                    if !edges.is_empty() {
                        connected_split_found = true;
                        self.combine(&mut set, &table, a, b, &edges, mask);
                    }
                }
                a = (a - 1) & mask;
            }
            if !connected_split_found {
                // Disconnected query: permit cartesian products.
                let mut a = (mask - 1) & mask;
                while a > 0 {
                    let b = mask & !a;
                    if !table[a as usize].is_empty() && !table[b as usize].is_empty() {
                        self.cartesian(&mut set, &table, a, b, mask);
                    }
                    a = (a - 1) & mask;
                }
            }
            table[mask as usize] = set;
        }

        table[full as usize].clone()
    }

    /// Combine subsets `a` (outer) and `b` (inner) over `edges`.
    fn combine(
        &self,
        set: &mut Vec<PlanExpr>,
        table: &[Vec<PlanExpr>],
        a: u32,
        b: u32,
        edges: &[usize],
        mask: u32,
    ) {
        let q = self.ctx.query;
        let p = self.ctx.params;
        let out_rows = self.subset_rows(mask);

        // Hash join: probe = outer (any variant), build = cheapest inner.
        if self.control.hash {
            if let Some(inner) = cheapest(&table[b as usize]) {
                for outer in &table[a as usize] {
                    let cost = outer.cost
                        + inner.cost
                        + p.hash_build_cost(inner.rows, inner.width)
                        + outer.rows * p.cpu_operator_cost
                        + out_rows * p.cpu_tuple_cost;
                    pareto_insert(
                        set,
                        PlanExpr {
                            node: PlanNode::HashJoin {
                                outer: Box::new(outer.clone()),
                                inner: Box::new(inner.clone()),
                            },
                            cost,
                            rows: out_rows,
                            order: vec![],
                            width: outer.width + inner.width,
                        },
                    );
                }
            }
        }

        // Merge join on each crossing edge.
        if self.control.merge {
            for &e in edges {
                let j = &q.joins[e];
                let (ok, ik) = if a & (1 << j.left.slot) != 0 {
                    (j.left, j.right)
                } else {
                    (j.right, j.left)
                };
                let outer = self.ordered_variant(table, a, &[ok]);
                let inner = self.ordered_variant(table, b, &[ik]);
                if let (Some(outer), Some(inner)) = (outer, inner) {
                    let cost = outer.cost
                        + inner.cost
                        + (outer.rows + inner.rows) * p.cpu_operator_cost
                        + out_rows * p.cpu_tuple_cost;
                    let width = outer.width + inner.width;
                    pareto_insert(
                        set,
                        PlanExpr {
                            node: PlanNode::MergeJoin {
                                outer: Box::new(outer),
                                inner: Box::new(inner),
                                key: (ok, ik),
                            },
                            cost,
                            rows: out_rows,
                            order: vec![ok],
                            width,
                        },
                    );
                }
            }
        }

        // Parameterized nested loop: inner must be a single base slot.
        if self.control.nestloop && b.count_ones() == 1 {
            let inner_slot = b.trailing_zeros() as u16;
            let eq_cols: Vec<u16> = edges
                .iter()
                .filter_map(|&e| q.joins[e].column_on(inner_slot))
                .collect();
            if !eq_cols.is_empty() {
                if let Some(probe) = self.provider.param_probe(&self.ctx, inner_slot, &eq_cols) {
                    for outer in &table[a as usize] {
                        let probes = outer.rows.max(1.0);
                        let probe_cost = probe.cost * (1.0 + RESCAN_FACTOR * (probes - 1.0));
                        let cost = outer.cost + probe_cost + out_rows * p.cpu_tuple_cost;
                        pareto_insert(
                            set,
                            PlanExpr {
                                node: PlanNode::NestLoop {
                                    outer: Box::new(outer.clone()),
                                    inner: Box::new(probe.clone()),
                                },
                                cost,
                                rows: out_rows,
                                order: outer.order.clone(),
                                width: outer.width + probe.width,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Cartesian product via materialized nested loop (disconnected query
    /// graphs only).
    fn cartesian(
        &self,
        set: &mut Vec<PlanExpr>,
        table: &[Vec<PlanExpr>],
        a: u32,
        b: u32,
        mask: u32,
    ) {
        let p = self.ctx.params;
        let out_rows = self.subset_rows(mask);
        if let (Some(outer), Some(inner)) =
            (cheapest(&table[a as usize]), cheapest(&table[b as usize]))
        {
            let cost = outer.cost
                + inner.cost
                + outer.rows * inner.rows * p.cpu_operator_cost
                + out_rows * p.cpu_tuple_cost;
            pareto_insert(
                set,
                PlanExpr {
                    node: PlanNode::NestLoop {
                        outer: Box::new(outer.clone()),
                        inner: Box::new(inner.clone()),
                    },
                    cost,
                    rows: out_rows,
                    order: outer.order.clone(),
                    width: outer.width + inner.width,
                },
            );
        }
    }

    /// Best plan for subset `mask` delivering `order` — a native variant
    /// if one exists, else the cheapest plan wrapped in a Sort; for single
    /// slots, ask the provider (it may have an index delivering the order).
    fn ordered_variant(
        &self,
        table: &[Vec<PlanExpr>],
        mask: u32,
        order: &[QueryColumn],
    ) -> Option<PlanExpr> {
        if mask.count_ones() == 1 {
            let slot = mask.trailing_zeros() as u16;
            if let Some(leaf) = self.provider.ordered_leaf(&self.ctx, slot, order) {
                // The provider's answer competes with the Pareto set below.
                let from_set = self.sorted_from_set(&table[mask as usize], order);
                return match from_set {
                    Some(s) if s.cost < leaf.cost => Some(s),
                    _ => Some(leaf),
                };
            }
        }
        self.sorted_from_set(&table[mask as usize], order)
    }

    fn sorted_from_set(&self, set: &[PlanExpr], order: &[QueryColumn]) -> Option<PlanExpr> {
        let native = set
            .iter()
            .filter(|p| order_satisfies(&p.order, order, &[]))
            .min_by(|x, y| x.cost.total_cmp(&y.cost));
        if let Some(p) = native {
            return Some(p.clone());
        }
        let base = cheapest(set)?;
        let cost = base.cost + self.ctx.params.sort_cost(base.rows, base.width);
        Some(PlanExpr {
            cost,
            rows: base.rows,
            width: base.width,
            order: order.to_vec(),
            node: PlanNode::Sort {
                input: Box::new(base.clone()),
                keys: order.to_vec(),
            },
        })
    }
}

/// Cheapest plan in a set.
pub fn cheapest(set: &[PlanExpr]) -> Option<&PlanExpr> {
    set.iter().min_by(|x, y| x.cost.total_cmp(&y.cost))
}

/// An abstract leaf provider for INUM skeleton extraction: every slot is
/// accessed at zero cost, delivering exactly the interesting order fixed
/// for it, with design-independent cardinalities. Nested loops are
/// disabled (their inner cost is inherently design-dependent).
pub struct AbstractLeafProvider {
    /// One optional order per slot (columns of that slot).
    pub slot_orders: Vec<Option<Vec<u16>>>,
}

impl LeafProvider for AbstractLeafProvider {
    fn leaves(&self, ctx: &AccessContext<'_>, slot: u16) -> Vec<PlanExpr> {
        let rows = selectivity::slot_rows(ctx.catalog, ctx.query, slot);
        let tdef = ctx.catalog.schema.table(ctx.query.table_of(slot));
        let needed = if ctx.query.select_star {
            (0..tdef.width()).collect()
        } else {
            ctx.query.columns_used(slot)
        };
        let width = f64::from(tdef.byte_width_of(&needed)).max(8.0);
        let order: Vec<QueryColumn> = self.slot_orders[slot as usize]
            .as_deref()
            .unwrap_or(&[])
            .iter()
            .map(|&c| QueryColumn::new(slot, c))
            .collect();
        vec![PlanExpr {
            node: PlanNode::SeqScan {
                slot,
                filters: ctx.query.filters_on(slot).count(),
            },
            cost: 0.0,
            rows,
            order,
            width,
        }]
    }

    fn ordered_leaf(
        &self,
        ctx: &AccessContext<'_>,
        slot: u16,
        order: &[QueryColumn],
    ) -> Option<PlanExpr> {
        let base = self.leaves(ctx, slot).pop()?;
        if order_satisfies(&base.order, order, &[]) {
            return Some(base);
        }
        // Sorting on top of the abstract access is internal cost.
        let cost = base.cost + ctx.params.sort_cost(base.rows, base.width);
        Some(PlanExpr {
            cost,
            rows: base.rows,
            width: base.width,
            order: order.to_vec(),
            node: PlanNode::Sort {
                input: Box::new(base),
                keys: order.to_vec(),
            },
        })
    }

    fn param_probe(
        &self,
        _ctx: &AccessContext<'_>,
        _slot: u16,
        _eq_cols: &[u16],
    ) -> Option<PlanExpr> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CostParams;
    use pgdesign_catalog::design::{Index, PhysicalDesign};
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_catalog::Catalog;
    use pgdesign_query::parse_query;

    fn plan_best(catalog: &Catalog, design: &PhysicalDesign, sql: &str) -> PlanExpr {
        let q = parse_query(&catalog.schema, sql).unwrap();
        let params = CostParams::default();
        let ctx = AccessContext {
            catalog,
            design,
            params: &params,
            query: &q,
        };
        let planner = JoinPlanner::new(ctx, JoinControl::default(), &AccessLeafProvider);
        cheapest(&planner.plan()).unwrap().clone()
    }

    #[test]
    fn two_way_join_plans() {
        let c = sdss_catalog(0.02);
        let d = PhysicalDesign::empty();
        let plan = plan_best(
            &c,
            &d,
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid",
        );
        assert!(plan.cost > 0.0);
        assert!(matches!(
            plan.node,
            PlanNode::HashJoin { .. } | PlanNode::MergeJoin { .. } | PlanNode::NestLoop { .. }
        ));
    }

    #[test]
    fn index_on_join_column_enables_cheap_nlj() {
        let c = sdss_catalog(0.02);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let no_idx = PhysicalDesign::empty();
        let with_idx = PhysicalDesign::with_indexes([Index::new(photo, vec![0])]);
        // Selective filter on specobj makes few probes into photoobj.
        let sql = "SELECT p.ra FROM photoobj p, specobj s \
                   WHERE p.objid = s.bestobjid AND s.specobjid = 77";
        let base = plan_best(&c, &no_idx, sql);
        let tuned = plan_best(&c, &with_idx, sql);
        assert!(
            tuned.cost < base.cost / 10.0,
            "NLJ with index probe should dominate: {} vs {}",
            tuned.cost,
            base.cost
        );
        assert!(matches!(tuned.node, PlanNode::NestLoop { .. }));
    }

    #[test]
    fn three_way_join_plans() {
        let c = sdss_catalog(0.02);
        let d = PhysicalDesign::empty();
        let plan = plan_best(
            &c,
            &d,
            "SELECT p.objid FROM photoobj p, specobj s, field f \
             WHERE p.objid = s.bestobjid AND p.run = f.run AND f.quality = 1",
        );
        assert!(plan.cost.is_finite());
        // All three slots appear as leaves.
        let mut slots = Vec::new();
        collect_slots(&plan, &mut slots);
        slots.sort_unstable();
        assert_eq!(slots, vec![0, 1, 2]);
    }

    fn collect_slots(p: &PlanExpr, out: &mut Vec<u16>) {
        match &p.node {
            PlanNode::SeqScan { slot, .. }
            | PlanNode::FragmentScan { slot, .. }
            | PlanNode::IndexScan { slot, .. }
            | PlanNode::BitmapHeapScan { slot, .. } => out.push(*slot),
            PlanNode::Sort { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Limit { input, .. } => collect_slots(input, out),
            PlanNode::HashJoin { outer, inner }
            | PlanNode::MergeJoin { outer, inner, .. }
            | PlanNode::NestLoop { outer, inner } => {
                collect_slots(outer, out);
                collect_slots(inner, out);
            }
        }
    }

    #[test]
    fn join_control_disables_methods() {
        let c = sdss_catalog(0.02);
        let d = PhysicalDesign::empty();
        let q = parse_query(
            &c.schema,
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid",
        )
        .unwrap();
        let params = CostParams::default();
        let ctx = AccessContext {
            catalog: &c,
            design: &d,
            params: &params,
            query: &q,
        };
        let only_merge = JoinControl {
            hash: false,
            merge: true,
            nestloop: false,
        };
        let planner = JoinPlanner::new(ctx, only_merge, &AccessLeafProvider);
        let best = cheapest(&planner.plan()).unwrap().clone();
        assert!(
            matches!(best.node, PlanNode::MergeJoin { .. }),
            "only merge allowed, got {:?}",
            best.node
        );
    }

    #[test]
    fn cartesian_when_no_edges() {
        let c = sdss_catalog(0.005);
        let d = PhysicalDesign::empty();
        let plan = plan_best(
            &c,
            &d,
            "SELECT f.fieldid FROM field f, specobj s WHERE f.quality = 1 AND s.plate = 300",
        );
        assert!(matches!(plan.node, PlanNode::NestLoop { .. }));
        assert!(plan.rows >= 1.0);
    }

    #[test]
    fn subset_rows_multiplies_edge_selectivities() {
        let c = sdss_catalog(0.02);
        let d = PhysicalDesign::empty();
        let q = parse_query(
            &c.schema,
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid",
        )
        .unwrap();
        let params = CostParams::default();
        let ctx = AccessContext {
            catalog: &c,
            design: &d,
            params: &params,
            query: &q,
        };
        let planner = JoinPlanner::new(ctx, JoinControl::default(), &AccessLeafProvider);
        let r0 = planner.subset_rows(0b01);
        let r1 = planner.subset_rows(0b10);
        let rj = planner.subset_rows(0b11);
        // FK join: |join| ≈ |specobj| (every spec row matches one photo).
        assert!(rj < r0 * r1, "join must be selective");
        assert!(
            (rj / r1 - 1.0).abs() < 0.5,
            "FK join ≈ inner size: {rj} vs {r1}"
        );
    }

    #[test]
    fn abstract_provider_gives_zero_cost_leaves() {
        let c = sdss_catalog(0.02);
        let d = PhysicalDesign::empty();
        let q = parse_query(
            &c.schema,
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid",
        )
        .unwrap();
        let params = CostParams::default();
        let ctx = AccessContext {
            catalog: &c,
            design: &d,
            params: &params,
            query: &q,
        };
        let provider = AbstractLeafProvider {
            slot_orders: vec![None, None],
        };
        let planner = JoinPlanner::new(ctx, JoinControl::default(), &provider);
        let best = cheapest(&planner.plan()).unwrap().clone();
        assert_eq!(best.leaf_access_cost(), 0.0);
        assert!(best.cost > 0.0, "join work itself is not free");
    }

    #[test]
    fn abstract_provider_order_skips_sort() {
        let c = sdss_catalog(0.02);
        let d = PhysicalDesign::empty();
        let q = parse_query(
            &c.schema,
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid",
        )
        .unwrap();
        let params = CostParams::default();
        let ctx = AccessContext {
            catalog: &c,
            design: &d,
            params: &params,
            query: &q,
        };
        // Orders on the join columns make a sort-free merge join possible.
        let ordered = AbstractLeafProvider {
            slot_orders: vec![Some(vec![0]), Some(vec![1])],
        };
        let merge_only = JoinControl {
            hash: false,
            merge: true,
            nestloop: false,
        };
        let with_orders = {
            let planner = JoinPlanner::new(ctx, merge_only, &ordered);
            cheapest(&planner.plan()).unwrap().clone()
        };
        let unordered = AbstractLeafProvider {
            slot_orders: vec![None, None],
        };
        let without = {
            let planner = JoinPlanner::new(ctx, merge_only, &unordered);
            cheapest(&planner.plan()).unwrap().clone()
        };
        assert!(
            with_orders.cost < without.cost,
            "pre-ordered inputs avoid sorts: {} vs {}",
            with_orders.cost,
            without.cost
        );
    }
}
