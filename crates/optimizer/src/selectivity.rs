//! Predicate and join selectivity estimation.
//!
//! Follows PostgreSQL's clause-level estimators (`eqsel`, `scalarltsel`,
//! `eqjoinsel`) over the catalog statistics, with independence assumed
//! between conjuncts — the assumption every advisor in the paper also
//! inherits from the host optimizer.

use pgdesign_catalog::stats::ColumnStats;
use pgdesign_catalog::Catalog;
use pgdesign_query::ast::{CmpOp, FilterPredicate, PredOp, Query};

/// Default selectivity when nothing can be estimated (PostgreSQL's
/// `DEFAULT_EQ_SEL` neighbourhood).
pub const DEFAULT_SEL: f64 = 0.005;

/// Selectivity of a single filter predicate against column statistics.
pub fn predicate_selectivity(stats: &ColumnStats, op: &PredOp) -> f64 {
    let sel = match op {
        PredOp::Cmp(cmp, v) => {
            let Some(image) = v.numeric_image() else {
                // Comparison against NULL selects nothing.
                return 0.0;
            };
            match cmp {
                CmpOp::Eq => stats.eq_selectivity(image),
                CmpOp::Ne => (1.0 - stats.null_frac - stats.eq_selectivity(image)).max(0.0),
                CmpOp::Lt => {
                    stats.range_selectivity(None, Some(image))
                        - stats.eq_selectivity(image).min(0.5)
                }
                CmpOp::Le => stats.range_selectivity(None, Some(image)),
                CmpOp::Gt => {
                    (1.0 - stats.null_frac - stats.range_selectivity(None, Some(image))).max(0.0)
                }
                CmpOp::Ge => (1.0 - stats.null_frac - stats.range_selectivity(None, Some(image))
                    + stats.eq_selectivity(image))
                .max(0.0),
            }
        }
        PredOp::Between(lo, hi) => {
            match (lo.numeric_image(), hi.numeric_image()) {
                (Some(l), Some(h)) if l <= h => stats.range_selectivity(Some(l), Some(h)),
                (Some(_), Some(_)) => 0.0, // empty range
                _ => 0.0,
            }
        }
        PredOp::InList(vals) => {
            let mut s = 0.0;
            for v in vals {
                if let Some(image) = v.numeric_image() {
                    s += stats.eq_selectivity(image);
                }
            }
            s
        }
        PredOp::IsNull => stats.null_frac,
        PredOp::IsNotNull => 1.0 - stats.null_frac,
    };
    sel.clamp(0.0, 1.0)
}

/// Selectivity of one filter in the context of a query and catalog.
pub fn filter_selectivity(catalog: &Catalog, query: &Query, f: &FilterPredicate) -> f64 {
    let table = query.table_of(f.col.slot);
    let stats = catalog.table_stats(table).column(f.col.column);
    predicate_selectivity(stats, &f.op)
}

/// Combined selectivity of all filters on a slot (independence assumed),
/// clamped away from zero so cardinalities never vanish entirely.
pub fn slot_selectivity(catalog: &Catalog, query: &Query, slot: u16) -> f64 {
    let mut s = 1.0;
    for f in query.filters_on(slot) {
        s *= filter_selectivity(catalog, query, f);
    }
    s.max(1e-9)
}

/// Estimated output rows of a slot after its pushed-down filters.
pub fn slot_rows(catalog: &Catalog, query: &Query, slot: u16) -> f64 {
    let table = query.table_of(slot);
    let base = catalog.row_count(table) as f64;
    (base * slot_selectivity(catalog, query, slot)).max(1.0)
}

/// Equi-join selectivity between two columns: `1 / max(ndv_l, ndv_r)`
/// (PostgreSQL's `eqjoinsel` without MCV matching).
pub fn join_selectivity(l: &ColumnStats, r: &ColumnStats) -> f64 {
    let d = l.ndv.max(r.ndv).max(1.0);
    (1.0 / d).clamp(1e-12, 1.0)
}

/// Join selectivity for a specific join predicate of a query.
pub fn join_predicate_selectivity(
    catalog: &Catalog,
    query: &Query,
    j: &pgdesign_query::ast::JoinPredicate,
) -> f64 {
    let ls = catalog
        .table_stats(query.table_of(j.left.slot))
        .column(j.left.column);
    let rs = catalog
        .table_stats(query.table_of(j.right.slot))
        .column(j.right.column);
    join_selectivity(ls, rs)
}

/// Number of groups a GROUP BY produces: joint NDV of the grouping
/// columns, capped by input rows.
pub fn group_count(catalog: &Catalog, query: &Query, input_rows: f64) -> f64 {
    if query.group_by.is_empty() {
        return 1.0;
    }
    let mut ndv = 1.0f64;
    for g in &query.group_by {
        let stats = catalog.table_stats(query.table_of(g.slot)).column(g.column);
        ndv *= stats.ndv.max(1.0);
    }
    ndv.min(input_rows).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_catalog::types::Value;
    use pgdesign_query::parse_query;

    fn catalog() -> Catalog {
        sdss_catalog(0.01)
    }

    #[test]
    fn equality_on_key_is_tiny() {
        let c = catalog();
        let q = parse_query(&c.schema, "SELECT ra FROM photoobj WHERE objid = 5").unwrap();
        let s = filter_selectivity(&c, &q, &q.filters[0]);
        assert!(s < 1e-4, "key equality should be selective: {s}");
    }

    #[test]
    fn range_narrower_is_more_selective() {
        let c = catalog();
        let narrow = parse_query(
            &c.schema,
            "SELECT ra FROM photoobj WHERE ra BETWEEN 10 AND 20",
        )
        .unwrap();
        let wide = parse_query(
            &c.schema,
            "SELECT ra FROM photoobj WHERE ra BETWEEN 10 AND 200",
        )
        .unwrap();
        let sn = filter_selectivity(&c, &narrow, &narrow.filters[0]);
        let sw = filter_selectivity(&c, &wide, &wide.filters[0]);
        assert!(sn < sw);
        assert!(sw < 1.0);
    }

    #[test]
    fn lt_plus_ge_covers_domain() {
        let c = catalog();
        let q = parse_query(&c.schema, "SELECT ra FROM photoobj WHERE ra < 180").unwrap();
        let q2 = parse_query(&c.schema, "SELECT ra FROM photoobj WHERE ra >= 180").unwrap();
        let s1 = filter_selectivity(&c, &q, &q.filters[0]);
        let s2 = filter_selectivity(&c, &q2, &q2.filters[0]);
        assert!((s1 + s2 - 1.0).abs() < 0.05, "{s1} + {s2} should ≈ 1");
    }

    #[test]
    fn in_list_sums_equalities() {
        let c = catalog();
        let q1 = parse_query(&c.schema, "SELECT ra FROM photoobj WHERE type = 1").unwrap();
        let q3 = parse_query(&c.schema, "SELECT ra FROM photoobj WHERE type IN (1, 2, 3)").unwrap();
        let s1 = filter_selectivity(&c, &q1, &q1.filters[0]);
        let s3 = filter_selectivity(&c, &q3, &q3.filters[0]);
        assert!(s3 > s1);
    }

    #[test]
    fn conjunction_multiplies() {
        let c = catalog();
        let q = parse_query(
            &c.schema,
            "SELECT ra FROM photoobj WHERE ra BETWEEN 10 AND 20 AND type = 1",
        )
        .unwrap();
        let s_all = slot_selectivity(&c, &q, 0);
        let s_a = filter_selectivity(&c, &q, &q.filters[0]);
        let s_b = filter_selectivity(&c, &q, &q.filters[1]);
        assert!((s_all - s_a * s_b).abs() < 1e-12);
    }

    #[test]
    fn join_selectivity_uses_larger_ndv() {
        let c = catalog();
        let q = parse_query(
            &c.schema,
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid",
        )
        .unwrap();
        let s = join_predicate_selectivity(&c, &q, &q.joins[0]);
        // objid NDV ≈ 100k (scale 0.01 → photoobj 100k rows).
        assert!(s <= 1.0 / 50_000.0, "join sel too high: {s}");
    }

    #[test]
    fn group_count_capped_by_rows() {
        let c = catalog();
        let q = parse_query(
            &c.schema,
            "SELECT type, count(*) FROM photoobj GROUP BY type",
        )
        .unwrap();
        let g = group_count(&c, &q, 1e6);
        assert!(g <= 10.0, "type has few distinct values: {g}");
        let g_small = group_count(&c, &q, 2.0);
        assert!(g_small <= 2.0);
    }

    #[test]
    fn null_comparison_selects_nothing() {
        let c = catalog();
        let stats = c.column_stats(c.schema.resolve("photoobj", "ra").unwrap());
        assert_eq!(
            predicate_selectivity(stats, &PredOp::Cmp(CmpOp::Eq, Value::Null)),
            0.0
        );
    }

    #[test]
    fn empty_between_selects_nothing() {
        let c = catalog();
        let stats = c.column_stats(c.schema.resolve("photoobj", "ra").unwrap());
        let s = predicate_selectivity(
            stats,
            &PredOp::Between(Value::Float(50.0), Value::Float(10.0)),
        );
        assert_eq!(s, 0.0);
    }

    #[test]
    fn selectivities_clamped_to_unit() {
        let c = catalog();
        let stats = c.column_stats(c.schema.resolve("photoobj", "type").unwrap());
        let many: Vec<Value> = (0..100).map(Value::Int).collect();
        let s = predicate_selectivity(stats, &PredOp::InList(many));
        assert!(s <= 1.0);
    }
}
