//! Index and partition maintenance costs under write activity.
//!
//! The advisors in the original demo tune read workloads; every index they
//! propose is free to keep. Real deployments pay for indexes on every
//! INSERT and UPDATE, which is why production advisors take a write
//! profile into account. This module prices that: given per-table write
//! rates (expressed per workload execution period, the same unit as query
//! weights), it costs the upkeep of each physical structure. CoPhy folds
//! these constants into its ILP objective (an index's `x_i` coefficient),
//! so heavily-written tables naturally repel marginal indexes.

use crate::params::CostParams;
use pgdesign_catalog::design::{Index, PhysicalDesign};
use pgdesign_catalog::schema::TableId;
use pgdesign_catalog::sizing;
use pgdesign_catalog::Catalog;
use std::collections::HashMap;

/// Write activity on one table per workload period.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableWrites {
    /// Rows inserted.
    pub inserts: f64,
    /// Rows updated.
    pub updates: f64,
    /// Columns the updates touch (an index is only maintained by an update
    /// when a key column changes). Empty means "unknown: assume all".
    pub updated_columns: Vec<u16>,
}

impl TableWrites {
    /// True if updates may modify any of the given index key columns.
    fn updates_touch(&self, key: &[u16]) -> bool {
        self.updated_columns.is_empty() || key.iter().any(|c| self.updated_columns.contains(c))
    }
}

/// Per-table write rates for a workload period.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WriteProfile {
    /// Write activity keyed by table.
    pub per_table: HashMap<TableId, TableWrites>,
}

impl WriteProfile {
    /// Empty profile: a read-only workload.
    pub fn read_only() -> Self {
        Self::default()
    }

    /// Builder-style insert registration.
    pub fn with_inserts(mut self, table: TableId, rows: f64) -> Self {
        self.per_table.entry(table).or_default().inserts += rows;
        self
    }

    /// Builder-style update registration.
    pub fn with_updates(mut self, table: TableId, rows: f64, columns: Vec<u16>) -> Self {
        let w = self.per_table.entry(table).or_default();
        w.updates += rows;
        for c in columns {
            if !w.updated_columns.contains(&c) {
                w.updated_columns.push(c);
            }
        }
        self
    }

    /// True when no writes are registered.
    pub fn is_read_only(&self) -> bool {
        self.per_table
            .values()
            .all(|w| w.inserts == 0.0 && w.updates == 0.0)
    }
}

/// Cost of one B-tree entry insertion: descent plus leaf modification,
/// with an amortized share of page splits.
fn btree_insert_cost(params: &CostParams, catalog: &Catalog, index: &Index) -> f64 {
    let stats = catalog.table_stats(index.table);
    let height = index.height(&catalog.schema, stats) as f64;
    let descent = height * params.random_page_cost * 0.25 + 30.0 * params.cpu_operator_cost;
    // One leaf page dirtied per insert (write-back amortized), split share
    // ~1/entries-per-page.
    let key_width = index.key_width(&catalog.schema);
    let entry = sizing::maxalign(u64::from(key_width)) + sizing::BTREE_ENTRY_OVERHEAD;
    let per_page = ((sizing::PAGE_SIZE - sizing::PAGE_HEADER) as f64 * sizing::BTREE_FILL_FACTOR
        / entry as f64)
        .max(2.0);
    let split_share = params.seq_page_cost / per_page;
    descent + params.cpu_index_tuple_cost + params.seq_page_cost * 0.5 + split_share
}

/// Maintenance cost of one index for one workload period.
pub fn index_maintenance_cost(
    params: &CostParams,
    catalog: &Catalog,
    index: &Index,
    profile: &WriteProfile,
) -> f64 {
    let Some(w) = profile.per_table.get(&index.table) else {
        return 0.0;
    };
    let per_insert = btree_insert_cost(params, catalog, index);
    let mut cost = w.inserts * per_insert;
    if w.updates > 0.0 && w.updates_touch(&index.columns) {
        // A key-changing update is a delete + insert.
        cost += w.updates * 2.0 * per_insert;
    }
    cost
}

/// Maintenance cost of a whole design (indexes + the extra heap writes a
/// vertical partitioning causes: every insert touches every fragment).
pub fn design_maintenance_cost(
    params: &CostParams,
    catalog: &Catalog,
    design: &PhysicalDesign,
    profile: &WriteProfile,
) -> f64 {
    let mut total = 0.0;
    for idx in design.indexes() {
        total += index_maintenance_cost(params, catalog, idx, profile);
    }
    for vp in design.verticals() {
        if let Some(w) = profile.per_table.get(&vp.table) {
            let extra_fragments = vp.groups.len().saturating_sub(1) as f64;
            total +=
                w.inserts * extra_fragments * (params.cpu_tuple_cost + params.seq_page_cost * 0.1);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::design::VerticalPartitioning;
    use pgdesign_catalog::samples::sdss_catalog;

    fn setup() -> (Catalog, CostParams, TableId) {
        let c = sdss_catalog(0.01);
        let t = c.schema.table_by_name("photoobj").unwrap().id;
        (c, CostParams::default(), t)
    }

    #[test]
    fn read_only_profile_is_free() {
        let (c, p, t) = setup();
        let idx = Index::new(t, vec![0]);
        let profile = WriteProfile::read_only();
        assert!(profile.is_read_only());
        assert_eq!(index_maintenance_cost(&p, &c, &idx, &profile), 0.0);
    }

    #[test]
    fn inserts_charge_every_index_on_the_table() {
        let (c, p, t) = setup();
        let idx = Index::new(t, vec![0]);
        let profile = WriteProfile::read_only().with_inserts(t, 1000.0);
        let cost = index_maintenance_cost(&p, &c, &idx, &profile);
        assert!(cost > 0.0);
        // Linear in insert rate.
        let double = WriteProfile::read_only().with_inserts(t, 2000.0);
        let cost2 = index_maintenance_cost(&p, &c, &idx, &double);
        assert!((cost2 / cost - 2.0).abs() < 1e-9);
    }

    #[test]
    fn updates_only_charge_indexes_on_touched_columns() {
        let (c, p, t) = setup();
        let idx_on_ra = Index::new(t, vec![1]);
        let idx_on_r = Index::new(t, vec![6]);
        let profile = WriteProfile::read_only().with_updates(t, 500.0, vec![1]);
        let touched = index_maintenance_cost(&p, &c, &idx_on_ra, &profile);
        let untouched = index_maintenance_cost(&p, &c, &idx_on_r, &profile);
        assert!(touched > 0.0);
        assert_eq!(untouched, 0.0);
    }

    #[test]
    fn unknown_update_columns_charge_conservatively() {
        let (c, p, t) = setup();
        let idx = Index::new(t, vec![6]);
        let mut profile = WriteProfile::read_only();
        profile.per_table.insert(
            t,
            TableWrites {
                inserts: 0.0,
                updates: 100.0,
                updated_columns: vec![],
            },
        );
        assert!(index_maintenance_cost(&p, &c, &idx, &profile) > 0.0);
    }

    #[test]
    fn design_cost_sums_indexes_and_fragments() {
        let (c, p, t) = setup();
        let profile = WriteProfile::read_only().with_inserts(t, 1000.0);
        let mut design =
            PhysicalDesign::with_indexes([Index::new(t, vec![0]), Index::new(t, vec![1, 2])]);
        let idx_only = design_maintenance_cost(&p, &c, &design, &profile);
        design.set_vertical(VerticalPartitioning::new(
            t,
            vec![vec![0, 1, 2], (3..16).collect()],
        ));
        let with_vp = design_maintenance_cost(&p, &c, &design, &profile);
        assert!(idx_only > 0.0);
        assert!(with_vp > idx_only, "fragmented inserts cost extra");
    }

    #[test]
    fn wider_keys_cost_more_to_maintain() {
        let (c, p, t) = setup();
        let profile = WriteProfile::read_only().with_inserts(t, 1000.0);
        let narrow = Index::new(t, vec![3]);
        let wide = Index::new(t, vec![0, 1, 2, 4, 5]);
        assert!(
            index_maintenance_cost(&p, &c, &wide, &profile)
                >= index_maintenance_cost(&p, &c, &narrow, &profile)
        );
    }
}
