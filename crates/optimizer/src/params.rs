//! Cost model parameters, PostgreSQL-flavoured.
//!
//! The defaults mirror `postgresql.conf` defaults so cost magnitudes are
//! recognisable to anyone who has read `EXPLAIN` output. The advisors only
//! depend on cost *orderings*, so the exact values matter less than their
//! ratios (random/sequential I/O being the important one).

use serde::{Deserialize, Serialize};

/// Tunable constants of the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Cost of a sequentially-fetched page (`seq_page_cost`).
    pub seq_page_cost: f64,
    /// Cost of a randomly-fetched page (`random_page_cost`).
    pub random_page_cost: f64,
    /// CPU cost of processing one tuple (`cpu_tuple_cost`).
    pub cpu_tuple_cost: f64,
    /// CPU cost of processing one index entry (`cpu_index_tuple_cost`).
    pub cpu_index_tuple_cost: f64,
    /// CPU cost of one operator/function evaluation (`cpu_operator_cost`).
    pub cpu_operator_cost: f64,
    /// Pages assumed cached (`effective_cache_size`, in pages). Dampens
    /// repeated random fetches in nested-loop inner sides.
    pub effective_cache_pages: u64,
    /// Sort/hash working memory in bytes (`work_mem`).
    pub work_mem_bytes: u64,
    /// Fraction of heap fetches an index-only scan still performs
    /// (1 − all-visible fraction).
    pub index_only_heap_fetch_frac: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_index_tuple_cost: 0.005,
            cpu_operator_cost: 0.0025,
            effective_cache_pages: 524_288, // 4 GiB of 8 KiB pages
            work_mem_bytes: 64 * 1024 * 1024,
            index_only_heap_fetch_frac: 0.1,
        }
    }
}

impl CostParams {
    /// Cost of sorting `rows` tuples of `width` bytes: comparison CPU plus
    /// external-merge I/O when the input exceeds `work_mem`.
    pub fn sort_cost(&self, rows: f64, width: f64) -> f64 {
        if rows <= 1.0 {
            return self.cpu_operator_cost;
        }
        let cmp = 2.0 * self.cpu_operator_cost * rows * rows.log2().max(1.0);
        let bytes = rows * width.max(8.0);
        if bytes <= self.work_mem_bytes as f64 {
            cmp
        } else {
            // External sort: read + write each page ~log_merge passes ≈ 2.
            let pages = bytes / crate::params::PAGE_BYTES;
            cmp + 2.0 * 2.0 * pages * self.seq_page_cost
        }
    }

    /// Cost of building a hash table over `rows` tuples of `width` bytes.
    pub fn hash_build_cost(&self, rows: f64, width: f64) -> f64 {
        let cpu = rows * (self.cpu_operator_cost + self.cpu_tuple_cost);
        let bytes = rows * width.max(8.0);
        if bytes <= self.work_mem_bytes as f64 {
            cpu
        } else {
            // Batched hash join spills both sides once.
            let pages = bytes / crate::params::PAGE_BYTES;
            cpu + 2.0 * pages * self.seq_page_cost
        }
    }

    /// Dampen `pages` of random fetches by the cache: fetches beyond the
    /// cache size pay full random cost, the rest an amortised cost.
    pub fn cached_random_page_cost(&self, pages_fetched: f64, relation_pages: f64) -> f64 {
        let cache = self.effective_cache_pages as f64;
        if relation_pages <= cache {
            // Relation fits in cache: first touch random, re-touches cheap.
            let distinct = pages_fetched.min(relation_pages);
            let repeats = (pages_fetched - distinct).max(0.0);
            distinct * self.random_page_cost + repeats * self.seq_page_cost * 0.1
        } else {
            pages_fetched * self.random_page_cost
        }
    }
}

/// Bytes per page, mirrored from the catalog size model.
pub const PAGE_BYTES: f64 = pgdesign_catalog::sizing::PAGE_SIZE as f64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_postgres() {
        let p = CostParams::default();
        assert_eq!(p.seq_page_cost, 1.0);
        assert_eq!(p.random_page_cost, 4.0);
        assert_eq!(p.cpu_tuple_cost, 0.01);
    }

    #[test]
    fn sort_cost_is_superlinear() {
        let p = CostParams::default();
        let small = p.sort_cost(1_000.0, 16.0);
        let big = p.sort_cost(1_000_000.0, 16.0);
        assert!(big > 1000.0 * small * 0.9, "n log n growth expected");
    }

    #[test]
    fn external_sort_costs_more_than_memory_sort() {
        let p = CostParams {
            work_mem_bytes: 1024,
            ..Default::default()
        };
        let internal = CostParams::default().sort_cost(100_000.0, 100.0);
        let external = p.sort_cost(100_000.0, 100.0);
        assert!(external > internal);
    }

    #[test]
    fn hash_spill_penalised() {
        let tight = CostParams {
            work_mem_bytes: 4096,
            ..Default::default()
        };
        let roomy = CostParams::default();
        assert!(
            tight.hash_build_cost(1_000_000.0, 64.0) > roomy.hash_build_cost(1_000_000.0, 64.0)
        );
    }

    #[test]
    fn cache_dampens_repeat_fetches() {
        let p = CostParams::default();
        // 10k fetches over a 100-page relation: 100 random + 9900 cheap.
        let damped = p.cached_random_page_cost(10_000.0, 100.0);
        assert!(damped < 10_000.0 * p.random_page_cost / 2.0);
        // Relation bigger than cache: no discount.
        let full = p.cached_random_page_cost(10_000.0, 1e9);
        assert_eq!(full, 10_000.0 * p.random_page_cost);
    }

    #[test]
    fn sort_of_one_row_is_cheap() {
        let p = CostParams::default();
        assert!(p.sort_cost(1.0, 1000.0) <= p.cpu_operator_cost);
    }
}
