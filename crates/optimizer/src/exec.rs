//! A reference executor over generated data.
//!
//! The designer never needs to execute queries — every advisor works from
//! estimates. But an estimator nobody can check is how demo-grade tools
//! stay demo-grade. This module actually runs the supported query class
//! (filter → equi-join → group/aggregate → order → limit) against
//! [`pgdesign_catalog::datagen::TableData`] samples, giving the test suite
//! ground truth to hold the selectivity model against: estimated
//! cardinalities must track actual row counts on data the statistics were
//! computed from.
//!
//! The implementation favours clarity over speed (hash joins and plain
//! sorts over 2k-row samples); it is a measuring stick, not an engine.

use pgdesign_catalog::datagen::TableData;
use pgdesign_catalog::types::Value;
use pgdesign_query::ast::{Aggregate, CmpOp, PredOp, Query};
use std::collections::HashMap;
use std::fmt;

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// No data supplied for a slot.
    MissingData(u16),
    /// Data column count does not match the referenced ordinals.
    ColumnOutOfRange {
        /// The slot involved.
        slot: u16,
        /// The offending ordinal.
        column: u16,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingData(s) => write!(f, "no data for slot {s}"),
            ExecError::ColumnOutOfRange { slot, column } => {
                write!(f, "column {column} out of range for slot {slot}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// A materialized result set.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output rows; the column layout is the query's projection followed
    /// by its aggregates (for grouped queries: group columns then
    /// aggregates).
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of output rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Evaluate one filter predicate against a value.
pub fn eval_predicate(op: &PredOp, v: &Value) -> bool {
    match op {
        PredOp::Cmp(cmp, lit) => match v.sql_cmp(lit) {
            None => false,
            Some(ord) => match cmp {
                CmpOp::Eq => ord.is_eq(),
                CmpOp::Ne => ord.is_ne(),
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => ord.is_ge(),
            },
        },
        PredOp::Between(lo, hi) => {
            matches!(v.sql_cmp(lo), Some(o) if o.is_ge())
                && matches!(v.sql_cmp(hi), Some(o) if o.is_le())
        }
        PredOp::InList(vals) => vals.iter().any(|lit| v.sql_eq(lit)),
        PredOp::IsNull => v.is_null(),
        PredOp::IsNotNull => !v.is_null(),
    }
}

/// Row indices of `data` surviving the query's filters on `slot`.
fn filtered_rows(data: &TableData, query: &Query, slot: u16) -> Result<Vec<usize>, ExecError> {
    let mut alive: Vec<usize> = (0..data.rows()).collect();
    for f in query.filters_on(slot) {
        let col = data
            .columns
            .get(f.col.column as usize)
            .ok_or(ExecError::ColumnOutOfRange {
                slot,
                column: f.col.column,
            })?;
        alive.retain(|&r| eval_predicate(&f.op, &col[r]));
    }
    Ok(alive)
}

/// Join key usable in a hash map (NULL keys never match, mirroring SQL).
fn join_key(v: &Value) -> Option<u64> {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    if v.is_null() {
        return None;
    }
    let mut h = DefaultHasher::new();
    // Numeric image keeps Int(2) == Float(2.0) consistent with sql_eq.
    v.numeric_image()?.to_bits().hash(&mut h);
    Some(h.finish())
}

/// Execute `query` against per-slot data samples.
///
/// `data[slot]` must hold the sample for the table behind that slot (the
/// same `TableData` may back several slots of a self-join).
pub fn execute(data: &[&TableData], query: &Query) -> Result<ResultSet, ExecError> {
    let n = query.slot_count() as usize;
    if data.len() < n {
        return Err(ExecError::MissingData(data.len() as u16));
    }

    // Tuples are vectors of per-slot row indices; grow by folding slots in
    // with hash joins (or cartesian products when no edge applies).
    let mut joined: Vec<Vec<usize>> = filtered_rows(data[0], query, 0)?
        .into_iter()
        .map(|r| vec![r])
        .collect();
    let mut bound: Vec<u16> = vec![0];

    while bound.len() < n {
        // Pick the next slot with a join edge into the bound set, else the
        // lowest unbound slot (cartesian).
        let next = (0..query.slot_count())
            .filter(|s| !bound.contains(s))
            .max_by_key(|&s| {
                query
                    .joins_on(s)
                    .filter(|j| j.other_side(s).is_some_and(|o| bound.contains(&o.slot)))
                    .count()
            })
            .expect("unbound slot exists");
        let right_rows = filtered_rows(data[next as usize], query, next)?;

        // Applicable equi-join edges between `next` and the bound set.
        let edges: Vec<(u16, u16, u16)> = query
            .joins_on(next)
            .filter_map(|j| {
                let mine = j.column_on(next)?;
                let other = j.other_side(next)?;
                bound
                    .contains(&other.slot)
                    .then_some((mine, other.slot, other.column))
            })
            .collect();

        let mut out: Vec<Vec<usize>> = Vec::new();
        if edges.is_empty() {
            for t in &joined {
                for &r in &right_rows {
                    let mut nt = t.clone();
                    nt.push(r);
                    out.push(nt);
                }
            }
        } else {
            // Hash the right side on the first edge, verify the rest.
            let (rcol, lslot, lcol) = edges[0];
            let rdata = &data[next as usize].columns[rcol as usize];
            let mut table: HashMap<u64, Vec<usize>> = HashMap::new();
            for &r in &right_rows {
                if let Some(k) = join_key(&rdata[r]) {
                    table.entry(k).or_default().push(r);
                }
            }
            let lpos = bound.iter().position(|&s| s == lslot).expect("bound");
            for t in &joined {
                let lval = &data[lslot as usize].columns[lcol as usize][t[lpos]];
                let Some(k) = join_key(lval) else { continue };
                let Some(matches) = table.get(&k) else {
                    continue;
                };
                'cand: for &r in matches {
                    // Verify all edges (incl. the hashed one: hash collisions).
                    for &(mc, os, oc) in &edges {
                        let op = bound.iter().position(|&s| s == os).expect("bound");
                        let left = &data[os as usize].columns[oc as usize][t[op]];
                        let right = &data[next as usize].columns[mc as usize][r];
                        if !left.sql_eq(right) {
                            continue 'cand;
                        }
                    }
                    let mut nt = t.clone();
                    nt.push(r);
                    out.push(nt);
                }
            }
        }
        joined = out;
        bound.push(next);
    }

    // Position of each slot in the tuple layout.
    let pos_of = |slot: u16| bound.iter().position(|&s| s == slot).expect("bound");
    let fetch = |t: &[usize], slot: u16, col: u16| -> Value {
        data[slot as usize].columns[col as usize][t[pos_of(slot)]].clone()
    };

    let mut rows: Vec<Vec<Value>>;
    if !query.group_by.is_empty() || !query.aggregates.is_empty() {
        // Group tuples by the group-by key (empty key = one global group).
        let mut groups: HashMap<String, (Vec<Value>, Vec<Vec<usize>>)> = HashMap::new();
        for t in &joined {
            let key_vals: Vec<Value> = query
                .group_by
                .iter()
                .map(|g| fetch(t, g.slot, g.column))
                .collect();
            let key = format!("{key_vals:?}");
            groups
                .entry(key)
                .or_insert_with(|| (key_vals, Vec::new()))
                .1
                .push(t.clone());
        }
        if groups.is_empty() && query.group_by.is_empty() {
            groups.insert(String::from("[]"), (Vec::new(), Vec::new()));
        }
        rows = Vec::with_capacity(groups.len());
        for (_, (key_vals, members)) in groups {
            let mut row = key_vals;
            for agg in &query.aggregates {
                row.push(eval_aggregate(agg, &members, &fetch));
            }
            rows.push(row);
        }
        // Deterministic order for grouped output.
        rows.sort();
    } else {
        rows = joined
            .iter()
            .map(|t| {
                if query.select_star {
                    let mut row = Vec::new();
                    for slot in 0..query.slot_count() {
                        for col in 0..data[slot as usize].columns.len() as u16 {
                            row.push(fetch(t, slot, col));
                        }
                    }
                    row
                } else {
                    query
                        .projection
                        .iter()
                        .map(|p| fetch(t, p.slot, p.column))
                        .collect()
                }
            })
            .collect();
        // ORDER BY.
        if !query.order_by.is_empty() {
            let keys: Vec<(usize, bool)> = query
                .order_by
                .iter()
                .filter_map(|o| {
                    query
                        .projection
                        .iter()
                        .position(|p| *p == o.col)
                        .map(|i| (i, o.desc))
                })
                .collect();
            rows.sort_by(|a, b| {
                for &(i, desc) in &keys {
                    let ord = a[i].cmp(&b[i]);
                    if !ord.is_eq() {
                        return if desc { ord.reverse() } else { ord };
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
    }

    if let Some(limit) = query.limit {
        rows.truncate(limit as usize);
    }
    Ok(ResultSet { rows })
}

fn eval_aggregate(
    agg: &Aggregate,
    members: &[Vec<usize>],
    fetch: &impl Fn(&[usize], u16, u16) -> Value,
) -> Value {
    let values = |c: pgdesign_query::ast::QueryColumn| -> Vec<f64> {
        members
            .iter()
            .filter_map(|t| fetch(t, c.slot, c.column).numeric_image())
            .collect()
    };
    match agg {
        Aggregate::CountStar => Value::Int(members.len() as i64),
        Aggregate::Count(c) => Value::Int(values(*c).len() as i64),
        Aggregate::Sum(c) => Value::Float(values(*c).iter().sum()),
        Aggregate::Avg(c) => {
            let v = values(*c);
            if v.is_empty() {
                Value::Null
            } else {
                Value::Float(v.iter().sum::<f64>() / v.len() as f64)
            }
        }
        Aggregate::Min(c) => values(*c)
            .into_iter()
            .min_by(f64::total_cmp)
            .map_or(Value::Null, Value::Float),
        Aggregate::Max(c) => values(*c)
            .into_iter()
            .max_by(f64::total_cmp)
            .map_or(Value::Null, Value::Float),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selectivity;
    use pgdesign_catalog::datagen::{analyze, generate, ColumnGen};
    use pgdesign_catalog::schema::SchemaBuilder;
    use pgdesign_catalog::types::DataType;
    use pgdesign_catalog::Catalog;
    use pgdesign_query::parse_query;

    /// Catalog + retained data for a two-table schema.
    fn setup(rows: u64) -> (Catalog, TableData, TableData) {
        let schema = SchemaBuilder::new()
            .table("t")
            .column("id", DataType::BigInt)
            .column("x", DataType::Int)
            .column("y", DataType::Float)
            .column("cat", DataType::Int)
            .table("u")
            .column("tid", DataType::BigInt)
            .column("z", DataType::Float)
            .build()
            .unwrap();
        let t_data = generate(
            &[
                ColumnGen::Sequential,
                ColumnGen::UniformInt { lo: 0, hi: 99 },
                ColumnGen::UniformFloat { lo: 0.0, hi: 1.0 },
                ColumnGen::Zipf { n: 5, s: 0.7 },
            ],
            rows,
            11,
        );
        let u_data = generate(
            &[
                ColumnGen::ForeignKey { parent_rows: rows },
                ColumnGen::UniformFloat { lo: 0.0, hi: 10.0 },
            ],
            rows / 2,
            12,
        );
        let stats_t = analyze(&t_data, rows);
        let stats_u = analyze(&u_data, rows / 2);
        (Catalog::new(schema, vec![stats_t, stats_u]), t_data, u_data)
    }

    #[test]
    fn filters_and_projection() {
        let (c, t, _) = setup(1000);
        let q = parse_query(&c.schema, "SELECT id FROM t WHERE x < 50").unwrap();
        let rs = execute(&[&t], &q).unwrap();
        assert!(!rs.is_empty());
        // Verify every surviving row actually satisfies the predicate.
        for row in &rs.rows {
            let id = match row[0] {
                Value::Int(i) => i as usize,
                _ => panic!("id must be int"),
            };
            match &t.columns[1][id] {
                Value::Int(x) => assert!(*x < 50),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn estimated_selectivity_tracks_actual() {
        let (c, t, _) = setup(2000);
        for (sql, col) in [
            ("SELECT id FROM t WHERE x < 25", 1u16),
            ("SELECT id FROM t WHERE x BETWEEN 10 AND 30", 1),
            ("SELECT id FROM t WHERE cat = 0", 3),
        ] {
            let q = parse_query(&c.schema, sql).unwrap();
            let actual = execute(&[&t], &q).unwrap().len() as f64 / t.rows() as f64;
            let stats = c.table_stats(q.table_of(0)).column(col);
            let est = selectivity::predicate_selectivity(stats, &q.filters[0].op);
            assert!(
                (est - actual).abs() < 0.08,
                "{sql}: estimated {est:.3} vs actual {actual:.3}"
            );
        }
    }

    #[test]
    fn hash_join_matches_nested_loop_semantics() {
        let (c, t, u) = setup(400);
        let q = parse_query(
            &c.schema,
            "SELECT t.id, u.z FROM t, u WHERE t.id = u.tid AND t.x < 50",
        )
        .unwrap();
        let rs = execute(&[&t, &u], &q).unwrap();
        // Brute-force the expected count.
        let mut expected = 0usize;
        for i in 0..t.rows() {
            let x_ok = matches!(&t.columns[1][i], Value::Int(x) if *x < 50);
            if !x_ok {
                continue;
            }
            for j in 0..u.rows() {
                if t.columns[0][i].sql_eq(&u.columns[0][j]) {
                    expected += 1;
                }
            }
        }
        assert_eq!(rs.len(), expected);
    }

    #[test]
    fn join_cardinality_estimate_tracks_actual() {
        let (c, t, u) = setup(2000);
        let q = parse_query(&c.schema, "SELECT t.id FROM t, u WHERE t.id = u.tid").unwrap();
        let actual = execute(&[&t, &u], &q).unwrap().len() as f64;
        let est = selectivity::slot_rows(&c, &q, 0)
            * selectivity::slot_rows(&c, &q, 1)
            * selectivity::join_predicate_selectivity(&c, &q, &q.joins[0]);
        // FK join: every u row matches exactly one t row → actual = |u|.
        assert_eq!(actual, u.rows() as f64);
        assert!(
            (est - actual).abs() / actual < 0.25,
            "estimated {est:.0} vs actual {actual:.0}"
        );
    }

    #[test]
    fn group_by_and_aggregates() {
        let (c, t, _) = setup(500);
        let q = parse_query(&c.schema, "SELECT cat, count(*) FROM t GROUP BY cat").unwrap();
        let rs = execute(&[&t], &q).unwrap();
        assert!(rs.len() <= 5, "five categories at most");
        let total: i64 = rs
            .rows
            .iter()
            .map(|r| match r[1] {
                Value::Int(n) => n,
                _ => 0,
            })
            .sum();
        assert_eq!(total, t.rows() as i64, "counts partition the table");
    }

    #[test]
    fn scalar_aggregates_over_empty_input() {
        let (c, t, _) = setup(100);
        let q = parse_query(&c.schema, "SELECT count(*), avg(y) FROM t WHERE x > 1000").unwrap();
        let rs = execute(&[&t], &q).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(0));
        assert!(rs.rows[0][1].is_null());
    }

    #[test]
    fn order_by_and_limit() {
        let (c, t, _) = setup(300);
        let q = parse_query(&c.schema, "SELECT id, y FROM t ORDER BY y DESC LIMIT 10").unwrap();
        let rs = execute(&[&t], &q).unwrap();
        assert_eq!(rs.len(), 10);
        for w in rs.rows.windows(2) {
            assert!(w[0][1] >= w[1][1], "descending order");
        }
    }

    #[test]
    fn missing_data_is_an_error() {
        let (c, t, _) = setup(50);
        let q = parse_query(&c.schema, "SELECT t.id FROM t, u WHERE t.id = u.tid").unwrap();
        assert!(matches!(execute(&[&t], &q), Err(ExecError::MissingData(_))));
    }

    #[test]
    fn null_join_keys_never_match() {
        let schema = SchemaBuilder::new()
            .table("a")
            .nullable_column("k", DataType::Int)
            .table("b")
            .nullable_column("k", DataType::Int)
            .build()
            .unwrap();
        let a = TableData {
            columns: vec![vec![Value::Int(1), Value::Null]],
        };
        let b = TableData {
            columns: vec![vec![Value::Null, Value::Int(1)]],
        };
        let q = parse_query(&schema, "SELECT a.k FROM a, b WHERE a.k = b.k").unwrap();
        let rs = execute(&[&a, &b], &q).unwrap();
        assert_eq!(rs.len(), 1, "only the 1 = 1 pair joins");
    }
}
