//! # pgdesign-optimizer
//!
//! A from-scratch System-R-style cost-based query optimizer with built-in
//! *what-if* support — the substrate the paper obtains by modifying
//! PostgreSQL's optimizer (§3.1).
//!
//! Every advisor in the toolkit treats the DBMS purely as a cost oracle:
//! "what would query *q* cost under physical design *D*?". This crate
//! answers that question:
//!
//! * [`params`] — PostgreSQL-flavoured cost constants
//!   (`seq_page_cost`, `random_page_cost`, `cpu_tuple_cost`, ...);
//! * [`selectivity`] — predicate and join selectivity estimation over the
//!   catalog's histograms/NDV/MCV statistics;
//! * [`access`] — per-relation access-path selection: sequential scan,
//!   index scan, index-only scan, bitmap heap scan, vertical-fragment scan,
//!   with horizontal partition pruning; this is where hypothetical indexes
//!   and partitions earn (or fail to earn) their keep;
//! * [`plan`] — physical plan trees with costs, cardinalities, delivered
//!   sort orders and an `EXPLAIN`-style renderer;
//! * [`join`] — dynamic-programming join enumeration with hash, merge and
//!   (index-)nested-loop methods and interesting-order tracking;
//! * [`optimizer`] — the façade: [`Optimizer::optimize`] plus the INUM
//!   hooks ([`Optimizer::optimize_skeleton`], [`Optimizer::best_access`])
//!   and the what-if join control (§3.1's "what-if join component");
//! * [`candidates`] — candidate-index enumeration from a workload, shared
//!   by CoPhy, COLT and the interactive sessions;
//! * [`maintenance`] — index/partition upkeep costs under a write profile,
//!   folded into the advisors' objectives so write-heavy tables repel
//!   marginal indexes;
//! * [`exec`] — a reference executor over generated data samples, used to
//!   validate the selectivity model against ground truth.
//!
//! The *what-if* property needs no special machinery: a
//! [`pgdesign_catalog::PhysicalDesign`] is just a value, so evaluating a
//! hypothetical configuration is calling [`Optimizer::optimize`] with a
//! different design — no structures are ever built. Crucially, hypothetical
//! indexes carry real size estimates (see `pgdesign_catalog::sizing`),
//! avoiding the zero-size fallacy the paper criticises.

#![forbid(unsafe_code)]

pub mod access;
pub mod candidates;
pub mod exec;
pub mod join;
pub mod maintenance;
pub mod optimizer;
pub mod params;
pub mod plan;
pub mod selectivity;

pub use optimizer::{JoinControl, Optimizer, Skeleton};
pub use params::CostParams;
pub use plan::{Plan, PlanNode};
