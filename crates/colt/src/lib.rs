//! # pgdesign-colt
//!
//! COLT — continuous on-line tuning (Schnaitter, Abiteboul, Milo,
//! Polyzotis, SIGMOD 2006), the paper's continuous tuning component
//! (§3.2.2).
//!
//! COLT watches the incoming query stream in *epochs*, estimates the
//! benefit of candidate **single-column** indexes (the restriction the
//! paper states explicitly), and keeps the most profitable set
//! materialized under a storage budget:
//!
//! * per epoch, candidate indexes are harvested from the epoch's queries;
//! * benefits are measured with *budgeted* what-if optimizer calls — COLT's
//!   signature trick for staying lightweight online; queries beyond the
//!   budget contribute via extrapolation from the measured sample;
//! * per-index benefit is smoothed with an exponentially-weighted moving
//!   average, so the tuner adapts to drift without thrashing;
//! * the materialized set is re-chosen by a storage-budget knapsack; an
//!   index is built only when its expected benefit repays its build cost
//!   within a configurable horizon, and builds are charged to the tuner's
//!   own cost line;
//! * configuration changes surface as [`ColtEvent`]s — the "alert message"
//!   of demo scenario 3. Whether to adopt them remains the DBA's call; the
//!   tuner here applies them to its own simulated design.

#![forbid(unsafe_code)]

use pgdesign_catalog::design::{Index, PhysicalDesign};
use pgdesign_catalog::Catalog;
use pgdesign_inum::CostMatrix;
use pgdesign_optimizer::candidates::{query_candidates, CandidateConfig};
use pgdesign_optimizer::Optimizer;
use pgdesign_query::ast::Query;
use std::collections::{BTreeMap, BTreeSet};

/// COLT knobs.
#[derive(Debug, Clone, Copy)]
pub struct ColtConfig {
    /// Queries per epoch.
    pub epoch_length: usize,
    /// Storage budget for on-line indexes, in bytes.
    pub storage_budget_bytes: u64,
    /// Maximum what-if (INUM) cost calls per epoch for benefit profiling.
    pub whatif_budget_per_epoch: usize,
    /// EWMA smoothing factor for per-epoch benefits (weight of the new
    /// observation).
    pub ewma_alpha: f64,
    /// An index is materialized when its per-epoch benefit × horizon
    /// exceeds its build cost.
    pub payback_horizon_epochs: f64,
}

impl Default for ColtConfig {
    fn default() -> Self {
        ColtConfig {
            epoch_length: 25,
            storage_budget_bytes: u64::MAX / 2,
            whatif_budget_per_epoch: 200,
            ewma_alpha: 0.5,
            payback_horizon_epochs: 3.0,
        }
    }
}

/// A configuration-change event (scenario 3's alerts).
#[derive(Debug, Clone, PartialEq)]
pub enum ColtEvent {
    /// An index was selected for materialization.
    Materialize {
        /// Epoch at which it happened.
        epoch: usize,
        /// The index.
        index: Index,
        /// Build cost charged.
        build_cost: f64,
    },
    /// A materialized index was dropped from the on-line set.
    Drop {
        /// Epoch at which it happened.
        epoch: usize,
        /// The index.
        index: Index,
    },
}

/// Summary of one finished epoch.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch number (0-based).
    pub epoch: usize,
    /// Sum of query costs under the *empty* design (the untuned line).
    pub untuned_cost: f64,
    /// Sum of query costs under COLT's design at arrival time, plus any
    /// build costs charged this epoch.
    pub tuned_cost: f64,
    /// Build cost charged this epoch.
    pub build_cost: f64,
    /// Indexes materialized at epoch end.
    pub materialized: Vec<Index>,
    /// Events raised at the epoch boundary.
    pub events: Vec<ColtEvent>,
    /// What-if calls spent profiling this epoch.
    pub whatif_calls: usize,
    /// Harvested candidates the what-if budget dropped from the probe plan
    /// entirely (zero probes admitted). They received no benefit evidence
    /// this epoch — a persistently high number means the budget is too
    /// tight for the candidate churn.
    pub candidates_dropped: usize,
}

#[derive(Debug, Default, Clone)]
struct CandidateState {
    ewma_benefit: f64,
    observations: u64,
    last_seen_epoch: usize,
}

/// The on-line tuner.
///
/// The tuner does **not** own its cost matrix: every epoch-closing call
/// takes `&mut CostMatrix`, and the caller (typically a `TuningSession` in
/// `pgdesign-core`, or a test holding one matrix across the stream) keeps
/// that matrix alive across epochs. Harvested candidates are added, stale
/// ones removed, and epoch queries rotated in/out, so per-epoch (re)build
/// work scales with *workload drift* — a query recurring across epochs
/// keeps its resident cells — rather than with the epoch size. Because the
/// matrix is shared rather than private, everything COLT keeps warm is
/// immediately available to any other advisor run on the same matrix (the
/// background-advisor handoff).
pub struct ColtTuner<'a> {
    /// Schema + statistics (candidate harvesting, sizes, build costs).
    /// Deliberately *not* an [`pgdesign_inum::Inum`] handle: cost calls go
    /// through the matrix each epoch-closing call receives, so the tuner
    /// stores no reference into whatever owns that matrix's INUM.
    catalog: &'a Catalog,
    optimizer: &'a Optimizer,
    config: ColtConfig,
    current: PhysicalDesign,
    states: BTreeMap<Index, CandidateState>,
    epoch: usize,
    epoch_queries: Vec<Query>,
    epoch_untuned: f64,
    epoch_tuned: f64,
}

impl<'a> ColtTuner<'a> {
    /// New tuner starting from an empty on-line design.
    pub fn new(catalog: &'a Catalog, optimizer: &'a Optimizer, config: ColtConfig) -> Self {
        ColtTuner {
            catalog,
            optimizer,
            config,
            current: PhysicalDesign::empty(),
            states: BTreeMap::new(),
            epoch: 0,
            epoch_queries: Vec::new(),
            epoch_untuned: 0.0,
            epoch_tuned: 0.0,
        }
    }

    /// The design COLT currently maintains.
    pub fn current_design(&self) -> &PhysicalDesign {
        &self.current
    }

    /// Number of candidates being tracked.
    pub fn tracked_candidates(&self) -> usize {
        self.states.len()
    }

    /// Feed one query; returns an [`EpochReport`] when it closes an epoch.
    /// `matrix` is the caller-owned persistent cost matrix the epoch's
    /// profiling rotates work into.
    pub fn observe(&mut self, query: Query, matrix: &mut CostMatrix<'_>) -> Option<EpochReport> {
        let empty = PhysicalDesign::empty();
        self.epoch_untuned += matrix.inum().cost(&empty, &query);
        self.epoch_tuned += matrix.inum().cost(&self.current, &query);
        self.epoch_queries.push(query);
        if self.epoch_queries.len() >= self.config.epoch_length {
            Some(self.end_epoch(matrix))
        } else {
            None
        }
    }

    /// Feed a whole stream; returns the per-epoch reports (a trailing
    /// partial epoch is flushed at the end).
    pub fn process_stream<I: IntoIterator<Item = Query>>(
        &mut self,
        queries: I,
        matrix: &mut CostMatrix<'_>,
    ) -> Vec<EpochReport> {
        let mut reports = Vec::new();
        for q in queries {
            if let Some(r) = self.observe(q, matrix) {
                reports.push(r);
            }
        }
        if !self.epoch_queries.is_empty() {
            reports.push(self.end_epoch(matrix));
        }
        reports
    }

    /// Estimated build cost of an index: scan the table + sort the keys.
    fn build_cost(&self, index: &Index) -> f64 {
        let catalog = self.catalog;
        let params = &self.optimizer.params;
        let tdef = catalog.schema.table(index.table);
        let stats = catalog.table_stats(index.table);
        let pages = pgdesign_catalog::sizing::heap_pages(stats.row_count, tdef.row_byte_width());
        let key_width = f64::from(index.key_width(&catalog.schema));
        pages as f64 * params.seq_page_cost
            + params.sort_cost(stats.row_count as f64, key_width + 8.0)
    }

    /// Close the current epoch: profile candidates, update EWMAs, re-pick
    /// the materialized set, emit events.
    fn end_epoch(&mut self, matrix: &mut CostMatrix<'_>) -> EpochReport {
        let cfg = CandidateConfig::single_column();
        let catalog = self.catalog;

        // Harvest candidates and their relevant queries for this epoch.
        let mut relevant: BTreeMap<Index, Vec<usize>> = BTreeMap::new();
        for (qi, q) in self.epoch_queries.iter().enumerate() {
            for cand in query_candidates(catalog, q, &cfg) {
                relevant.entry(cand).or_default().push(qi);
            }
        }

        // Probe plan: exactly the (candidate, query) pairs the what-if
        // budget admits, computed up front in deterministic (sorted
        // candidate) order. Each probed pair consumes two calls, matching
        // the pre-matrix accounting (an odd budget admits its last pair,
        // as the old per-pair check did). Candidates the plan never
        // reaches receive zero benefit, exactly as if the budget had run
        // out before them.
        let mut profile_order: Vec<(&Index, &Vec<usize>)> = relevant.iter().collect();
        profile_order.sort_by(|a, b| a.0.cmp(b.0));
        let mut remaining_pairs = self.config.whatif_budget_per_epoch.div_ceil(2);
        let plan: Vec<(&Index, &[usize], usize)> = profile_order
            .into_iter()
            .map(|(cand, queries)| {
                let take = queries.len().min(remaining_pairs);
                remaining_pairs -= take;
                (cand, &queries[..take], queries.len())
            })
            .collect();

        // Rotate the *persistent* cost matrix instead of building a fresh
        // one: candidates the plan probes (plus the materialized set) are
        // added — already-registered ones keep their cells — and stale
        // candidates are removed; the epoch's probed queries are added
        // *before* last epoch's leftovers are retired, so a query
        // recurring across epochs reuses its resident cells. Every
        // with/without probe below is then a pure lookup (delta evaluation
        // against the current configuration) instead of a per-design INUM
        // call, and the per-epoch cell work is bounded by the what-if
        // budget *and* the workload drift — not by the epoch length.
        let mut desired: Vec<Index> = plan
            .iter()
            .filter(|(_, probed, _)| !probed.is_empty())
            .map(|(c, _, _)| (*c).clone())
            .collect();
        for idx in self.current.indexes() {
            if !desired.contains(idx) {
                desired.push(idx.clone());
            }
        }
        // Rotation order matters for avoiding wasted cell work: stale
        // candidates go first (so new queries aren't costed against them),
        // then the epoch's queries (recurring ones dedupe against their
        // still-active slots), then last epoch's leftovers retire, and
        // only *then* are new candidates registered — their cells are
        // computed for exactly this epoch's active slots.
        let stale: Vec<usize> = matrix
            .candidates()
            .filter(|(_, idx)| !desired.contains(idx))
            .map(|(id, _)| id)
            .collect();
        for id in stale {
            matrix.remove_candidate(id);
        }

        let mut probed_queries: Vec<usize> = plan
            .iter()
            .flat_map(|(_, probed, _)| probed.iter().copied())
            .collect();
        probed_queries.sort_unstable();
        probed_queries.dedup();
        let entries: Vec<(&Query, f64)> = probed_queries
            .iter()
            .map(|&qi| (&self.epoch_queries[qi], 1.0))
            .collect();
        let qids = matrix.add_queries(entries);
        let keep: BTreeSet<usize> = qids.iter().copied().collect();
        let to_retire: Vec<usize> = matrix
            .active_query_ids()
            .filter(|id| !keep.contains(id))
            .collect();
        for id in to_retire {
            matrix.retire_query(id);
        }
        // `add_queries` accumulates weights on reuse; reset each kept slot
        // to its occurrence count in *this* epoch so the matrix's workload
        // view stays an epoch snapshot, not a cumulative history.
        let mut occurrences: BTreeMap<usize, f64> = BTreeMap::new();
        for &qid in &qids {
            *occurrences.entry(qid).or_insert(0.0) += 1.0;
        }
        for (&qid, &w) in &occurrences {
            matrix.set_query_weight(qid, w);
        }

        // Bulk registration: the epoch's new candidates are costed in one
        // parallel fan-out (duplicates resolve to their resident ids).
        let cids = matrix.add_candidates(&desired);
        let cid_of: BTreeMap<Index, usize> = desired.iter().cloned().zip(cids).collect();
        let qid_of = |qi: usize| qids[probed_queries.binary_search(&qi).expect("probed")];

        // Mutations for this epoch are done: publish the rotated state so
        // concurrent readers can follow the stream at epoch granularity.
        // Everything below is read-only probing against `matrix`.
        matrix.publish();

        let matrix: &CostMatrix<'_> = matrix;
        let current_config = matrix.config_of(self.current.indexes().iter().map(|idx| {
            *cid_of
                .get(idx)
                .expect("materialized indexes are kept in the matrix")
        }));

        // The current configuration's per-query costs depend only on the
        // query, so they are computed once and shared by every candidate
        // probe (each probe still charges two what-if calls — one side is
        // served from this prefix, the other is the toggled lookup).
        let current_costs: BTreeMap<usize, f64> = keep
            .iter()
            .map(|&qid| (qid, matrix.cost(qid, &current_config)))
            .collect();
        let mut whatif_calls = 0usize;
        let mut candidates_dropped = 0usize;
        let mut epoch_benefit: BTreeMap<Index, f64> = BTreeMap::new();
        for (cand, probed, n_relevant) in plan.into_iter() {
            if probed.is_empty() {
                // The budget truncated this candidate out of the plan
                // entirely: no evidence this epoch, recorded in the report
                // rather than silently skipped.
                candidates_dropped += 1;
                epoch_benefit.insert(cand.clone(), 0.0);
                continue;
            }
            let cid = cid_of[cand];
            let materialized = self.current.has_index(cand);
            let mut measured = 0.0;
            for &qi in probed {
                let dq = qid_of(qi);
                let (c_without, c_with) = if materialized {
                    (
                        matrix.cost_minus(dq, &current_config, cid),
                        current_costs[&dq],
                    )
                } else {
                    (
                        current_costs[&dq],
                        matrix.cost_plus(dq, &current_config, cid),
                    )
                };
                whatif_calls += 2;
                measured += (c_without - c_with).max(0.0);
            }
            // A zero (or rounded-to-zero) what-if budget admits zero
            // probes; the empty-probe branch above catches that today, but
            // the extrapolation must never be able to divide by zero if
            // the plan's shape changes.
            let scale = if probed.is_empty() {
                0.0
            } else {
                n_relevant as f64 / probed.len() as f64
            };
            epoch_benefit.insert(cand.clone(), measured * scale);
        }

        // EWMA updates; decay unseen candidates toward zero.
        let alpha = self.config.ewma_alpha;
        for (cand, benefit) in &epoch_benefit {
            let st = self.states.entry(cand.clone()).or_default();
            st.ewma_benefit = alpha * benefit + (1.0 - alpha) * st.ewma_benefit;
            st.observations += 1;
            st.last_seen_epoch = self.epoch;
        }
        for (cand, st) in self.states.iter_mut() {
            if !epoch_benefit.contains_key(cand) {
                st.ewma_benefit *= 1.0 - alpha;
            }
        }

        // Knapsack over tracked candidates, in deterministic (index) order
        // so ties in the greedy density ranking break reproducibly.
        let mut tracked: Vec<(&Index, &CandidateState)> = self
            .states
            .iter()
            .filter(|(_, st)| st.ewma_benefit > 1e-9)
            .collect();
        tracked.sort_by(|a, b| a.0.cmp(b.0));
        // Retention bias: an already-materialized index is worth its EWMA
        // benefit *plus* the rebuild it saves if kept (amortized over the
        // payback horizon). Without this the budget knapsack swaps index
        // sets on every phase of a drifting workload and build costs eat
        // the tuning benefit.
        let items: Vec<pgdesign_solver::knapsack::Item> = tracked
            .iter()
            .map(|(idx, st)| {
                let retention = if self.current.has_index(idx) {
                    self.build_cost(idx) / self.config.payback_horizon_epochs.max(1.0)
                } else {
                    0.0
                };
                pgdesign_solver::knapsack::Item {
                    value: st.ewma_benefit + retention,
                    weight: idx.size_bytes(&catalog.schema, catalog.table_stats(idx.table)) as f64,
                }
            })
            .collect();
        let chosen =
            pgdesign_solver::knapsack::greedy(&items, self.config.storage_budget_bytes as f64);
        let mut target: Vec<Index> = chosen.iter().map(|&i| tracked[i].0.clone()).collect();

        // Payback gate: a *new* index must repay its build cost within the
        // horizon; already-materialized ones stay if still chosen.
        let states = &self.states;
        let current = &self.current;
        let cfg_horizon = self.config.payback_horizon_epochs;
        let build_costs: BTreeMap<Index, f64> = target
            .iter()
            .map(|i| (i.clone(), self.build_cost(i)))
            .collect();
        target.retain(|idx| {
            current.has_index(idx) || states[idx].ewma_benefit * cfg_horizon > build_costs[idx]
        });

        // Diff current vs target; emit events and charge build costs.
        let mut events = Vec::new();
        let mut build_cost_total = 0.0;
        let old_indexes: Vec<Index> = self.current.indexes().to_vec();
        for idx in &old_indexes {
            if !target.contains(idx) {
                self.current.remove_index(idx);
                events.push(ColtEvent::Drop {
                    epoch: self.epoch,
                    index: idx.clone(),
                });
            }
        }
        for idx in &target {
            if !self.current.has_index(idx) {
                let bc = build_costs[idx];
                build_cost_total += bc;
                self.current.add_index(idx.clone());
                events.push(ColtEvent::Materialize {
                    epoch: self.epoch,
                    index: idx.clone(),
                    build_cost: bc,
                });
            }
        }

        let report = EpochReport {
            epoch: self.epoch,
            untuned_cost: self.epoch_untuned,
            tuned_cost: self.epoch_tuned + build_cost_total,
            build_cost: build_cost_total,
            materialized: self.current.indexes().to_vec(),
            events,
            whatif_calls,
            candidates_dropped,
        };
        self.epoch += 1;
        self.epoch_queries.clear();
        self.epoch_untuned = 0.0;
        self.epoch_tuned = 0.0;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_catalog::Catalog;
    use pgdesign_inum::Inum;
    use pgdesign_optimizer::Optimizer;
    use pgdesign_query::generators::DriftingStream;
    use pgdesign_query::{parse_query, Workload};

    fn repeat_query(c: &Catalog, sql: &str, n: usize) -> Vec<Query> {
        let q = parse_query(&c.schema, sql).unwrap();
        std::iter::repeat_with(|| q.clone()).take(n).collect()
    }

    #[test]
    fn repeated_selective_query_triggers_materialization() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                payback_horizon_epochs: 5.0,
                ..Default::default()
            },
        );
        let stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 42", 30);
        let reports = colt.process_stream(stream, &mut matrix);
        assert_eq!(reports.len(), 3);
        // Eventually an index on objid should be materialized.
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        assert!(
            colt.current_design().has_index(&Index::new(photo, vec![0])),
            "objid index expected; design = {:?}",
            colt.current_design().indexes()
        );
        // And tuned cost in the last epoch beats untuned.
        let last = reports.last().unwrap();
        assert!(last.tuned_cost < last.untuned_cost);
    }

    #[test]
    fn single_column_candidates_only() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 5,
                ..Default::default()
            },
        );
        let stream = repeat_query(
            &c,
            "SELECT objid FROM photoobj WHERE type = 3 AND r < 15",
            10,
        );
        colt.process_stream(stream, &mut matrix);
        assert!(colt
            .current_design()
            .indexes()
            .iter()
            .all(|i| i.columns.len() == 1));
    }

    #[test]
    fn zero_whatif_budget_epoch_is_safe() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                whatif_budget_per_epoch: 0,
                ..Default::default()
            },
        );
        let stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 42", 20);
        let reports = colt.process_stream(stream, &mut matrix);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.whatif_calls, 0, "a zero budget admits zero probes");
            assert!(r.untuned_cost.is_finite() && r.tuned_cost.is_finite());
            assert!(
                r.materialized.is_empty(),
                "no probes → no evidence → no builds"
            );
        }
        // No benefit estimate may be poisoned by a 0/0 extrapolation.
        assert!(colt.tracked_candidates() == 0 || reports.iter().all(|r| r.events.is_empty()));
    }

    #[test]
    fn whatif_budget_is_respected() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 20,
                whatif_budget_per_epoch: 10,
                ..Default::default()
            },
        );
        let mut stream = DriftingStream::sdss_default(c.clone(), 100, 5);
        let reports = colt.process_stream(stream.batch(40), &mut matrix);
        for r in &reports {
            assert!(r.whatif_calls <= 11, "budget exceeded: {}", r.whatif_calls);
        }
    }

    #[test]
    fn drift_changes_the_materialized_set() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                payback_horizon_epochs: 8.0,
                ewma_alpha: 0.7,
                ..Default::default()
            },
        );
        // Phase 1: point lookups on objid. Phase 2: lookups on run/camcol.
        let mut stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 42", 30);
        stream.extend(repeat_query(
            &c,
            "SELECT objid FROM photoobj WHERE run = 2000 AND camcol = 3",
            50,
        ));
        let reports = colt.process_stream(stream, &mut matrix);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        // After phase 2, a run or camcol index should exist.
        let final_design = colt.current_design();
        assert!(
            final_design.has_index(&Index::new(photo, vec![9]))
                || final_design.has_index(&Index::new(photo, vec![10])),
            "phase-2 index expected: {:?}",
            final_design.indexes()
        );
        // Some event stream was produced.
        assert!(reports.iter().any(|r| !r.events.is_empty()));
    }

    #[test]
    fn storage_budget_limits_materialized_bytes() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let budget = 3 * 1024 * 1024; // 3 MiB: roughly one small index
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                storage_budget_bytes: budget,
                payback_horizon_epochs: 10.0,
                ..Default::default()
            },
        );
        let mut stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 42", 20);
        stream.extend(repeat_query(
            &c,
            "SELECT ra FROM photoobj WHERE run = 100",
            20,
        ));
        stream.extend(repeat_query(
            &c,
            "SELECT ra FROM photoobj WHERE camcol = 2",
            20,
        ));
        colt.process_stream(stream, &mut matrix);
        let used = colt.current_design().index_bytes(&c.schema, &c.stats);
        assert!(used <= budget, "{used} > {budget}");
    }

    #[test]
    fn build_costs_are_charged() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                payback_horizon_epochs: 50.0,
                ..Default::default()
            },
        );
        let stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 42", 20);
        let reports = colt.process_stream(stream, &mut matrix);
        let charged: f64 = reports.iter().map(|r| r.build_cost).sum();
        assert!(charged > 0.0, "materialization must be paid for");
        let built_epoch = reports.iter().find(|r| r.build_cost > 0.0).unwrap();
        assert!(built_epoch.tuned_cost >= built_epoch.build_cost);
    }

    #[test]
    fn epochs_share_one_persistent_matrix_and_reuse_cells() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let builds_before = inum.matrix_stats().builds;
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                ..Default::default()
            },
        );
        // A steady stream: every epoch repeats the same query, so after
        // epoch 0 its cells are resident and each later epoch's profiling
        // reuses them instead of recomputing.
        let stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 42", 40);
        let reports = colt.process_stream(stream, &mut matrix);
        assert_eq!(reports.len(), 4);
        let s = inum.matrix_stats();
        assert_eq!(
            s.builds,
            builds_before + 1,
            "one persistent matrix across all epochs (built once, up front)"
        );
        assert!(
            s.cells_reused > 0,
            "recurring queries must reuse resident cells: {s:?}"
        );
    }

    #[test]
    fn budget_truncation_is_recorded_not_silent() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                // Two calls = one (candidate, query) pair: every epoch
                // harvests more candidates than the plan can probe.
                whatif_budget_per_epoch: 2,
                ..Default::default()
            },
        );
        let stream = repeat_query(
            &c,
            "SELECT objid FROM photoobj WHERE type = 3 AND r < 15 AND run = 2000",
            10,
        );
        let reports = colt.process_stream(stream, &mut matrix);
        assert!(
            reports.iter().any(|r| r.candidates_dropped > 0),
            "the truncated plan must surface dropped candidates in the report"
        );
        for r in &reports {
            assert!(r.whatif_calls <= 2);
        }
    }

    #[test]
    fn partial_trailing_epoch_is_flushed() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                ..Default::default()
            },
        );
        let stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 1", 13);
        let reports = colt.process_stream(stream, &mut matrix);
        assert_eq!(reports.len(), 2, "10 + 3 queries → 2 reports");
    }
}
