//! # pgdesign-colt
//!
//! COLT — continuous on-line tuning (Schnaitter, Abiteboul, Milo,
//! Polyzotis, SIGMOD 2006), the paper's continuous tuning component
//! (§3.2.2).
//!
//! COLT watches the incoming query stream in *epochs*, estimates the
//! benefit of candidate **single-column** indexes (the restriction the
//! paper states explicitly), and keeps the most profitable set
//! materialized under a storage budget:
//!
//! * per epoch, candidate indexes are harvested from the epoch's queries;
//! * benefits are measured with *budgeted* what-if optimizer calls — COLT's
//!   signature trick for staying lightweight online; queries beyond the
//!   budget contribute via extrapolation from the measured sample;
//! * per-index benefit is smoothed with an exponentially-weighted moving
//!   average, so the tuner adapts to drift without thrashing;
//! * the materialized set is re-chosen by a storage-budget knapsack; an
//!   index is built only when its expected benefit repays its build cost
//!   within a configurable horizon, and builds are charged to the tuner's
//!   own cost line;
//! * configuration changes surface as [`ColtEvent`]s — the "alert message"
//!   of demo scenario 3. Whether to adopt them remains the DBA's call; the
//!   tuner here applies them to its own simulated design.

#![forbid(unsafe_code)]

use pgdesign_catalog::design::{Index, PhysicalDesign};
use pgdesign_catalog::Catalog;
use pgdesign_inum::{Clock, CostMatrix, Deadline, SystemClock, WorkBudget};
use pgdesign_optimizer::candidates::{query_candidates, CandidateConfig};
use pgdesign_optimizer::Optimizer;
use pgdesign_query::ast::Query;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

/// COLT knobs.
#[derive(Debug, Clone, Copy)]
pub struct ColtConfig {
    /// Queries per epoch.
    pub epoch_length: usize,
    /// Storage budget for on-line indexes, in bytes.
    pub storage_budget_bytes: u64,
    /// Maximum what-if (INUM) cost calls per epoch for benefit profiling.
    pub whatif_budget_per_epoch: usize,
    /// EWMA smoothing factor for per-epoch benefits (weight of the new
    /// observation).
    pub ewma_alpha: f64,
    /// An index is materialized when its per-epoch benefit × horizon
    /// exceeds its build cost.
    pub payback_horizon_epochs: f64,
    /// Wall-clock bound on the maintenance work that closes an epoch
    /// (`None` = unbounded). When the deadline trips mid-epoch the tuner
    /// climbs a degradation ladder instead of stalling the writer: full
    /// epoch → incremental-only (skip candidate enumeration and probing)
    /// → publish nothing and let readers serve the previous generation.
    /// Cancelled cell work is recorded as pending and resumed next
    /// epoch. Time is read through the tuner's injectable clock
    /// ([`ColtTuner::set_clock`]), so tests drive this deterministically.
    pub epoch_deadline: Option<Duration>,
}

impl Default for ColtConfig {
    fn default() -> Self {
        ColtConfig {
            epoch_length: 25,
            storage_budget_bytes: u64::MAX / 2,
            whatif_budget_per_epoch: 200,
            ewma_alpha: 0.5,
            payback_horizon_epochs: 3.0,
            epoch_deadline: None,
        }
    }
}

/// How an epoch actually closed — which rung of the degradation ladder
/// the deadline left the tuner on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochMode {
    /// Everything ran: rotation, candidate registration, probing,
    /// selection.
    Full,
    /// The deadline tripped after the query rotation: candidate
    /// registration and probing were skipped, but the rotated matrix was
    /// published so readers follow the stream. EWMAs decayed (no
    /// evidence this epoch); the design is unchanged.
    IncrementalOnly,
    /// The deadline tripped before any rotation work landed: nothing was
    /// published and readers keep serving the previous generation. The
    /// epoch's cell work is pending, resumed next epoch.
    Stale,
}

/// A configuration-change event (scenario 3's alerts).
#[derive(Debug, Clone, PartialEq)]
pub enum ColtEvent {
    /// An index was selected for materialization.
    Materialize {
        /// Epoch at which it happened.
        epoch: usize,
        /// The index.
        index: Index,
        /// Build cost charged.
        build_cost: f64,
    },
    /// A materialized index was dropped from the on-line set.
    Drop {
        /// Epoch at which it happened.
        epoch: usize,
        /// The index.
        index: Index,
    },
}

/// Summary of one finished epoch.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch number (0-based).
    pub epoch: usize,
    /// Sum of query costs under the *empty* design (the untuned line).
    pub untuned_cost: f64,
    /// Sum of query costs under COLT's design at arrival time, plus any
    /// build costs charged this epoch.
    pub tuned_cost: f64,
    /// Build cost charged this epoch.
    pub build_cost: f64,
    /// Indexes materialized at epoch end.
    pub materialized: Vec<Index>,
    /// Events raised at the epoch boundary.
    pub events: Vec<ColtEvent>,
    /// What-if calls spent profiling this epoch.
    pub whatif_calls: usize,
    /// Harvested candidates the what-if budget dropped from the probe plan
    /// entirely (zero probes admitted). They received no benefit evidence
    /// this epoch — a persistently high number means the budget is too
    /// tight for the candidate churn.
    pub candidates_dropped: usize,
    /// Which rung of the degradation ladder this epoch closed on.
    pub mode: EpochMode,
    /// Query cell-work entries the epoch deadline cancelled; they are
    /// pending on the tuner and resumed next epoch.
    pub deferred_queries: usize,
    /// Candidate registrations the epoch deadline cancelled; pending,
    /// resumed next epoch.
    pub deferred_candidates: usize,
}

#[derive(Debug, Default, Clone)]
struct CandidateState {
    ewma_benefit: f64,
    observations: u64,
    last_seen_epoch: usize,
}

/// One candidate's adaptive state in a [`TunerState`] snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TunerCandidate {
    /// The candidate index.
    pub index: Index,
    /// Smoothed per-epoch benefit.
    pub ewma_benefit: f64,
    /// Epochs this candidate received probe evidence in.
    pub observations: u64,
    /// Last epoch it was harvested.
    pub last_seen_epoch: u64,
}

/// The tuner's exportable adaptive state (EWMAs, materialized set, epoch
/// counter) — what a durable session persists alongside the matrix
/// snapshot so a restarted daemon resumes with design continuity.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TunerState {
    /// Epoch counter at export time.
    pub epoch: u64,
    /// The materialized on-line index set.
    pub materialized: Vec<Index>,
    /// Tracked candidates and their EWMA evidence.
    pub candidates: Vec<TunerCandidate>,
}

/// Why a [`TunerState`] byte payload was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunerStateError {
    /// The payload ended before the declared structure did.
    Truncated,
    /// Encoded with a codec version this build does not speak.
    Version(u32),
    /// Structurally well-formed but semantically impossible (e.g. a
    /// non-finite EWMA benefit).
    Invalid(&'static str),
}

impl std::fmt::Display for TunerStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TunerStateError::Truncated => write!(f, "tuner state payload truncated"),
            TunerStateError::Version(v) => write!(f, "tuner state codec version {v} not supported"),
            TunerStateError::Invalid(why) => write!(f, "tuner state invalid: {why}"),
        }
    }
}

impl std::error::Error for TunerStateError {}

/// Codec version for [`TunerState::encode`]. Old daemons that never
/// wrote a tuner section simply have no sidecar payload; new daemons
/// reading an unknown future version fall back to a cold EWMA rather
/// than guessing.
pub const TUNER_STATE_VERSION: u32 = 1;

impl TunerState {
    /// Serialize to a little-endian byte payload (CRC framing is the
    /// durable store's job, not the codec's).
    pub fn encode(&self) -> Vec<u8> {
        fn put_index(out: &mut Vec<u8>, idx: &Index) {
            out.extend_from_slice(&idx.table.0.to_le_bytes());
            out.push(u8::from(idx.unique));
            out.extend_from_slice(&(idx.columns.len() as u32).to_le_bytes());
            for &c in &idx.columns {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        let mut out = Vec::new();
        out.extend_from_slice(&TUNER_STATE_VERSION.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.materialized.len() as u32).to_le_bytes());
        for idx in &self.materialized {
            put_index(&mut out, idx);
        }
        out.extend_from_slice(&(self.candidates.len() as u32).to_le_bytes());
        for c in &self.candidates {
            put_index(&mut out, &c.index);
            out.extend_from_slice(&c.ewma_benefit.to_bits().to_le_bytes());
            out.extend_from_slice(&c.observations.to_le_bytes());
            out.extend_from_slice(&c.last_seen_epoch.to_le_bytes());
        }
        out
    }

    /// Decode a payload produced by [`Self::encode`]. Rejects truncated
    /// input, unknown versions, and non-finite EWMA values with a typed
    /// error — never panics on hostile bytes.
    pub fn decode(bytes: &[u8]) -> Result<TunerState, TunerStateError> {
        struct Cur<'b> {
            b: &'b [u8],
            at: usize,
        }
        impl<'b> Cur<'b> {
            fn take(&mut self, n: usize) -> Result<&'b [u8], TunerStateError> {
                let end = self.at.checked_add(n).ok_or(TunerStateError::Truncated)?;
                let s = self.b.get(self.at..end).ok_or(TunerStateError::Truncated)?;
                self.at = end;
                Ok(s)
            }
            fn u8(&mut self) -> Result<u8, TunerStateError> {
                Ok(self.take(1)?[0])
            }
            fn u16(&mut self) -> Result<u16, TunerStateError> {
                let s = self.take(2)?;
                Ok(u16::from_le_bytes([s[0], s[1]]))
            }
            fn u32(&mut self) -> Result<u32, TunerStateError> {
                let s = self.take(4)?;
                Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
            }
            fn u64(&mut self) -> Result<u64, TunerStateError> {
                let s = self.take(8)?;
                let mut a = [0u8; 8];
                a.copy_from_slice(s);
                Ok(u64::from_le_bytes(a))
            }
            fn index(&mut self) -> Result<Index, TunerStateError> {
                let table = pgdesign_catalog::schema::TableId(self.u32()?);
                let unique = match self.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(TunerStateError::Invalid("unique flag out of range")),
                };
                let n = self.u32()? as usize;
                // Cap before allocating: a hostile length here must not
                // trigger a huge reservation.
                if n > 1 << 16 {
                    return Err(TunerStateError::Invalid("column count out of range"));
                }
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    columns.push(self.u16()?);
                }
                let mut idx = Index::new(table, columns);
                idx.unique = unique;
                Ok(idx)
            }
        }
        let mut cur = Cur { b: bytes, at: 0 };
        let version = cur.u32()?;
        if version != TUNER_STATE_VERSION {
            return Err(TunerStateError::Version(version));
        }
        let epoch = cur.u64()?;
        let n_mat = cur.u32()? as usize;
        if n_mat > 1 << 20 {
            return Err(TunerStateError::Invalid("materialized count out of range"));
        }
        let mut materialized = Vec::with_capacity(n_mat);
        for _ in 0..n_mat {
            materialized.push(cur.index()?);
        }
        let n_cand = cur.u32()? as usize;
        if n_cand > 1 << 20 {
            return Err(TunerStateError::Invalid("candidate count out of range"));
        }
        let mut candidates = Vec::with_capacity(n_cand);
        for _ in 0..n_cand {
            let index = cur.index()?;
            let ewma_benefit = f64::from_bits(cur.u64()?);
            if !ewma_benefit.is_finite() {
                return Err(TunerStateError::Invalid("non-finite EWMA benefit"));
            }
            let observations = cur.u64()?;
            let last_seen_epoch = cur.u64()?;
            candidates.push(TunerCandidate {
                index,
                ewma_benefit,
                observations,
                last_seen_epoch,
            });
        }
        if cur.at != bytes.len() {
            return Err(TunerStateError::Invalid("trailing bytes"));
        }
        Ok(TunerState {
            epoch,
            materialized,
            candidates,
        })
    }
}

/// The on-line tuner.
///
/// The tuner does **not** own its cost matrix: every epoch-closing call
/// takes `&mut CostMatrix`, and the caller (typically a `TuningSession` in
/// `pgdesign-core`, or a test holding one matrix across the stream) keeps
/// that matrix alive across epochs. Harvested candidates are added, stale
/// ones removed, and epoch queries rotated in/out, so per-epoch (re)build
/// work scales with *workload drift* — a query recurring across epochs
/// keeps its resident cells — rather than with the epoch size. Because the
/// matrix is shared rather than private, everything COLT keeps warm is
/// immediately available to any other advisor run on the same matrix (the
/// background-advisor handoff).
pub struct ColtTuner<'a> {
    /// Schema + statistics (candidate harvesting, sizes, build costs).
    /// Deliberately *not* an [`pgdesign_inum::Inum`] handle: cost calls go
    /// through the matrix each epoch-closing call receives, so the tuner
    /// stores no reference into whatever owns that matrix's INUM.
    catalog: &'a Catalog,
    optimizer: &'a Optimizer,
    config: ColtConfig,
    current: PhysicalDesign,
    states: BTreeMap<Index, CandidateState>,
    epoch: usize,
    epoch_queries: Vec<Query>,
    epoch_untuned: f64,
    epoch_tuned: f64,
    /// Injectable time source for the epoch deadline (tests use
    /// [`pgdesign_inum::ManualClock`] for deterministic expiry).
    clock: Arc<dyn Clock>,
    /// Query cell work a deadline cancelled: `(query, weight)` pairs
    /// resumed by the next epoch's rotation. Bounded (oldest dropped) so
    /// sustained pressure can't grow it without limit.
    pending_queries: Vec<(Query, f64)>,
    /// Candidate registrations a deadline cancelled, resumed next epoch.
    pending_candidates: Vec<Index>,
    /// Consecutive epochs that closed on the [`EpochMode::Stale`] rung —
    /// i.e. how many generations behind the stream the published
    /// snapshot currently is. Resets to zero on any publish.
    stale_generations: u64,
    last_mode: EpochMode,
}

impl<'a> ColtTuner<'a> {
    /// New tuner starting from an empty on-line design.
    pub fn new(catalog: &'a Catalog, optimizer: &'a Optimizer, config: ColtConfig) -> Self {
        ColtTuner {
            catalog,
            optimizer,
            config,
            current: PhysicalDesign::empty(),
            states: BTreeMap::new(),
            epoch: 0,
            epoch_queries: Vec::new(),
            epoch_untuned: 0.0,
            epoch_tuned: 0.0,
            clock: Arc::new(SystemClock::new()),
            pending_queries: Vec::new(),
            pending_candidates: Vec::new(),
            stale_generations: 0,
            last_mode: EpochMode::Full,
        }
    }

    /// The design COLT currently maintains.
    pub fn current_design(&self) -> &PhysicalDesign {
        &self.current
    }

    /// Number of candidates being tracked.
    pub fn tracked_candidates(&self) -> usize {
        self.states.len()
    }

    /// Replace the deadline clock (tests inject a
    /// [`pgdesign_inum::ManualClock`]; production keeps the default
    /// monotonic [`SystemClock`]).
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// Change the epoch deadline at runtime (the daemon's operator
    /// knob). Takes effect from the next epoch close.
    pub fn set_epoch_deadline(&mut self, deadline: Option<Duration>) {
        self.config.epoch_deadline = deadline;
    }

    /// How many generations behind the query stream the published
    /// snapshot is: the number of consecutive epochs that closed on the
    /// [`EpochMode::Stale`] rung. Zero whenever the latest epoch
    /// published.
    pub fn staleness_generations(&self) -> u64 {
        self.stale_generations
    }

    /// Which ladder rung the most recent epoch closed on
    /// ([`EpochMode::Full`] before any epoch has closed).
    pub fn last_epoch_mode(&self) -> EpochMode {
        self.last_mode
    }

    /// Deadline-cancelled work waiting to be resumed:
    /// `(query entries, candidate registrations)`.
    pub fn pending_work(&self) -> (usize, usize) {
        (self.pending_queries.len(), self.pending_candidates.len())
    }

    /// Snapshot the tuner's adaptive state — EWMA benefit per candidate,
    /// the materialized set, and the epoch counter — for durable
    /// persistence. Restoring it with [`Self::restore_state`] gives a
    /// restarted daemon design continuity instead of re-warming for an
    /// epoch or two.
    pub fn export_state(&self) -> TunerState {
        TunerState {
            epoch: self.epoch as u64,
            materialized: self.current.indexes().to_vec(),
            candidates: self
                .states
                .iter()
                .map(|(idx, st)| TunerCandidate {
                    index: idx.clone(),
                    ewma_benefit: st.ewma_benefit,
                    observations: st.observations,
                    last_seen_epoch: st.last_seen_epoch as u64,
                })
                .collect(),
        }
    }

    /// Adopt a previously exported [`TunerState`] (the warm-restart
    /// path). Non-finite EWMA values are dropped rather than adopted, so
    /// a poisoned snapshot cannot re-infect the benefit estimates.
    pub fn restore_state(&mut self, state: TunerState) {
        self.epoch = state.epoch as usize;
        self.current = PhysicalDesign::with_indexes(state.materialized);
        self.states = state
            .candidates
            .into_iter()
            .filter(|c| c.ewma_benefit.is_finite())
            .map(|c| {
                (
                    c.index,
                    CandidateState {
                        ewma_benefit: c.ewma_benefit,
                        observations: c.observations,
                        last_seen_epoch: c.last_seen_epoch as usize,
                    },
                )
            })
            .collect();
    }

    /// Feed one query; returns an [`EpochReport`] when it closes an epoch.
    /// `matrix` is the caller-owned persistent cost matrix the epoch's
    /// profiling rotates work into.
    pub fn observe(&mut self, query: Query, matrix: &mut CostMatrix<'_>) -> Option<EpochReport> {
        let empty = PhysicalDesign::empty();
        self.epoch_untuned += matrix.inum().cost(&empty, &query);
        self.epoch_tuned += matrix.inum().cost(&self.current, &query);
        self.epoch_queries.push(query);
        if self.epoch_queries.len() >= self.config.epoch_length {
            Some(self.end_epoch(matrix))
        } else {
            None
        }
    }

    /// Feed a whole stream; returns the per-epoch reports (a trailing
    /// partial epoch is flushed at the end).
    pub fn process_stream<I: IntoIterator<Item = Query>>(
        &mut self,
        queries: I,
        matrix: &mut CostMatrix<'_>,
    ) -> Vec<EpochReport> {
        let mut reports = Vec::new();
        for q in queries {
            if let Some(r) = self.observe(q, matrix) {
                reports.push(r);
            }
        }
        if !self.epoch_queries.is_empty() {
            reports.push(self.end_epoch(matrix));
        }
        reports
    }

    /// Estimated build cost of an index: scan the table + sort the keys.
    fn build_cost(&self, index: &Index) -> f64 {
        let catalog = self.catalog;
        let params = &self.optimizer.params;
        let tdef = catalog.schema.table(index.table);
        let stats = catalog.table_stats(index.table);
        let pages = pgdesign_catalog::sizing::heap_pages(stats.row_count, tdef.row_byte_width());
        let key_width = f64::from(index.key_width(&catalog.schema));
        pages as f64 * params.seq_page_cost
            + params.sort_cost(stats.row_count as f64, key_width + 8.0)
    }

    /// Cap the pending-work carryover so sustained deadline pressure
    /// cannot grow it without bound: oldest entries are dropped first
    /// (they are least likely to still matter to the drifted stream).
    fn trim_pending(&mut self) {
        let max_q = self.config.epoch_length.saturating_mul(4).max(16);
        if self.pending_queries.len() > max_q {
            let drop = self.pending_queries.len() - max_q;
            self.pending_queries.drain(..drop);
        }
        const MAX_PENDING_CANDIDATES: usize = 256;
        if self.pending_candidates.len() > MAX_PENDING_CANDIDATES {
            let drop = self.pending_candidates.len() - MAX_PENDING_CANDIDATES;
            self.pending_candidates.drain(..drop);
        }
    }

    /// Close an epoch on the [`EpochMode::Stale`] rung: publish nothing
    /// (readers keep the previous generation), queue the epoch's cell
    /// work as pending, and decay the EWMAs so unprobed evidence ages.
    fn close_stale_epoch(&mut self) -> EpochReport {
        let alpha = self.config.ewma_alpha;
        for st in self.states.values_mut() {
            st.ewma_benefit *= 1.0 - alpha;
        }
        let queued: Vec<(Query, f64)> = self
            .epoch_queries
            .iter()
            .map(|q| (q.clone(), 1.0))
            .collect();
        self.pending_queries.extend(queued);
        self.trim_pending();
        self.stale_generations += 1;
        self.last_mode = EpochMode::Stale;
        let report = EpochReport {
            epoch: self.epoch,
            untuned_cost: self.epoch_untuned,
            tuned_cost: self.epoch_tuned,
            build_cost: 0.0,
            materialized: self.current.indexes().to_vec(),
            events: Vec::new(),
            whatif_calls: 0,
            candidates_dropped: 0,
            mode: EpochMode::Stale,
            deferred_queries: self.pending_queries.len(),
            deferred_candidates: self.pending_candidates.len(),
        };
        self.epoch += 1;
        self.epoch_queries.clear();
        self.epoch_untuned = 0.0;
        self.epoch_tuned = 0.0;
        report
    }

    /// Close the current epoch: profile candidates, update EWMAs, re-pick
    /// the materialized set, emit events. Under an epoch deadline
    /// ([`ColtConfig::epoch_deadline`]) the work degrades along a ladder
    /// instead of overrunning — see [`EpochMode`].
    fn end_epoch(&mut self, matrix: &mut CostMatrix<'_>) -> EpochReport {
        let deadline = self
            .config
            .epoch_deadline
            .map(|d| Deadline::after(self.clock.clone(), d));
        let budget = match &deadline {
            Some(d) => WorkBudget::with_deadline(d.clone()),
            None => WorkBudget::unlimited(),
        };
        let out_of_time = |d: &Option<Deadline>| d.as_ref().is_some_and(|d| d.expired());

        // Bottom rung up front: the window is already gone before any
        // maintenance ran (a straggler epoch ate it all).
        if out_of_time(&deadline) {
            return self.close_stale_epoch();
        }

        let cfg = CandidateConfig::single_column();
        let catalog = self.catalog;

        // Harvest candidates and their relevant queries for this epoch.
        let mut relevant: BTreeMap<Index, Vec<usize>> = BTreeMap::new();
        for (qi, q) in self.epoch_queries.iter().enumerate() {
            for cand in query_candidates(catalog, q, &cfg) {
                relevant.entry(cand).or_default().push(qi);
            }
        }

        // Probe plan: exactly the (candidate, query) pairs the what-if
        // budget admits, computed up front in deterministic (sorted
        // candidate) order. Each probed pair consumes two calls, matching
        // the pre-matrix accounting (an odd budget admits its last pair,
        // as the old per-pair check did). Candidates the plan never
        // reaches receive zero benefit, exactly as if the budget had run
        // out before them.
        let mut profile_order: Vec<(&Index, &Vec<usize>)> = relevant.iter().collect();
        profile_order.sort_by(|a, b| a.0.cmp(b.0));
        let mut remaining_pairs = self.config.whatif_budget_per_epoch.div_ceil(2);
        let plan: Vec<(&Index, &[usize], usize)> = profile_order
            .into_iter()
            .map(|(cand, queries)| {
                let take = queries.len().min(remaining_pairs);
                remaining_pairs -= take;
                (cand, &queries[..take], queries.len())
            })
            .collect();

        // Rotate the *persistent* cost matrix instead of building a fresh
        // one: candidates the plan probes (plus the materialized set) are
        // added — already-registered ones keep their cells — and stale
        // candidates are removed; the epoch's probed queries are added
        // *before* last epoch's leftovers are retired, so a query
        // recurring across epochs reuses its resident cells. Every
        // with/without probe below is then a pure lookup (delta evaluation
        // against the current configuration) instead of a per-design INUM
        // call, and the per-epoch cell work is bounded by the what-if
        // budget *and* the workload drift — not by the epoch length.
        let mut desired: Vec<Index> = plan
            .iter()
            .filter(|(_, probed, _)| !probed.is_empty())
            .map(|(c, _, _)| (*c).clone())
            .collect();
        // Resume candidate registrations an earlier deadline cancelled,
        // then the materialized set (always resident, so always free).
        for idx in std::mem::take(&mut self.pending_candidates) {
            if !desired.contains(&idx) {
                desired.push(idx);
            }
        }
        for idx in self.current.indexes() {
            if !desired.contains(idx) {
                desired.push(idx.clone());
            }
        }
        // Rotation order matters for avoiding wasted cell work: stale
        // candidates go first (so new queries aren't costed against them),
        // then the epoch's queries (recurring ones dedupe against their
        // still-active slots), then last epoch's leftovers retire, and
        // only *then* are new candidates registered — their cells are
        // computed for exactly this epoch's active slots.
        let stale: Vec<usize> = matrix
            .candidates()
            .filter(|(_, idx)| !desired.contains(idx))
            .map(|(id, _)| id)
            .collect();
        for id in stale {
            matrix.remove_candidate(id);
        }

        let mut probed_queries: Vec<usize> = plan
            .iter()
            .flat_map(|(_, probed, _)| probed.iter().copied())
            .collect();
        probed_queries.sort_unstable();
        probed_queries.dedup();
        // This epoch's probed queries first (they feed the probe plan),
        // then the pending remainder of earlier cancelled builds — the
        // whole rotation runs under the epoch budget, committing what
        // fits and handing the rest back as pending.
        let carried: Vec<(Query, f64)> = std::mem::take(&mut self.pending_queries);
        let entries: Vec<(&Query, f64)> = probed_queries
            .iter()
            .map(|&qi| (&self.epoch_queries[qi], 1.0))
            .chain(carried.iter().map(|(q, w)| (q, *w)))
            .collect();
        let qid_opts = matrix.add_queries_budgeted(entries, &budget);
        let (probed_qids, carried_qids) = qid_opts.split_at(probed_queries.len());
        let mut deferred_queries = 0usize;
        let mut qid_of: BTreeMap<usize, usize> = BTreeMap::new();
        for (&qi, id) in probed_queries.iter().zip(probed_qids) {
            match id {
                Some(id) => {
                    qid_of.insert(qi, *id);
                }
                None => {
                    self.pending_queries
                        .push((self.epoch_queries[qi].clone(), 1.0));
                    deferred_queries += 1;
                }
            }
        }
        for ((q, w), id) in carried.iter().zip(carried_qids) {
            if id.is_none() {
                self.pending_queries.push((q.clone(), *w));
                deferred_queries += 1;
            }
        }
        self.trim_pending();
        let keep: BTreeSet<usize> = qid_opts.iter().filter_map(|id| *id).collect();

        // If *none* of the rotation landed, retiring the resident slots
        // would publish an empty matrix — strictly worse than a stale
        // one. Close on the bottom rung instead: readers keep the
        // previous generation, the work stays pending.
        if keep.is_empty() {
            return self.close_stale_epoch();
        }
        let to_retire: Vec<usize> = matrix
            .active_query_ids()
            .filter(|id| !keep.contains(id))
            .collect();
        for id in to_retire {
            matrix.retire_query(id);
        }
        // `add_queries` accumulates weights on reuse; reset each kept slot
        // to its occurrence count in *this* epoch so the matrix's workload
        // view stays an epoch snapshot, not a cumulative history.
        let mut occurrences: BTreeMap<usize, f64> = BTreeMap::new();
        for qid in probed_qids.iter().flatten() {
            *occurrences.entry(*qid).or_insert(0.0) += 1.0;
        }
        for (&qid, &w) in &occurrences {
            matrix.set_query_weight(qid, w);
        }

        // Middle rung: out of time after the query rotation. Skip
        // candidate registration and probing entirely, but publish the
        // rotated state so readers follow the stream; unregistered new
        // candidates go back on the pending list and the EWMAs decay.
        if out_of_time(&deadline) {
            let mut deferred_candidates = 0usize;
            for idx in desired {
                if matrix.candidate_id(&idx).is_none() && !self.pending_candidates.contains(&idx) {
                    self.pending_candidates.push(idx);
                    deferred_candidates += 1;
                }
            }
            self.trim_pending();
            matrix.publish();
            self.stale_generations = 0;
            let alpha = self.config.ewma_alpha;
            for st in self.states.values_mut() {
                st.ewma_benefit *= 1.0 - alpha;
            }
            self.last_mode = EpochMode::IncrementalOnly;
            let report = EpochReport {
                epoch: self.epoch,
                untuned_cost: self.epoch_untuned,
                tuned_cost: self.epoch_tuned,
                build_cost: 0.0,
                materialized: self.current.indexes().to_vec(),
                events: Vec::new(),
                whatif_calls: 0,
                candidates_dropped: 0,
                mode: EpochMode::IncrementalOnly,
                deferred_queries,
                deferred_candidates,
            };
            self.epoch += 1;
            self.epoch_queries.clear();
            self.epoch_untuned = 0.0;
            self.epoch_tuned = 0.0;
            return report;
        }

        // Bulk registration: the epoch's new candidates are costed in one
        // pass under the budget (duplicates resolve to their resident
        // ids; deferred ones go back on the pending list).
        let cid_opts = matrix.add_candidates_budgeted(&desired, &budget);
        let mut deferred_candidates = 0usize;
        let mut cid_of: BTreeMap<Index, usize> = BTreeMap::new();
        for (idx, id) in desired.iter().zip(&cid_opts) {
            match id {
                Some(id) => {
                    cid_of.insert(idx.clone(), *id);
                }
                None => {
                    if !self.pending_candidates.contains(idx) {
                        self.pending_candidates.push(idx.clone());
                    }
                    deferred_candidates += 1;
                }
            }
        }
        self.trim_pending();

        // Mutations for this epoch are done: publish the rotated state so
        // concurrent readers can follow the stream at epoch granularity.
        // Everything below is read-only probing against `matrix`.
        matrix.publish();
        self.stale_generations = 0;

        let matrix: &CostMatrix<'_> = matrix;
        // Materialized indexes are registered in every epoch's desired
        // set, so they are normally always present; after a cold matrix
        // restart paired with a warm tuner restore, one may be missing
        // until its cells land — it then simply contributes nothing to
        // the probe baseline this epoch instead of panicking.
        let current_config = matrix.config_of(
            self.current
                .indexes()
                .iter()
                .filter_map(|idx| cid_of.get(idx).copied()),
        );

        // The current configuration's per-query costs depend only on the
        // query, so they are computed once and shared by every candidate
        // probe (each probe still charges two what-if calls — one side is
        // served from this prefix, the other is the toggled lookup).
        let current_costs: BTreeMap<usize, f64> = keep
            .iter()
            .map(|&qid| (qid, matrix.cost(qid, &current_config)))
            .collect();
        let mut whatif_calls = 0usize;
        let mut candidates_dropped = 0usize;
        let mut epoch_benefit: BTreeMap<Index, f64> = BTreeMap::new();
        for (cand, probed, n_relevant) in plan.into_iter() {
            if probed.is_empty() {
                // The budget truncated this candidate out of the plan
                // entirely: no evidence this epoch, recorded in the report
                // rather than silently skipped.
                candidates_dropped += 1;
                epoch_benefit.insert(cand.clone(), 0.0);
                continue;
            }
            // A candidate whose registration the deadline deferred has no
            // cells yet — no evidence this epoch, same as a budget drop.
            let Some(&cid) = cid_of.get(cand) else {
                candidates_dropped += 1;
                epoch_benefit.insert(cand.clone(), 0.0);
                continue;
            };
            let materialized = self.current.has_index(cand);
            let mut measured = 0.0;
            let mut probed_done = 0usize;
            for &qi in probed {
                // Probes against queries whose rotation the deadline
                // deferred are skipped; the extrapolation below scales by
                // the probes that actually ran.
                let Some(&dq) = qid_of.get(&qi) else {
                    continue;
                };
                let (c_without, c_with) = if materialized {
                    (
                        matrix.cost_minus(dq, &current_config, cid),
                        current_costs[&dq],
                    )
                } else {
                    (
                        current_costs[&dq],
                        matrix.cost_plus(dq, &current_config, cid),
                    )
                };
                whatif_calls += 2;
                probed_done += 1;
                measured += (c_without - c_with).max(0.0);
            }
            // The extrapolation must never divide by zero: a candidate
            // all of whose planned probes were deferred gets no evidence.
            let scale = if probed_done == 0 {
                0.0
            } else {
                n_relevant as f64 / probed_done as f64
            };
            epoch_benefit.insert(cand.clone(), measured * scale);
        }

        // EWMA updates; decay unseen candidates toward zero.
        let alpha = self.config.ewma_alpha;
        for (cand, benefit) in &epoch_benefit {
            let st = self.states.entry(cand.clone()).or_default();
            st.ewma_benefit = alpha * benefit + (1.0 - alpha) * st.ewma_benefit;
            st.observations += 1;
            st.last_seen_epoch = self.epoch;
        }
        for (cand, st) in self.states.iter_mut() {
            if !epoch_benefit.contains_key(cand) {
                st.ewma_benefit *= 1.0 - alpha;
            }
        }

        // Knapsack over tracked candidates, in deterministic (index) order
        // so ties in the greedy density ranking break reproducibly.
        let mut tracked: Vec<(&Index, &CandidateState)> = self
            .states
            .iter()
            .filter(|(_, st)| st.ewma_benefit > 1e-9)
            .collect();
        tracked.sort_by(|a, b| a.0.cmp(b.0));
        // Retention bias: an already-materialized index is worth its EWMA
        // benefit *plus* the rebuild it saves if kept (amortized over the
        // payback horizon). Without this the budget knapsack swaps index
        // sets on every phase of a drifting workload and build costs eat
        // the tuning benefit.
        let items: Vec<pgdesign_solver::knapsack::Item> = tracked
            .iter()
            .map(|(idx, st)| {
                let retention = if self.current.has_index(idx) {
                    self.build_cost(idx) / self.config.payback_horizon_epochs.max(1.0)
                } else {
                    0.0
                };
                pgdesign_solver::knapsack::Item {
                    value: st.ewma_benefit + retention,
                    weight: idx.size_bytes(&catalog.schema, catalog.table_stats(idx.table)) as f64,
                }
            })
            .collect();
        let chosen =
            pgdesign_solver::knapsack::greedy(&items, self.config.storage_budget_bytes as f64);
        let mut target: Vec<Index> = chosen.iter().map(|&i| tracked[i].0.clone()).collect();

        // Payback gate: a *new* index must repay its build cost within the
        // horizon; already-materialized ones stay if still chosen.
        let states = &self.states;
        let current = &self.current;
        let cfg_horizon = self.config.payback_horizon_epochs;
        let build_costs: BTreeMap<Index, f64> = target
            .iter()
            .map(|i| (i.clone(), self.build_cost(i)))
            .collect();
        target.retain(|idx| {
            current.has_index(idx) || states[idx].ewma_benefit * cfg_horizon > build_costs[idx]
        });

        // Diff current vs target; emit events and charge build costs.
        let mut events = Vec::new();
        let mut build_cost_total = 0.0;
        let old_indexes: Vec<Index> = self.current.indexes().to_vec();
        for idx in &old_indexes {
            if !target.contains(idx) {
                self.current.remove_index(idx);
                events.push(ColtEvent::Drop {
                    epoch: self.epoch,
                    index: idx.clone(),
                });
            }
        }
        for idx in &target {
            if !self.current.has_index(idx) {
                let bc = build_costs[idx];
                build_cost_total += bc;
                self.current.add_index(idx.clone());
                events.push(ColtEvent::Materialize {
                    epoch: self.epoch,
                    index: idx.clone(),
                    build_cost: bc,
                });
            }
        }

        self.last_mode = EpochMode::Full;
        let report = EpochReport {
            epoch: self.epoch,
            untuned_cost: self.epoch_untuned,
            tuned_cost: self.epoch_tuned + build_cost_total,
            build_cost: build_cost_total,
            materialized: self.current.indexes().to_vec(),
            events,
            whatif_calls,
            candidates_dropped,
            mode: EpochMode::Full,
            deferred_queries,
            deferred_candidates,
        };
        self.epoch += 1;
        self.epoch_queries.clear();
        self.epoch_untuned = 0.0;
        self.epoch_tuned = 0.0;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_catalog::Catalog;
    use pgdesign_inum::Inum;
    use pgdesign_optimizer::Optimizer;
    use pgdesign_query::generators::DriftingStream;
    use pgdesign_query::{parse_query, Workload};

    fn repeat_query(c: &Catalog, sql: &str, n: usize) -> Vec<Query> {
        let q = parse_query(&c.schema, sql).unwrap();
        std::iter::repeat_with(|| q.clone()).take(n).collect()
    }

    #[test]
    fn repeated_selective_query_triggers_materialization() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                payback_horizon_epochs: 5.0,
                ..Default::default()
            },
        );
        let stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 42", 30);
        let reports = colt.process_stream(stream, &mut matrix);
        assert_eq!(reports.len(), 3);
        // Eventually an index on objid should be materialized.
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        assert!(
            colt.current_design().has_index(&Index::new(photo, vec![0])),
            "objid index expected; design = {:?}",
            colt.current_design().indexes()
        );
        // And tuned cost in the last epoch beats untuned.
        let last = reports.last().unwrap();
        assert!(last.tuned_cost < last.untuned_cost);
    }

    #[test]
    fn single_column_candidates_only() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 5,
                ..Default::default()
            },
        );
        let stream = repeat_query(
            &c,
            "SELECT objid FROM photoobj WHERE type = 3 AND r < 15",
            10,
        );
        colt.process_stream(stream, &mut matrix);
        assert!(colt
            .current_design()
            .indexes()
            .iter()
            .all(|i| i.columns.len() == 1));
    }

    #[test]
    fn zero_whatif_budget_epoch_is_safe() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                whatif_budget_per_epoch: 0,
                ..Default::default()
            },
        );
        let stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 42", 20);
        let reports = colt.process_stream(stream, &mut matrix);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.whatif_calls, 0, "a zero budget admits zero probes");
            assert!(r.untuned_cost.is_finite() && r.tuned_cost.is_finite());
            assert!(
                r.materialized.is_empty(),
                "no probes → no evidence → no builds"
            );
        }
        // No benefit estimate may be poisoned by a 0/0 extrapolation.
        assert!(colt.tracked_candidates() == 0 || reports.iter().all(|r| r.events.is_empty()));
    }

    #[test]
    fn whatif_budget_is_respected() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 20,
                whatif_budget_per_epoch: 10,
                ..Default::default()
            },
        );
        let mut stream = DriftingStream::sdss_default(c.clone(), 100, 5);
        let reports = colt.process_stream(stream.batch(40), &mut matrix);
        for r in &reports {
            assert!(r.whatif_calls <= 11, "budget exceeded: {}", r.whatif_calls);
        }
    }

    #[test]
    fn drift_changes_the_materialized_set() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                payback_horizon_epochs: 8.0,
                ewma_alpha: 0.7,
                ..Default::default()
            },
        );
        // Phase 1: point lookups on objid. Phase 2: lookups on run/camcol.
        let mut stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 42", 30);
        stream.extend(repeat_query(
            &c,
            "SELECT objid FROM photoobj WHERE run = 2000 AND camcol = 3",
            50,
        ));
        let reports = colt.process_stream(stream, &mut matrix);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        // After phase 2, a run or camcol index should exist.
        let final_design = colt.current_design();
        assert!(
            final_design.has_index(&Index::new(photo, vec![9]))
                || final_design.has_index(&Index::new(photo, vec![10])),
            "phase-2 index expected: {:?}",
            final_design.indexes()
        );
        // Some event stream was produced.
        assert!(reports.iter().any(|r| !r.events.is_empty()));
    }

    #[test]
    fn storage_budget_limits_materialized_bytes() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let budget = 3 * 1024 * 1024; // 3 MiB: roughly one small index
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                storage_budget_bytes: budget,
                payback_horizon_epochs: 10.0,
                ..Default::default()
            },
        );
        let mut stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 42", 20);
        stream.extend(repeat_query(
            &c,
            "SELECT ra FROM photoobj WHERE run = 100",
            20,
        ));
        stream.extend(repeat_query(
            &c,
            "SELECT ra FROM photoobj WHERE camcol = 2",
            20,
        ));
        colt.process_stream(stream, &mut matrix);
        let used = colt.current_design().index_bytes(&c.schema, &c.stats);
        assert!(used <= budget, "{used} > {budget}");
    }

    #[test]
    fn build_costs_are_charged() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                payback_horizon_epochs: 50.0,
                ..Default::default()
            },
        );
        let stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 42", 20);
        let reports = colt.process_stream(stream, &mut matrix);
        let charged: f64 = reports.iter().map(|r| r.build_cost).sum();
        assert!(charged > 0.0, "materialization must be paid for");
        let built_epoch = reports.iter().find(|r| r.build_cost > 0.0).unwrap();
        assert!(built_epoch.tuned_cost >= built_epoch.build_cost);
    }

    #[test]
    fn epochs_share_one_persistent_matrix_and_reuse_cells() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let builds_before = inum.matrix_stats().builds;
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                ..Default::default()
            },
        );
        // A steady stream: every epoch repeats the same query, so after
        // epoch 0 its cells are resident and each later epoch's profiling
        // reuses them instead of recomputing.
        let stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 42", 40);
        let reports = colt.process_stream(stream, &mut matrix);
        assert_eq!(reports.len(), 4);
        let s = inum.matrix_stats();
        assert_eq!(
            s.builds,
            builds_before + 1,
            "one persistent matrix across all epochs (built once, up front)"
        );
        assert!(
            s.cells_reused > 0,
            "recurring queries must reuse resident cells: {s:?}"
        );
    }

    #[test]
    fn budget_truncation_is_recorded_not_silent() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                // Two calls = one (candidate, query) pair: every epoch
                // harvests more candidates than the plan can probe.
                whatif_budget_per_epoch: 2,
                ..Default::default()
            },
        );
        let stream = repeat_query(
            &c,
            "SELECT objid FROM photoobj WHERE type = 3 AND r < 15 AND run = 2000",
            10,
        );
        let reports = colt.process_stream(stream, &mut matrix);
        assert!(
            reports.iter().any(|r| r.candidates_dropped > 0),
            "the truncated plan must surface dropped candidates in the report"
        );
        for r in &reports {
            assert!(r.whatif_calls <= 2);
        }
    }

    /// A clock that jumps forward a fixed step on every read — the
    /// deterministic stand-in for "work takes time", so a deadline can
    /// expire *mid*-epoch without any real sleeping.
    struct TickClock {
        nanos: std::sync::atomic::AtomicU64,
        step: u64,
    }

    impl TickClock {
        fn stepping(step: std::time::Duration) -> Self {
            TickClock {
                nanos: std::sync::atomic::AtomicU64::new(0),
                step: step.as_nanos() as u64,
            }
        }
    }

    impl pgdesign_inum::Clock for TickClock {
        fn now_nanos(&self) -> u64 {
            self.nanos
                .fetch_add(self.step, std::sync::atomic::Ordering::SeqCst)
        }
    }

    #[test]
    fn zero_deadline_closes_every_epoch_stale_and_meters_staleness() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let gen_before = matrix.published_generation();
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 5,
                epoch_deadline: Some(Duration::ZERO),
                ..Default::default()
            },
        );
        let stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 42", 10);
        let reports = colt.process_stream(stream, &mut matrix);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.mode, EpochMode::Stale);
            assert_eq!(r.whatif_calls, 0);
            assert!(r.events.is_empty());
            assert!(r.deferred_queries > 0, "the epoch's work must be pending");
        }
        assert_eq!(colt.staleness_generations(), 2);
        assert_eq!(colt.last_epoch_mode(), EpochMode::Stale);
        assert_eq!(
            matrix.published_generation(),
            gen_before,
            "a stale epoch publishes nothing"
        );
        // Lifting the deadline resumes the pending remainder and resets
        // the staleness meter.
        colt.set_epoch_deadline(None);
        let stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 42", 5);
        let reports = colt.process_stream(stream, &mut matrix);
        assert_eq!(reports.last().unwrap().mode, EpochMode::Full);
        assert_eq!(colt.staleness_generations(), 0);
        assert_eq!(colt.pending_work(), (0, 0), "pending work was resumed");
        assert!(matrix.published_generation() > gen_before);
    }

    #[test]
    fn tight_deadline_degrades_without_panic_and_recovers() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                // A couple of 2 ms ticks of budget per epoch close:
                // enough to enter the rotation, not enough to finish
                // everything.
                epoch_deadline: Some(Duration::from_millis(5)),
                ..Default::default()
            },
        );
        colt.set_clock(Arc::new(TickClock::stepping(Duration::from_millis(2))));
        let mut stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 42", 20);
        stream.extend(repeat_query(
            &c,
            "SELECT objid FROM photoobj WHERE run = 2000 AND camcol = 3",
            20,
        ));
        let reports = colt.process_stream(stream, &mut matrix);
        assert_eq!(reports.len(), 4);
        assert!(
            reports.iter().any(|r| r.mode != EpochMode::Full),
            "a 5-tick budget must trip the ladder at least once: {:?}",
            reports.iter().map(|r| r.mode).collect::<Vec<_>>()
        );
        // Degraded epochs stay well-formed: finite costs, no events
        // charging builds that never ran.
        for r in &reports {
            assert!(r.untuned_cost.is_finite() && r.tuned_cost.is_finite());
            if r.mode != EpochMode::Full {
                assert_eq!(r.build_cost, 0.0);
            }
        }
        // With the pressure lifted, the tuner converges as usual.
        colt.set_epoch_deadline(None);
        let stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 42", 30);
        colt.process_stream(stream, &mut matrix);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        assert!(
            colt.current_design().has_index(&Index::new(photo, vec![0])),
            "recovery must reach the same design a healthy run would"
        );
    }

    #[test]
    fn tuner_state_roundtrips_and_restores_design_continuity() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                payback_horizon_epochs: 5.0,
                ..Default::default()
            },
        );
        let stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 42", 30);
        colt.process_stream(stream, &mut matrix);
        assert!(!colt.current_design().indexes().is_empty());
        let state = colt.export_state();
        let bytes = state.encode();
        let decoded = TunerState::decode(&bytes).unwrap();
        assert_eq!(decoded, state);
        // A fresh tuner restored from the snapshot resumes with the same
        // design and evidence — no re-warming epoch.
        let mut warm = ColtTuner::new(&c, &opt, ColtConfig::default());
        warm.restore_state(decoded);
        assert_eq!(
            warm.current_design().indexes(),
            colt.current_design().indexes()
        );
        assert_eq!(warm.tracked_candidates(), colt.tracked_candidates());
        assert_eq!(warm.export_state(), state);
    }

    #[test]
    fn hostile_tuner_state_bytes_are_rejected_not_panicked_on() {
        // Truncation at every prefix length of a valid payload.
        let c = sdss_catalog(0.01);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let state = TunerState {
            epoch: 7,
            materialized: vec![Index::new(photo, vec![0])],
            candidates: vec![TunerCandidate {
                index: Index::new(photo, vec![9]),
                ewma_benefit: 12.5,
                observations: 3,
                last_seen_epoch: 6,
            }],
        };
        let bytes = state.encode();
        for n in 0..bytes.len() {
            assert!(
                TunerState::decode(&bytes[..n]).is_err(),
                "prefix of {n} bytes must be rejected"
            );
        }
        // Unknown version.
        let mut skewed = bytes.clone();
        skewed[0..4].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            TunerState::decode(&skewed),
            Err(TunerStateError::Version(99))
        );
        // A NaN EWMA must not survive decoding.
        let mut poisoned = state.clone();
        poisoned.candidates[0].ewma_benefit = f64::NAN;
        assert!(matches!(
            TunerState::decode(&poisoned.encode()),
            Err(TunerStateError::Invalid(_))
        ));
        // And restore_state filters non-finite entries defensively.
        let opt = Optimizer::new();
        let mut t = ColtTuner::new(&c, &opt, ColtConfig::default());
        t.restore_state(poisoned);
        assert_eq!(t.tracked_candidates(), 0);
    }

    #[test]
    fn partial_trailing_epoch_is_flushed() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let mut matrix = CostMatrix::build(&inum, &Workload::new(), &[]);
        let mut colt = ColtTuner::new(
            &c,
            &opt,
            ColtConfig {
                epoch_length: 10,
                ..Default::default()
            },
        );
        let stream = repeat_query(&c, "SELECT ra FROM photoobj WHERE objid = 1", 13);
        let reports = colt.process_stream(stream, &mut matrix);
        assert_eq!(reports.len(), 2, "10 + 3 queries → 2 reports");
    }
}
