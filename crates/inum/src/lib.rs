//! # pgdesign-inum
//!
//! INUM — the cache-based cost model (Papadomanolakis, Dash, Ailamaki,
//! VLDB 2007) the paper extends "to cache table partitions and partial
//! plans to further increase the efficiency of the selection tool by
//! orders of magnitude" (§1).
//!
//! ## How it works
//!
//! The key observation: for a fixed combination of *interesting orders*
//! delivered by the per-table accesses, the optimal join/sort/aggregation
//! super-structure of a plan — and therefore its *internal cost* — does not
//! depend on which physical structures deliver the rows. Cardinalities are
//! design-independent, so the internal cost can be computed once per order
//! combination (a [`Skeleton`](pgdesign_optimizer::Skeleton)) and reused
//! for every candidate configuration:
//!
//! ```text
//! cost(q, D) = min over order combinations o of
//!              internal(q, o) + Σ_slots access_cost(slot, o[slot], D)
//! ```
//!
//! Re-costing a query under a new design then touches no join enumeration
//! at all — just one access-path costing per table slot. That is the
//! orders-of-magnitude speedup CoPhy leans on when it evaluates thousands
//! of candidate configurations (reproduced as experiment E4).
//!
//! ## The two-level cache
//!
//! The crate caches at two levels:
//!
//! 1. **Skeleton cache** ([`Inum`]): one optimizer consultation per
//!    interesting-order combination per query; [`Inum::cost`] then costs
//!    *any* [`PhysicalDesign`](pgdesign_catalog::design::PhysicalDesign) —
//!    indexes, vertical or horizontal partitions — by enumerating access
//!    paths once per slot. This is the general-purpose slow-path oracle.
//! 2. **Cost matrix** ([`CostMatrix`]): for a fixed workload and candidate
//!    *index* set, the per-candidate access cost under every skeleton
//!    order is precomputed once, so costing a configuration
//!    (a [`CandidateBitset`]) is
//!
//!    ```text
//!    cost(q, C) = min over skeletons k of
//!                 internal(k) + Σ_slots min(base(slot, o_k),
//!                                           min_{c ∈ C} access(c, slot, o_k))
//!    ```
//!
//!    — pure additions and `min`s over precomputed floats, with zero
//!    allocation and no design construction. The enumeration-heavy
//!    advisors (CoPhy, greedy selection, COLT profiling, interaction
//!    analysis) run on this level; both levels agree exactly on index-only
//!    configurations, which the suite's invariant tests assert.
//!
//! The matrix is **incrementally maintainable and parallel-built**, not a
//! build-once artifact: [`CostMatrix::add_candidate`] /
//! [`CostMatrix::remove_candidate`] edit the candidate set with stable ids
//! (existing [`CandidateBitset`]s stay valid; removed ids are recycled),
//! and [`CostMatrix::add_query`] / [`CostMatrix::retire_query`] rotate
//! queries with cell reuse keyed by [`query_cell_key`] — which is how COLT
//! holds one matrix across epochs and pays only for workload drift, and
//! how CoPhy registers its merge-generated candidates without a rebuild.
//! Cold builds (and the bulk of [`CostMatrix::add_queries`]) distribute
//! queries over [`build_threads`] workers (`PGDESIGN_THREADS` overrides;
//! default is the machine's available parallelism) and are bit-identical
//! to serial builds, since every cell depends on nothing but its own
//! query. The suite proptests random add/remove/retire interleavings
//! against fresh builds and pins serial-vs-parallel equality.
//!
//! The matrix also serves **concurrent readers**: [`CostMatrix::publish`]
//! snapshots the writer's state as an immutable [`MatrixSnapshot`] behind
//! an `Arc`, and any number of [`MatrixReader`] handles
//! ([`CostMatrix::reader`]) cost configurations lock-free against a pinned
//! generation while the writer keeps mutating — the reader hot path
//! touches no lock and no optimizer. [`MatrixView`] abstracts over the
//! live matrix and a snapshot for analysis code that reads either.
//!
//! The *partition extension* mentioned by the paper lives at **both**
//! levels. At the first level, access costing consults the design's
//! vertical/horizontal partitionings, so cached skeletons serve
//! partitioned configurations through [`Inum::cost`]. At the second
//! level, a [`CostMatrix`] additionally accepts *partition candidates*:
//! vertical fragments ([`CostMatrix::register_fragment`], selected via a
//! [`FragmentBitset`]) carry a precomputed page count, horizontal splits
//! ([`CostMatrix::register_split`], a [`SplitBitset`]) carry precomputed
//! per-(query, slot) surviving fractions, and every candidate index's
//! access paths are kept in target-parameterized form
//! ([`pgdesign_optimizer::access::IndexPathProfile`]). Costing a
//! [`JointConfig`] (indexes + fragments + splits) then needs only
//! per-slot arithmetic — no path re-enumeration, no design construction —
//! and [`JointToggle`]-based trial evaluation
//! ([`CostMatrix::delta_merge`] / [`CostMatrix::delta_split`]) is what
//! AutoPart's greedy merge search runs on.
//!
//! Nested-loop joins are excluded from the INUM space (their inner cost is
//! design-dependent), as in the original paper; [`Inum::cost`] is therefore
//! an upper bound on the full optimizer's cost, tight whenever the best
//! plan is hash/merge-based. [`Inum::exact_cost`] falls through to the
//! real optimizer for comparison and calibration.

#![forbid(unsafe_code)]

mod budget;
mod inum;
mod key;
mod matrix;
mod snapshot;

pub use budget::{Clock, Deadline, ManualClock, SystemClock, WorkBudget};
pub use inum::{interesting_orders_per_slot, order_combinations, Inum, InumStats};
pub use key::query_cell_key;
pub use matrix::persist::{
    catalog_fingerprints, decode_edit, decode_snapshot, encode_edit, encode_published,
    encode_snapshot, restore_matrix, DecodedSnapshot, MatrixEdit, PersistError, RestoreReport,
};
pub use matrix::{
    build_threads, CandidateBitset, CostMatrix, FragmentBitset, JointConfig, JointToggle,
    MatrixBuilder, MatrixStats, SplitBitset,
};
pub use snapshot::{MatrixReader, MatrixSnapshot, MatrixView};
