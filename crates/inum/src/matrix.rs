//! The precomputed access-cost matrix — the second level of INUM's
//! two-level cache.
//!
//! [`crate::Inum::cost`] already amortizes the optimizer's join/sort
//! planning across designs via the skeleton cache, but it still enumerates
//! and costs access paths for *every* `(design, query)` call. The
//! enumeration-heavy advisors (CoPhy's atomic configurations, greedy
//! selection, COLT's epoch profiling, the `2^k`-subset
//! degree-of-interaction sweep) issue thousands of such calls against
//! configurations drawn from one fixed candidate set — so the per-slot,
//! per-candidate access costs can be precomputed once and every
//! configuration cost becomes additions and `min`s over floats:
//!
//! ```text
//! cost(q, C) = min over skeletons k of
//!              internal(k) + Σ_slots min( base(slot, order_k),
//!                                         min_{c ∈ C on slot's table}
//!                                             access(c, slot, order_k) )
//! ```
//!
//! A configuration `C` is a [`CandidateBitset`] over candidate ids;
//! [`CostMatrix::cost`] walks precomputed vectors with zero allocation, no
//! [`PhysicalDesign`] construction and no access-path re-enumeration, and
//! agrees with [`crate::Inum::cost`] exactly (the suite's invariant tests
//! assert this within 1e-6). [`CostMatrix::delta_add`] /
//! [`CostMatrix::delta_remove`] evaluate the cost change of toggling one
//! candidate without materializing the toggled configuration.

use crate::inum::Inum;
use pgdesign_catalog::design::{Index, PhysicalDesign};
use pgdesign_optimizer::access::{self, AccessContext, SlotProfile};
use pgdesign_optimizer::plan::order_satisfies;
use pgdesign_query::ast::QueryColumn;
use pgdesign_query::Workload;

/// Counters for the matrix layer, aggregated on the owning [`Inum`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MatrixStats {
    /// Matrices built.
    pub builds: u64,
    /// Precomputed cost cells (one per `(query, slot)` base entry and one
    /// per `(query, slot, candidate)` entry) — the one-off build work,
    /// each roughly one access-path costing.
    pub cells: u64,
    /// Configuration-cost lookups served from matrices.
    pub lookups: u64,
}

impl MatrixStats {
    /// Estimated what-if optimizer calls avoided: every lookup replaces a
    /// per-design cost call, minus the one-off costing work spent filling
    /// the matrix.
    pub fn whatif_calls_avoided(&self) -> u64 {
        self.lookups.saturating_sub(self.cells)
    }
}

/// A set of candidate ids (positions into the candidate list a
/// [`CostMatrix`] was built over), stored as a bitset so membership tests
/// in the costing hot loop are a single shift-and-mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateBitset {
    words: Vec<u64>,
}

impl CandidateBitset {
    /// Empty set with capacity for `n_candidates` ids.
    pub fn new(n_candidates: usize) -> Self {
        CandidateBitset {
            words: vec![0; n_candidates.div_ceil(64).max(1)],
        }
    }

    /// Empty set with capacity for `n_candidates` ids, filled with `ids`.
    pub fn from_ids<I: IntoIterator<Item = usize>>(n_candidates: usize, ids: I) -> Self {
        let mut s = Self::new(n_candidates);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Add a candidate.
    pub fn insert(&mut self, id: usize) {
        self.words[id / 64] |= 1 << (id % 64);
    }

    /// Remove a candidate.
    pub fn remove(&mut self, id: usize) {
        self.words[id / 64] &= !(1 << (id % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: usize) -> bool {
        self.words
            .get(id / 64)
            .is_some_and(|w| w & (1 << (id % 64)) != 0)
    }

    /// Remove every candidate.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of candidates in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no candidate is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The contained candidate ids, ascending.
    pub fn ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }
}

/// Sentinel for "no order required" in the flattened skeleton requirements.
const NO_ORDER: u32 = u32::MAX;

/// Precomputed access costs of one candidate index on one slot.
struct CandCosts {
    /// Candidate id (position in the matrix's candidate list).
    id: usize,
    /// Cheapest path cost ignoring order (∞ when the index contributes no
    /// path for this slot).
    unordered: f64,
    /// Cheapest path cost delivering each distinct required order
    /// (∞ when no path of this candidate satisfies it).
    ordered: Vec<f64>,
}

/// Per-slot cost row: the empty-design base plus per-candidate columns.
struct SlotCosts {
    /// Sequential-scan (base) cost, the only path under the empty design.
    base_unordered: f64,
    /// Base cost per required order (∞ unless the order is trivially
    /// satisfied, i.e. every required column is equality-bound).
    base_ordered: Vec<f64>,
    /// Candidates on this slot's table that contribute at least one path.
    cands: Vec<CandCosts>,
}

/// Everything needed to cost one query against any candidate subset.
struct QueryMatrix {
    /// Workload weight.
    weight: f64,
    /// Internal (design-independent) cost per skeleton.
    internal: Vec<f64>,
    /// Per skeleton, per slot: required-order id or [`NO_ORDER`].
    reqs: Vec<Vec<u32>>,
    /// Per-slot cost rows.
    slots: Vec<SlotCosts>,
}

/// The precomputed per-(query, candidate) access-cost matrix for one
/// workload and one candidate list.
pub struct CostMatrix<'a> {
    inum: &'a Inum<'a>,
    workload: &'a Workload,
    indexes: Vec<Index>,
    queries: Vec<QueryMatrix>,
}

impl<'a> CostMatrix<'a> {
    /// Build the matrix: for every query, fetch (or build) its cached
    /// skeletons, then cost the base access and each candidate index's
    /// access once per slot and distinct required order.
    pub fn build(inum: &'a Inum<'a>, workload: &'a Workload, indexes: &[Index]) -> Self {
        let catalog = inum.catalog();
        let params = &inum.optimizer().params;
        let empty = PhysicalDesign::empty();
        let mut queries = Vec::with_capacity(workload.len());
        let mut cells = 0u64;
        for (q, weight) in workload.iter() {
            let skeletons = inum.skeletons(q);
            let ctx = AccessContext {
                catalog,
                design: &empty,
                params,
                query: q,
            };
            let n_slots = q.slot_count() as usize;

            // Distinct required orders per slot across the skeleton set.
            let mut slot_orders: Vec<Vec<&[u16]>> = vec![Vec::new(); n_slots];
            for sk in skeletons.iter() {
                for (s, req) in sk.slot_orders.iter().enumerate() {
                    if let Some(o) = req {
                        if !slot_orders[s].contains(&o.as_slice()) {
                            slot_orders[s].push(o.as_slice());
                        }
                    }
                }
            }
            let reqs: Vec<Vec<u32>> = skeletons
                .iter()
                .map(|sk| {
                    sk.slot_orders
                        .iter()
                        .enumerate()
                        .map(|(s, req)| match req {
                            None => NO_ORDER,
                            Some(o) => slot_orders[s]
                                .iter()
                                .position(|x| *x == o.as_slice())
                                .expect("order collected above")
                                as u32,
                        })
                        .collect()
                })
                .collect();
            let internal: Vec<f64> = skeletons.iter().map(|sk| sk.internal_cost).collect();

            let mut slots = Vec::with_capacity(n_slots);
            for slot in 0..q.slot_count() {
                let s = slot as usize;
                let prof = SlotProfile::build(&ctx, slot, &[]);
                let seq = access::seq_scan_path(&ctx, &prof);
                cells += 1;
                let required: Vec<Vec<QueryColumn>> = slot_orders[s]
                    .iter()
                    .map(|o| o.iter().map(|&c| QueryColumn::new(slot, c)).collect())
                    .collect();
                let base_ordered: Vec<f64> = required
                    .iter()
                    .map(|req| {
                        if order_satisfies(&[], req, &prof.eq_bound) {
                            seq.cost
                        } else {
                            f64::INFINITY
                        }
                    })
                    .collect();
                let table = q.table_of(slot);
                let mut cands = Vec::new();
                for (id, idx) in indexes.iter().enumerate() {
                    if idx.table != table {
                        continue;
                    }
                    let paths = access::index_access_paths(&ctx, &prof, idx, false);
                    cells += 1;
                    if paths.is_empty() {
                        continue; // contributes nothing on this slot
                    }
                    let unordered = paths.iter().map(|p| p.cost).fold(f64::INFINITY, f64::min);
                    let ordered: Vec<f64> = required
                        .iter()
                        .map(|req| {
                            paths
                                .iter()
                                .filter(|p| order_satisfies(&p.order, req, &prof.eq_bound))
                                .map(|p| p.cost)
                                .fold(f64::INFINITY, f64::min)
                        })
                        .collect();
                    cands.push(CandCosts {
                        id,
                        unordered,
                        ordered,
                    });
                }
                slots.push(SlotCosts {
                    base_unordered: seq.cost,
                    base_ordered,
                    cands,
                });
            }
            queries.push(QueryMatrix {
                weight,
                internal,
                reqs,
                slots,
            });
        }
        inum.note_matrix_build(cells);
        CostMatrix {
            inum,
            workload,
            indexes: indexes.to_vec(),
            queries,
        }
    }

    /// The owning INUM instance (the slow-path oracle).
    pub fn inum(&self) -> &'a Inum<'a> {
        self.inum
    }

    /// The workload the matrix was built for.
    pub fn workload(&self) -> &'a Workload {
        self.workload
    }

    /// The candidate indexes, id = position.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Number of workload queries.
    pub fn n_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of candidate indexes.
    pub fn n_candidates(&self) -> usize {
        self.indexes.len()
    }

    /// An empty configuration sized for this matrix.
    pub fn empty_config(&self) -> CandidateBitset {
        CandidateBitset::new(self.indexes.len())
    }

    /// A configuration holding exactly `ids`.
    pub fn config_of<I: IntoIterator<Item = usize>>(&self, ids: I) -> CandidateBitset {
        CandidateBitset::from_ids(self.indexes.len(), ids)
    }

    /// The [`PhysicalDesign`] a configuration denotes (slow-path bridge).
    pub fn design_of(&self, config: &CandidateBitset) -> PhysicalDesign {
        PhysicalDesign::with_indexes(config.ids().map(|id| self.indexes[id].clone()))
    }

    /// Cost of `query_id` under the configuration — pure lookups.
    pub fn cost(&self, query_id: usize, config: &CandidateBitset) -> f64 {
        self.cost_toggled(query_id, config, usize::MAX, usize::MAX)
    }

    /// Cost under `config ∪ {extra}` without materializing the union.
    pub fn cost_plus(&self, query_id: usize, config: &CandidateBitset, extra: usize) -> f64 {
        self.cost_toggled(query_id, config, extra, usize::MAX)
    }

    /// Cost under `config ∖ {removed}` without materializing the
    /// difference.
    pub fn cost_minus(&self, query_id: usize, config: &CandidateBitset, removed: usize) -> f64 {
        self.cost_toggled(query_id, config, usize::MAX, removed)
    }

    /// Cost change from adding `cand` to the configuration (negative =
    /// improvement).
    pub fn delta_add(&self, query_id: usize, config: &CandidateBitset, cand: usize) -> f64 {
        self.cost_plus(query_id, config, cand) - self.cost(query_id, config)
    }

    /// Cost change from removing `cand` from the configuration (positive =
    /// regression).
    pub fn delta_remove(&self, query_id: usize, config: &CandidateBitset, cand: usize) -> f64 {
        self.cost_minus(query_id, config, cand) - self.cost(query_id, config)
    }

    /// Weighted workload cost under the configuration.
    pub fn workload_cost(&self, config: &CandidateBitset) -> f64 {
        (0..self.queries.len())
            .map(|qi| self.queries[qi].weight * self.cost(qi, config))
            .sum()
    }

    /// Weighted workload cost under `config ∪ {extra}`.
    pub fn workload_cost_plus(&self, config: &CandidateBitset, extra: usize) -> f64 {
        (0..self.queries.len())
            .map(|qi| self.queries[qi].weight * self.cost_plus(qi, config, extra))
            .sum()
    }

    /// The shared hot path: cost with one candidate virtually added
    /// (`add`) and/or removed (`remove`); `usize::MAX` disables a toggle.
    /// Mirrors [`Inum::cost`]'s skeleton loop exactly so the two agree
    /// bit-for-bit on configurations the matrix covers.
    fn cost_toggled(
        &self,
        query_id: usize,
        config: &CandidateBitset,
        add: usize,
        remove: usize,
    ) -> f64 {
        self.inum.note_matrix_lookup();
        let qm = &self.queries[query_id];
        let mut best = f64::INFINITY;
        for (internal, reqs) in qm.internal.iter().zip(&qm.reqs) {
            let mut total = *internal;
            for (slot, &req) in qm.slots.iter().zip(reqs.iter()) {
                let mut m = if req == NO_ORDER {
                    slot.base_unordered
                } else {
                    slot.base_ordered[req as usize]
                };
                for cand in &slot.cands {
                    if (!config.contains(cand.id) && cand.id != add) || cand.id == remove {
                        continue;
                    }
                    let c = if req == NO_ORDER {
                        cand.unordered
                    } else {
                        cand.ordered[req as usize]
                    };
                    if c < m {
                        m = c;
                    }
                }
                total += m;
                if total >= best {
                    total = f64::INFINITY;
                    break; // early exit: already worse (or infeasible)
                }
            }
            if total < best {
                best = total;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_catalog::Catalog;
    use pgdesign_optimizer::candidates::{workload_candidates, CandidateConfig};
    use pgdesign_optimizer::Optimizer;
    use pgdesign_query::generators::sdss_workload;

    fn setup() -> (Catalog, Optimizer) {
        (sdss_catalog(0.01), Optimizer::new())
    }

    #[test]
    fn bitset_insert_remove_contains() {
        let mut s = CandidateBitset::new(130);
        assert!(s.is_empty());
        for id in [0, 63, 64, 129] {
            s.insert(id);
            assert!(s.contains(id));
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.ids().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
        s.remove(64);
        assert!(!s.contains(64));
        assert!(!s.contains(500), "out-of-range ids are simply absent");
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn matrix_matches_inum_on_every_singleton_and_pair() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 101);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        for (qi, (q, _)) in w.iter().enumerate() {
            let empty = matrix.empty_config();
            assert_eq!(
                matrix.cost(qi, &empty),
                inum.cost(&PhysicalDesign::empty(), q),
                "empty config must match Q{qi}"
            );
            for a in 0..cands.indexes.len().min(8) {
                let solo = matrix.config_of([a]);
                let d = PhysicalDesign::with_indexes([cands.indexes[a].clone()]);
                assert_eq!(matrix.cost(qi, &solo), inum.cost(&d, q), "solo {a} Q{qi}");
                for b in (a + 1)..cands.indexes.len().min(8) {
                    let pair = matrix.config_of([a, b]);
                    let d = PhysicalDesign::with_indexes([
                        cands.indexes[a].clone(),
                        cands.indexes[b].clone(),
                    ]);
                    assert_eq!(
                        matrix.cost(qi, &pair),
                        inum.cost(&d, q),
                        "pair ({a},{b}) Q{qi}"
                    );
                }
            }
        }
    }

    #[test]
    fn toggled_costs_match_materialized_configs() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 102);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        let base_ids = [0usize, 2];
        let base = matrix.config_of(base_ids);
        for qi in 0..matrix.n_queries() {
            // plus
            let extra = 1usize;
            let mut plus = base.clone();
            plus.insert(extra);
            assert_eq!(
                matrix.cost_plus(qi, &base, extra),
                matrix.cost(qi, &plus),
                "cost_plus must equal materialized union (Q{qi})"
            );
            let delta = matrix.delta_add(qi, &base, extra);
            assert!(
                (delta - (matrix.cost(qi, &plus) - matrix.cost(qi, &base))).abs() < 1e-12,
                "delta_add must equal full re-evaluation (Q{qi})"
            );
            // minus
            let removed = 2usize;
            let mut minus = base.clone();
            minus.remove(removed);
            assert_eq!(
                matrix.cost_minus(qi, &base, removed),
                matrix.cost(qi, &minus),
                "cost_minus must equal materialized difference (Q{qi})"
            );
        }
    }

    #[test]
    fn workload_cost_is_weighted_sum() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let mut w = pgdesign_query::Workload::new();
        let q = pgdesign_query::parse_query(&c.schema, "SELECT ra FROM photoobj WHERE objid = 7")
            .unwrap();
        w.push(q.clone(), 2.0);
        w.push(q, 3.0);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        let cfg = matrix.config_of([0]);
        let manual: f64 = 2.0 * matrix.cost(0, &cfg) + 3.0 * matrix.cost(1, &cfg);
        assert!((matrix.workload_cost(&cfg) - manual).abs() < 1e-9);
    }

    #[test]
    fn counters_accumulate_on_the_inum_instance() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 103);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        let after_build = inum.matrix_stats();
        assert_eq!(after_build.builds, 1);
        assert!(after_build.cells > 0);
        let empty = matrix.empty_config();
        for qi in 0..matrix.n_queries() {
            let _ = matrix.cost(qi, &empty);
        }
        let s = inum.matrix_stats();
        assert_eq!(s.lookups, after_build.lookups + w.len() as u64);
    }
}
